//! Mergeable, canonically ordered metric snapshots.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which clock the snapshot's timing figures were read from.
///
/// [`Virtual`](TimeDomain::Virtual) snapshots come from discrete-event
/// elections: every `now_ns` read is a deterministic function of the
/// seed, so the whole snapshot is seed-replayable and may join a run's
/// canonical fingerprint. [`Wall`](TimeDomain::Wall) snapshots carry real
/// `Instant`-derived durations (and scheduling-dependent counts such as
/// timer ticks), so the fingerprint excludes them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeDomain {
    /// Deterministic discrete-event time.
    Virtual,
    /// Real monotonic time.
    Wall,
}

impl TimeDomain {
    /// Short lower-case name used in the canonical text and JSON.
    pub fn name(self) -> &'static str {
        match self {
            TimeDomain::Virtual => "virtual",
            TimeDomain::Wall => "wall",
        }
    }
}

/// A monotonically increasing count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A sampled level; merging keeps the maximum observed value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge(u64);

impl Gauge {
    /// Records a sample, keeping the high-water mark.
    pub fn observe(&mut self, v: u64) {
        self.0 = self.0.max(v);
    }

    /// High-water mark.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Builds the canonical map key. The three coordinates of a metric —
/// name, phase, label — are joined with `|`, which never appears inside
/// a coordinate, so the flat key is unambiguous and `BTreeMap` ordering
/// is canonical.
pub fn metric_key(name: &str, phase: &str, label: &str) -> String {
    format!("{name}|{phase}|{label}")
}

/// Inverse of [`metric_key`]: splits a flat key back into
/// `(name, phase, label)`. Missing coordinates come back empty.
pub fn split_key(key: &str) -> (&str, &str, &str) {
    let mut it = key.splitn(3, '|');
    let name = it.next().unwrap_or("");
    let phase = it.next().unwrap_or("");
    let label = it.next().unwrap_or("");
    (name, phase, label)
}

/// Metric names carrying this prefix are *unstable*: their values depend
/// on wall-clock thread interleaving even under virtual time (e.g. the
/// channel depth seen at dequeue). They are reported in JSON and the
/// profile table but never join the canonical text.
pub const UNSTABLE_PREFIX: char = '~';

fn is_unstable(key: &str) -> bool {
    key.starts_with(UNSTABLE_PREFIX)
}

/// One node's (or a whole election's) metrics, frozen.
///
/// Snapshots merge exactly: counters add, gauges keep the maximum, and
/// histograms add per bucket, so aggregating per-node snapshots in any
/// grouping yields the same totals. All maps are `BTreeMap`s keyed by
/// [`metric_key`], so iteration order — and therefore
/// [`canonical_text`](MetricsSnapshot::canonical_text) and
/// [`to_json`](MetricsSnapshot::to_json) — is canonical.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Clock domain the timing figures were read from.
    pub domain: TimeDomain,
    /// Monotonic counts.
    pub counters: BTreeMap<String, Counter>,
    /// High-water marks.
    pub gauges: BTreeMap<String, Gauge>,
    /// Distributions.
    pub hists: BTreeMap<String, Histogram>,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot::new(TimeDomain::Virtual)
    }
}

impl MetricsSnapshot {
    /// An empty snapshot in `domain`.
    pub fn new(domain: TimeDomain) -> MetricsSnapshot {
        MetricsSnapshot {
            domain,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Adds `n` to the counter at (`name`, `phase`, `label`).
    pub fn add(&mut self, name: &str, phase: &str, label: &str, n: u64) {
        self.counters
            .entry(metric_key(name, phase, label))
            .or_default()
            .add(n);
    }

    /// Records a gauge sample at (`name`, `phase`, `label`).
    pub fn gauge(&mut self, name: &str, phase: &str, label: &str, v: u64) {
        self.gauges
            .entry(metric_key(name, phase, label))
            .or_default()
            .observe(v);
    }

    /// Records a histogram sample at (`name`, `phase`, `label`).
    pub fn observe(&mut self, name: &str, phase: &str, label: &str, v: u64) {
        self.hists
            .entry(metric_key(name, phase, label))
            .or_default()
            .record(v);
    }

    /// Reads a counter back by its coordinates (0 when absent), summed
    /// over phases and labels when they are given as `None`.
    pub fn counter(&self, name: &str, phase: Option<&str>, label: Option<&str>) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| {
                let (n, p, l) = split_key(k);
                n == name && phase.is_none_or(|w| w == p) && label.is_none_or(|w| w == l)
            })
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Merges `other` into `self`. Mixing domains taints the result to
    /// [`TimeDomain::Wall`] so a nondeterministic contribution can never
    /// hide inside a "virtual" fingerprint.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        if other.domain == TimeDomain::Wall {
            self.domain = TimeDomain::Wall;
        }
        for (k, c) in &other.counters {
            self.counters.entry(k.clone()).or_default().add(c.get());
        }
        for (k, g) in &other.gauges {
            self.gauges.entry(k.clone()).or_default().observe(g.get());
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// The full canonical text: one line per stable metric, in key
    /// order. Unstable (`~`-prefixed) metrics are skipped.
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "metrics domain={}", self.domain.name());
        for (k, c) in &self.counters {
            if !is_unstable(k) {
                let _ = writeln!(out, "c {k} = {}", c.get());
            }
        }
        for (k, g) in &self.gauges {
            if !is_unstable(k) {
                let _ = writeln!(out, "g {k} = {}", g.get());
            }
        }
        for (k, h) in &self.hists {
            if is_unstable(k) {
                continue;
            }
            let _ = write!(
                out,
                "h {k} count={} total={} min={} max={} [",
                h.count(),
                h.total_ns(),
                h.min_ns(),
                h.max_ns()
            );
            for (i, (bucket, n)) in h.sparse().into_iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{bucket}:{n}");
            }
            out.push_str("]\n");
        }
        out
    }

    /// What this snapshot contributes to a run's replay fingerprint.
    ///
    /// Virtual-domain snapshots are deterministic end to end and join in
    /// full. Wall-domain snapshots contribute only a marker line: their
    /// durations are real time and even their counts (timer ticks,
    /// retries) are scheduling-dependent, so none of it may participate
    /// in byte-identical replay checks.
    pub fn fingerprint(&self) -> String {
        match self.domain {
            TimeDomain::Virtual => self.canonical_text(),
            TimeDomain::Wall => "metrics domain=wall (excluded from fingerprint)\n".to_string(),
        }
    }

    /// Hand-rolled JSON (no serde in the workspace). Keys are emitted in
    /// canonical order; unstable metrics are included.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"domain\":\"{}\"", self.domain.name());
        out.push_str(",\"counters\":{");
        for (i, (k, c)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{}", c.get());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{}", g.get());
        }
        out.push_str("},\"hists\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{k}\":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\
                 \"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"buckets\":[",
                h.count(),
                h.total_ns(),
                h.min_ns(),
                h.max_ns(),
                h.mean_ns(),
                h.quantile_ns(0.5),
                h.quantile_ns(0.95),
                h.quantile_ns(0.99),
            );
            for (j, (bucket, n)) in h.sparse().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{bucket},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Human profile rendering: per-phase totals, the per-phase ×
    /// per-message matrix for `matrix_name` (e.g. `vc.step_ns`), and the
    /// top-`k` distributions by total recorded time.
    pub fn profile_table(&self, matrix_name: &str, k: usize) -> String {
        let mut out = String::new();

        // Per-phase totals over every histogram that carries a phase.
        let mut phases: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for (key, h) in &self.hists {
            let (_, phase, _) = split_key(key);
            if !phase.is_empty() {
                let e = phases.entry(phase).or_default();
                e.0 += h.count();
                e.1 = e.1.saturating_add(h.total_ns());
            }
        }
        out.push_str("per-phase totals\n");
        out.push_str("  phase        samples      total\n");
        let mut rows: Vec<_> = phases.into_iter().collect();
        rows.sort_by_key(|(_, (_, t))| std::cmp::Reverse(*t));
        for (phase, (n, t)) in rows {
            let _ = writeln!(out, "  {:<12} {:>8}   {:>9}", phase, n, fmt_ns(t));
        }

        // Phase × message matrix for the step-latency family.
        let mut matrix: Vec<(&str, &str, &Histogram)> = self
            .hists
            .iter()
            .filter_map(|(key, h)| {
                let (name, phase, label) = split_key(key);
                (name == matrix_name).then_some((phase, label, h))
            })
            .collect();
        matrix.sort_by_key(|(_, _, h)| std::cmp::Reverse(h.total_ns()));
        let _ = writeln!(out, "\n{matrix_name} by phase × message");
        out.push_str("  phase        message           count      total       mean        p95\n");
        for (phase, label, h) in matrix {
            let _ = writeln!(
                out,
                "  {:<12} {:<16} {:>6}   {:>8}   {:>8}   {:>8}",
                phase,
                label,
                h.count(),
                fmt_ns(h.total_ns()),
                fmt_ns(h.mean_ns()),
                fmt_ns(h.quantile_ns(0.95)),
            );
        }

        // Top-k across every distribution.
        let mut top: Vec<(&String, &Histogram)> = self.hists.iter().collect();
        top.sort_by_key(|(_, h)| std::cmp::Reverse(h.total_ns()));
        let _ = writeln!(out, "\ntop {k} by total time");
        out.push_str("  metric                                      count      total       mean        p99\n");
        for (key, h) in top.into_iter().take(k) {
            let _ = writeln!(
                out,
                "  {:<42} {:>6}   {:>8}   {:>8}   {:>8}",
                key,
                h.count(),
                fmt_ns(h.total_ns()),
                fmt_ns(h.mean_ns()),
                fmt_ns(h.quantile_ns(0.99)),
            );
        }

        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            for (key, c) in &self.counters {
                let _ = writeln!(out, "  {:<42} {:>10}", key, c.get());
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges (high-water)\n");
            for (key, g) in &self.gauges {
                let _ = writeln!(out, "  {:<42} {:>10}", key, g.get());
            }
        }
        out
    }
}

/// Renders nanoseconds with a unit chosen for 3-4 significant digits.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new(TimeDomain::Virtual);
        s.add("vc.step_outputs", "vote", "Vote", 3);
        s.gauge("storage.wal_frames", "", "", 7);
        s.observe("vc.step_ns", "vote", "Vote", 1200);
        s.observe("vc.step_ns", "vote", "Vote", 900);
        s.observe("~vc.queue_depth", "vote", "", 4);
        s
    }

    #[test]
    fn merge_is_exact() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter("vc.step_outputs", None, None), 6);
        assert_eq!(a.gauges[&metric_key("storage.wal_frames", "", "")].get(), 7);
        let h = &a.hists[&metric_key("vc.step_ns", "vote", "Vote")];
        assert_eq!(h.count(), 4);
        assert_eq!(h.total_ns(), 2 * 2100);
    }

    #[test]
    fn unstable_metrics_stay_out_of_canonical_text() {
        let s = sample();
        let text = s.canonical_text();
        assert!(text.contains("vc.step_ns|vote|Vote"));
        assert!(!text.contains("queue_depth"), "unstable key leaked: {text}");
        // …but they do show up in the JSON export.
        assert!(s.to_json().contains("queue_depth"));
    }

    #[test]
    fn wall_domain_is_excluded_from_fingerprint() {
        let mut s = sample();
        assert_eq!(s.fingerprint(), s.canonical_text());
        s.domain = TimeDomain::Wall;
        assert!(!s.fingerprint().contains("vc.step_ns"));
        // Merging a wall snapshot taints a virtual one.
        let mut v = sample();
        v.merge(&s);
        assert_eq!(v.domain, TimeDomain::Wall);
    }

    #[test]
    fn canonical_text_is_key_ordered_and_stable() {
        let a = sample().canonical_text();
        let mut s = MetricsSnapshot::new(TimeDomain::Virtual);
        // Insert in a different order; BTreeMap canonicalizes.
        s.observe("vc.step_ns", "vote", "Vote", 900);
        s.observe("~vc.queue_depth", "vote", "", 4);
        s.observe("vc.step_ns", "vote", "Vote", 1200);
        s.gauge("storage.wal_frames", "", "", 7);
        s.add("vc.step_outputs", "vote", "Vote", 3);
        assert_eq!(a, s.canonical_text());
    }

    #[test]
    fn profile_table_mentions_phases_and_matrix() {
        let table = sample().profile_table("vc.step_ns", 5);
        assert!(table.contains("per-phase totals"));
        assert!(table.contains("vc.step_ns by phase × message"));
        assert!(table.contains("Vote"));
    }
}
