//! # ddemos-trustee
//!
//! Trustees (§III-H): the human-held key-share component that produces the
//! election tally and the evidence for end-to-end verifiability, without
//! any single trustee (or any coalition below `h_t`) learning a voter's
//! choice.
//!
//! After the election, each trustee reads the agreed vote set and the
//! decrypted vote codes from a majority of BB nodes, validates them, and
//! posts back:
//!
//! * **openings** of every commitment in *unused* ballot parts and in both
//!   parts of unvoted ballots (its EA-signed raw shares);
//! * **ZK final-move shares** for every commitment in *used* parts — its
//!   affine-coefficient shares evaluated at the voter-coin challenge, which
//!   is a valid Shamir share of the exact prover response;
//! * its additively-combined **share of the tally opening** (the sum over
//!   the cast rows' per-option openings).
//!
//! The BB reconstructs with `h_t` shares and verifies everything against
//! the perfectly-binding commitments.

#![warn(missing_docs)]

use ddemos_bb::BbSnapshot;
use ddemos_crypto::field::Scalar;
use ddemos_crypto::schnorr::Signature;
use ddemos_protocol::exec::Pool;
use ddemos_protocol::initdata::TrusteeInit;
use ddemos_protocol::posts::{PartOpeningPost, PartZkPost, TallySharePost, TrusteePost};
use ddemos_protocol::{PartId, SerialNo};

/// Errors a trustee can hit while validating BB data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrusteeError {
    /// The BB majority has not published the final vote set yet.
    VoteSetMissing,
    /// The BB majority has not published decrypted codes / challenge yet.
    CodesMissing,
    /// A cast vote code does not appear in any row of its ballot.
    CastCodeNotFound,
}

impl std::fmt::Display for TrusteeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            TrusteeError::VoteSetMissing => "final vote set not yet on the bulletin board",
            TrusteeError::CodesMissing => "decrypted vote codes not yet on the bulletin board",
            TrusteeError::CastCodeNotFound => "cast vote code not present in ballot rows",
        };
        write!(f, "{msg}")
    }
}
impl std::error::Error for TrusteeError {}

/// One trustee.
pub struct Trustee {
    init: TrusteeInit,
    pool: Pool,
}

impl Trustee {
    /// Creates a trustee from its EA-dealt initialization data, on the
    /// default executor (`DDEMOS_THREADS` / available parallelism).
    pub fn new(init: TrusteeInit) -> Trustee {
        Trustee {
            init,
            pool: Pool::from_env(),
        }
    }

    /// Sets the worker count used by [`Trustee::produce_post`]'s
    /// per-ballot share processing.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Trustee {
        self.pool = Pool::new(threads);
        self
    }

    /// This trustee's index.
    pub fn index(&self) -> u32 {
        self.init.index
    }

    /// Produces this trustee's complete post from a majority-read BB
    /// snapshot, plus the signature authenticating it as a BB write.
    ///
    /// # Errors
    /// Fails if the snapshot does not yet carry the vote set, decrypted
    /// codes and challenge, or if it is internally inconsistent.
    pub fn produce_post(
        &self,
        snapshot: &BbSnapshot,
    ) -> Result<(TrusteePost, Signature), TrusteeError> {
        let vote_set = snapshot
            .vote_set
            .as_ref()
            .ok_or(TrusteeError::VoteSetMissing)?;
        let challenge = snapshot.challenge.ok_or(TrusteeError::CodesMissing)?;
        if snapshot.decrypted_codes.is_empty() {
            return Err(TrusteeError::CodesMissing);
        }
        let m = self.init.params.num_options;

        // Per-ballot share processing is independent, so it is mapped over
        // the pool; serials are sorted first and the pool preserves input
        // order, keeping the post byte-identical across thread counts.
        let mut serials: Vec<SerialNo> = self.init.ballots.keys().copied().collect();
        serials.sort();
        struct BallotOut {
            openings: Vec<PartOpeningPost>,
            zk: Option<PartZkPost>,
            tally: Option<Vec<(Scalar, Scalar)>>,
        }
        let per_ballot: Vec<Result<BallotOut, TrusteeError>> = self.pool.map(&serials, |&serial| {
            let shares = &self.init.ballots[&serial];
            let Some(code) = vote_set.entries.get(&serial) else {
                // Unvoted ballot: open both parts.
                let openings = PartId::BOTH
                    .into_iter()
                    .map(|part| {
                        let part_shares = &shares.parts[part.index()];
                        PartOpeningPost {
                            serial,
                            part,
                            rows: part_shares.opening_pairs(),
                            opening_sig: part_shares.opening_sig,
                        }
                    })
                    .collect();
                return Ok(BallotOut {
                    openings,
                    zk: None,
                    tally: None,
                });
            };
            // Locate the used part and cast row via the published
            // decrypted codes.
            let mut located = None;
            for part in PartId::BOTH {
                if let Some(codes) = snapshot.decrypted_codes.get(&(serial, part.index() as u8)) {
                    if let Some(row) = codes.iter().position(|c| c == code) {
                        located = Some((part, row));
                        break;
                    }
                }
            }
            let (used_part, cast_row) = located.ok_or(TrusteeError::CastCodeNotFound)?;
            let unused = used_part.other();
            // Unused part: raw opening shares (EA-signed bundle).
            let part_shares = &shares.parts[unused.index()];
            let openings = vec![PartOpeningPost {
                serial,
                part: unused,
                rows: part_shares.opening_pairs(),
                opening_sig: part_shares.opening_sig,
            }];
            // Used part: ZK responses at the challenge.
            let used_shares = &shares.parts[used_part.index()];
            let rows: Vec<Vec<[Scalar; 4]>> = used_shares
                .rows
                .iter()
                .map(|row| {
                    row.cts
                        .iter()
                        .map(|ct| {
                            let c = &ct.or_coeffs;
                            [
                                c[0] * challenge + c[1],
                                c[2] * challenge + c[3],
                                c[4] * challenge + c[5],
                                c[6] * challenge + c[7],
                            ]
                        })
                        .collect()
                })
                .collect();
            let sum_responses: Vec<Scalar> = used_shares
                .rows
                .iter()
                .map(|row| row.sum_coeffs[0] * challenge + row.sum_coeffs[1])
                .collect();
            // Tally contribution: the cast row's per-option opening
            // shares join the (additively homomorphic) total.
            let tally: Vec<(Scalar, Scalar)> = used_shares.rows[cast_row]
                .cts
                .iter()
                .map(|ct| (ct.bit, ct.rand))
                .collect();
            Ok(BallotOut {
                openings,
                zk: Some(PartZkPost {
                    serial,
                    part: used_part,
                    rows,
                    sum_responses,
                }),
                tally: Some(tally),
            })
        });

        let mut openings = Vec::new();
        let mut zk = Vec::new();
        let mut tally_sums: Vec<(Scalar, Scalar)> = vec![(Scalar::ZERO, Scalar::ZERO); m];
        for out in per_ballot {
            let out = out?;
            openings.extend(out.openings);
            zk.extend(out.zk);
            if let Some(tally) = out.tally {
                for (j, (bit, rand)) in tally.into_iter().enumerate() {
                    tally_sums[j].0 += bit;
                    tally_sums[j].1 += rand;
                }
            }
        }
        let post = TrusteePost {
            trustee_index: self.init.index,
            openings,
            zk,
            tally: TallySharePost {
                per_option: tally_sums,
            },
        };
        let digest = ddemos_bb::trustee_post_digest(&post);
        let signature = self.init.signing_key.sign(&digest);
        Ok((post, signature))
    }
}
