//! The Vote Collector node: the voting protocol of Algorithm 1 and the
//! election-end Vote Set Consensus of §III-E.
//!
//! Each node runs on its own thread, consuming authenticated messages from
//! the simulated network. Nodes validate voter requests independently (no
//! state machine replication — there is no total order across ballots) and
//! process different ballots concurrently, exactly as the paper argues is
//! the key to vote-collection throughput.
//!
//! Lifecycle:
//!
//! 1. **Voting phase** (`start ≤ clock < Tend`): VOTE → ENDORSE →
//!    ENDORSEMENT → UCERT → VOTE_P → receipt reconstruction → reply.
//! 2. **Vote-set consensus** (clock ≥ `Tend`): batched ANNOUNCE dispersal,
//!    one batched binary consensus over "is this ballot voted?", and the
//!    RECOVER sub-protocol for decided-1 ballots with locally unknown
//!    codes.
//! 3. **Finalization**: the agreed vote set, signed, handed to the caller
//!    for submission to every BB node.

use crate::behavior::VcBehavior;
use crate::durable::{BallotSlot, DurableView, Status, VcRecord};
use crate::store::BallotStore;
use crossbeam_channel::Sender;
use ddemos_consensus::BatchConsensus;
use ddemos_crypto::schnorr::Signature;
use ddemos_crypto::sha256::sha256;
use ddemos_crypto::votecode::VoteCode;
use ddemos_crypto::vss::{DealerVss, SignedShare};
use ddemos_net::{Endpoint, Envelope};
use ddemos_protocol::clock::NodeClock;
use ddemos_protocol::initdata::{endorsement_message, receipt_share_context, VcInit};
use ddemos_protocol::messages::{
    AnnounceEntry, ConsensusMsg, Msg, RejectReason, UCert, VoteOutcome,
};
use ddemos_protocol::posts::VoteSet;
use ddemos_protocol::{NodeId, NodeKind, PartId, SerialNo};
use ddemos_storage::DynJournal;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The signed vote set a node submits to the Bulletin Board subsystem.
#[derive(Clone, Debug)]
pub struct FinalizedVoteSet {
    /// The submitting node's index.
    pub node_index: u32,
    /// The agreed set of voted ballots.
    pub vote_set: VoteSet,
    /// Signature over [`ddemos_protocol::initdata::voteset_message`].
    pub signature: Signature,
    /// This node's `msk` share (EA-signed), released to BB nodes at end.
    pub msk_share: SignedShare,
    /// Node-clock time (simulation ms) when this node entered the
    /// ANNOUNCE phase. Stamped inside the simulation so vote-set-consensus
    /// timing is deterministic under a virtual clock (a driver-side
    /// wall-clock sample would race with still-running nodes).
    pub announce_at_ms: u64,
    /// Node-clock time (simulation ms) when this node finalized.
    pub finalized_at_ms: u64,
}

/// Runtime configuration of a node.
#[derive(Clone, Debug)]
pub struct VcNodeConfig {
    /// Behaviour profile (honest by default).
    pub behavior: VcBehavior,
    /// Event-loop poll granularity (clock checks between messages).
    pub poll: Duration,
}

impl Default for VcNodeConfig {
    fn default() -> Self {
        VcNodeConfig {
            behavior: VcBehavior::Honest,
            poll: Duration::from_millis(1),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Voting,
    Announce,
    Consensus,
    Recover,
    Done,
}

/// Handle to a spawned VC node.
pub struct VcHandle {
    /// The node's id on the network.
    pub id: NodeId,
    stop: Arc<AtomicBool>,
    force_end: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl VcHandle {
    /// Requests the node to stop without joining (callers that must first
    /// wake the node — e.g. by closing a virtual clock — set every flag,
    /// release the wakes, then join).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Requests the node to stop and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Closes the polls immediately (the node behaves as if its clock
    /// passed `Tend`). Benchmarks use this instead of predicting the
    /// voting-window length.
    pub fn close_polls(&self) {
        self.force_end.store(true, Ordering::SeqCst);
    }
}

impl Drop for VcHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The vote collector node state.
pub struct VcNode<S> {
    init: VcInit,
    store: S,
    endpoint: Endpoint,
    clock: NodeClock,
    config: VcNodeConfig,
    beacon: u64,
    result_tx: Sender<FinalizedVoteSet>,
    slots: HashMap<SerialNo, BallotSlot>,
    phase: Phase,
    votes_handled: u64,
    announce_at_ms: u64,
    /// Durable journal (snapshot + WAL); `None` runs the node purely
    /// in-memory, the pre-durability behaviour.
    journal: Option<DynJournal>,
    /// Whether this node has delivered its finalized vote set (persisted,
    /// so an amnesia recovery cannot deliver a second one).
    finalized: bool,
    /// Digests of already-verified UCERTs.
    verified_ucerts: HashSet<[u8; 32]>,
    announce_from: HashSet<u32>,
    consensus: Option<BatchConsensus>,
    buffered_consensus: Vec<(u32, ConsensusMsg)>,
    decision: Option<Vec<bool>>,
    vc_peers: Vec<NodeId>,
    stop: Arc<AtomicBool>,
    force_end: Arc<AtomicBool>,
}

impl<S: BallotStore + 'static> VcNode<S> {
    /// Spawns a node thread; the finalized vote set is delivered on
    /// `result_tx` when vote-set consensus completes.
    pub fn spawn(
        init: VcInit,
        store: S,
        endpoint: Endpoint,
        clock: NodeClock,
        beacon: u64,
        config: VcNodeConfig,
        result_tx: Sender<FinalizedVoteSet>,
    ) -> VcHandle {
        Self::spawn_durable(
            init, store, endpoint, clock, beacon, config, result_tx, None,
        )
    }

    /// [`VcNode::spawn`] with a durable journal: ballot-slot transitions
    /// are WAL-logged (group-committed, with a forced commit before every
    /// externally visible action that depends on them), and a
    /// [`Msg::Amnesia`] power-cycle signal makes the node drop volatile
    /// state and rebuild from snapshot + WAL replay. The journal should
    /// be freshly recovered (or empty); the node replays it on start.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_durable(
        init: VcInit,
        store: S,
        endpoint: Endpoint,
        clock: NodeClock,
        beacon: u64,
        config: VcNodeConfig,
        result_tx: Sender<FinalizedVoteSet>,
        journal: Option<DynJournal>,
    ) -> VcHandle {
        let id = endpoint.id();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let force_end = Arc::new(AtomicBool::new(false));
        let force_end2 = force_end.clone();
        let vc_peers: Vec<NodeId> = (0..init.params.num_vc as u32).map(NodeId::vc).collect();
        let thread = std::thread::Builder::new()
            .name(format!("vc-{}", init.node_index))
            .spawn(move || {
                let mut node = VcNode {
                    init,
                    store,
                    endpoint,
                    clock,
                    config,
                    beacon,
                    result_tx,
                    slots: HashMap::new(),
                    phase: Phase::Voting,
                    votes_handled: 0,
                    announce_at_ms: 0,
                    journal,
                    finalized: false,
                    verified_ucerts: HashSet::new(),
                    announce_from: HashSet::new(),
                    consensus: None,
                    buffered_consensus: Vec::new(),
                    decision: None,
                    vc_peers,
                    stop: stop2,
                    force_end: force_end2,
                };
                node.run();
            })
            .expect("spawn vc node");
        VcHandle {
            id,
            stop,
            force_end,
            thread: Some(thread),
        }
    }

    fn run(&mut self) {
        // Under a virtual clock this pins the node as an actor: virtual
        // time cannot advance while this thread is processing a message,
        // which is what makes event order a pure function of the seeds.
        let _actor = self.endpoint.actor_guard();
        // A journal that already holds state (the node restarted) is
        // replayed before any message is served. Runs under the actor
        // registration so charged disk latencies advance the clock.
        self.recover_from_journal();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            match self.endpoint.recv_timeout(self.config.poll) {
                Ok(env) => self.dispatch(env),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return,
            }
            let ended = self.force_end.load(Ordering::SeqCst)
                || self.clock.now_ms() >= self.init.params.end_ms;
            if self.phase == Phase::Voting && ended {
                self.begin_announce();
            }
        }
    }

    fn quorum(&self) -> usize {
        self.init.params.vc_quorum()
    }

    fn multicast(&self, msg: Msg) {
        self.endpoint.send_many(self.vc_peers.iter(), msg);
    }

    fn in_voting_hours(&self) -> bool {
        !self.force_end.load(Ordering::SeqCst)
            && self.init.params.in_voting_hours(self.clock.now_ms())
    }

    // ----- durability ------------------------------------------------------

    /// Appends one WAL record (no-op without a journal — the closure
    /// defers record construction, so non-durable nodes pay nothing on
    /// the voting hot path). Durability is deferred to the group commit
    /// / [`VcNode::persist`].
    fn jlog(journal: &mut Option<DynJournal>, record: impl FnOnce() -> VcRecord) {
        if let Some(journal) = journal.as_mut() {
            if let Err(e) = journal.append(&record().encode()) {
                eprintln!("vc: journal append failed ({e}); continuing volatile");
            }
        }
    }

    /// Forces the journal's group commit and runs the snapshot cadence.
    /// Called before every externally visible action (a reply, an
    /// endorsement, a share disclosure) that depends on logged state.
    fn persist(&mut self) {
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        if let Err(e) = journal.commit() {
            eprintln!("vc: journal commit failed ({e})");
            return;
        }
        let view = DurableView {
            slots: &mut self.slots,
            verified_ucerts: &mut self.verified_ucerts,
            finalized: &mut self.finalized,
        };
        if let Err(e) = journal.maybe_compact(&view) {
            eprintln!("vc: journal compaction failed ({e})");
        }
    }

    /// Rebuilds the durable slot state from snapshot + WAL replay (no-op
    /// without a journal or with an empty one).
    fn recover_from_journal(&mut self) {
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        let mut view = DurableView {
            slots: &mut self.slots,
            verified_ucerts: &mut self.verified_ucerts,
            finalized: &mut self.finalized,
        };
        if let Err(e) = journal.recover(&mut view) {
            // The WAL truncated itself at the offending record, so the
            // applied prefix and the log agree; continue from the prefix.
            eprintln!("vc: journal replay stopped early ({e}); recovered the clean prefix");
        }
        if self.finalized {
            self.phase = Phase::Done;
        }
        self.finish_recovered_receipts();
    }

    /// Completes receipts the crash interrupted: a replayed slot that is
    /// `Pending` with a quorum of shares reconstructs immediately (the
    /// live node would have done so before its next message).
    fn finish_recovered_receipts(&mut self) {
        let quorum = self.quorum();
        let serials: Vec<SerialNo> = self
            .slots
            .iter()
            .filter(|(_, s)| s.status == Status::Pending && s.shares.len() >= quorum)
            .map(|(serial, _)| *serial)
            .collect();
        for serial in serials {
            let slot = self.slots.get_mut(&serial).expect("listed slot exists");
            if let Ok(secret) = DealerVss::reconstruct(&slot.shares, quorum) {
                let receipt = secret.to_u64().unwrap_or(u64::MAX);
                slot.receipt = Some(receipt);
                slot.status = Status::Voted;
                Self::jlog(&mut self.journal, || VcRecord::Voted { serial, receipt });
            }
        }
        self.persist();
    }

    /// Power-cycles the node (the `CrashAmnesia` fault): every byte of
    /// volatile state is dropped, unsynced WAL bytes are lost, and the
    /// durable projection is rebuilt from snapshot + WAL replay. Volatile
    /// scratch (waiting clients, collected endorsements, consensus
    /// buffers) is legitimately gone — voters retry, peers re-drive.
    fn crash_amnesia(&mut self) {
        self.slots.clear();
        self.verified_ucerts.clear();
        self.announce_from.clear();
        self.consensus = None;
        self.buffered_consensus.clear();
        self.decision = None;
        self.finalized = false;
        self.phase = Phase::Voting;
        if let Some(journal) = self.journal.as_mut() {
            if let Err(e) = journal.crash(0) {
                eprintln!("vc: journal crash simulation failed ({e})");
            }
        }
        self.recover_from_journal();
        // If the clock already passed `Tend` the event loop re-enters the
        // announce phase on its next iteration.
    }

    /// A replayed slot that lost a field its status implies is real
    /// corruption; a live node must refuse the ballot rather than panic.
    fn reject_corrupt_slot(&self, to: NodeId, request_id: u64, serial: SerialNo, missing: &str) {
        eprintln!(
            "vc-{}: corrupt slot {serial:?}: missing {missing}; refusing ballot",
            self.init.node_index
        );
        self.reply(
            to,
            request_id,
            serial,
            VoteOutcome::Rejected(RejectReason::InvalidVoteCode),
        );
    }

    fn dispatch(&mut self, env: Envelope) {
        if let Msg::Amnesia = env.msg {
            // Only the fault injector's self-addressed envelope counts —
            // a peer cannot remote-reboot this node.
            if env.from == self.endpoint.id() {
                self.crash_amnesia();
            }
            return;
        }
        if self.config.behavior.is_crashed_at(self.votes_handled) {
            return;
        }
        match env.msg {
            Msg::Vote {
                request_id,
                serial,
                vote_code,
            } => {
                self.votes_handled += 1;
                self.on_vote(env.from, request_id, serial, vote_code);
            }
            Msg::Endorse { serial, vote_code } => self.on_endorse(env.from, serial, vote_code),
            Msg::Endorsement {
                serial,
                vote_code,
                signature,
            } => self.on_endorsement(env.from, serial, vote_code, signature),
            Msg::VoteP {
                serial,
                vote_code,
                share,
                ucert,
            } => self.on_vote_p(env.from, serial, vote_code, share, ucert),
            Msg::Announce { entries } => self.on_announce(env.from, entries),
            Msg::RecoverRequest { serial } => self.on_recover_request(env.from, serial),
            Msg::RecoverResponse {
                serial,
                vote_code,
                ucert,
            } => self.on_recover_response(serial, vote_code, ucert),
            Msg::Consensus(cm) => self.on_consensus(env.from, cm),
            Msg::VoteReply { .. } | Msg::Rbc(_) | Msg::Amnesia => {}
        }
    }

    // ----- voting phase (Algorithm 1) -------------------------------------

    fn reply(&self, to: NodeId, request_id: u64, serial: SerialNo, outcome: VoteOutcome) {
        self.endpoint.send(
            to,
            Msg::VoteReply {
                request_id,
                serial,
                outcome,
            },
        );
    }

    fn on_vote(&mut self, from: NodeId, request_id: u64, serial: SerialNo, code: VoteCode) {
        if !self.in_voting_hours() {
            self.reply(
                from,
                request_id,
                serial,
                VoteOutcome::Rejected(RejectReason::OutsideVotingHours),
            );
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            self.reply(
                from,
                request_id,
                serial,
                VoteOutcome::Rejected(RejectReason::UnknownSerial),
            );
            return;
        };
        let slot = self.slots.entry(serial).or_default();
        match slot.status {
            Status::Voted => {
                // A `Voted` slot must carry its code and receipt; a slot
                // corrupted in recovery refuses the ballot instead of
                // panicking the node (the typed path a bad replay takes).
                let Some((used_code, ..)) = slot.used else {
                    self.reject_corrupt_slot(from, request_id, serial, "used code");
                    return;
                };
                if used_code == code {
                    let Some(receipt) = slot.receipt else {
                        self.reject_corrupt_slot(from, request_id, serial, "receipt");
                        return;
                    };
                    self.reply(from, request_id, serial, VoteOutcome::Receipt(receipt));
                } else {
                    self.reply(
                        from,
                        request_id,
                        serial,
                        VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode),
                    );
                }
            }
            Status::Pending => {
                // Same typed handling on the recovery-adjacent path: a
                // `Pending` slot without a code is corrupt, not a panic.
                let Some((used_code, ..)) = slot.used else {
                    self.reject_corrupt_slot(from, request_id, serial, "pending code");
                    return;
                };
                if used_code == code {
                    // Remember the client; reply when the receipt is ready.
                    slot.waiting.push((from, request_id, code));
                } else {
                    self.reply(
                        from,
                        request_id,
                        serial,
                        VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode),
                    );
                }
            }
            Status::NotVoted => {
                if let Some((active, ..)) = slot.used {
                    // An endorsement round is already in flight for this
                    // ballot (we are its responder).
                    if active == code {
                        slot.waiting.push((from, request_id, code));
                    } else {
                        self.reply(
                            from,
                            request_id,
                            serial,
                            VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode),
                        );
                    }
                    return;
                }
                let Some((part, row)) = ballot.find_code(&code) else {
                    self.reply(
                        from,
                        request_id,
                        serial,
                        VoteOutcome::Rejected(RejectReason::InvalidVoteCode),
                    );
                    return;
                };
                // Become the responder: collect endorsements.
                slot.used = Some((code, part, row));
                slot.waiting.push((from, request_id, code));
                slot.endorsements.clear();
                Self::jlog(&mut self.journal, || VcRecord::Used {
                    serial,
                    code,
                    part,
                    row: row as u32,
                });
                let slot = self.slots.get_mut(&serial).expect("slot just created");
                // Our own endorsement (also blocks endorsing other codes).
                if slot.my_endorsed.is_none() {
                    slot.my_endorsed = Some(code);
                    let sig = self.init.signing_key.sign(&endorsement_message(
                        &self.init.params.election_id,
                        serial,
                        &sha256(&code.0),
                    ));
                    slot.endorsements.push((self.init.node_index, sig));
                    Self::jlog(&mut self.journal, || VcRecord::Endorsed { serial, code });
                }
                // The endorsed/used state must be durable before peers can
                // observe it through our ENDORSE multicast.
                self.persist();
                self.multicast(Msg::Endorse {
                    serial,
                    vote_code: code,
                });
                self.check_ucert_complete(serial);
            }
        }
    }

    fn on_endorse(&mut self, from: NodeId, serial: SerialNo, code: VoteCode) {
        if from.kind != NodeKind::Vc || !self.in_voting_hours() {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        if ballot.find_code(&code).is_none() {
            return;
        }
        let slot = self.slots.entry(serial).or_default();
        let may_endorse = match slot.my_endorsed {
            None => true,
            Some(prev) => prev == code || self.config.behavior == VcBehavior::EquivocalEndorser,
        };
        if !may_endorse {
            return;
        }
        slot.my_endorsed.get_or_insert(code);
        Self::jlog(&mut self.journal, || VcRecord::Endorsed { serial, code });
        let sig = self.init.signing_key.sign(&endorsement_message(
            &self.init.params.election_id,
            serial,
            &sha256(&code.0),
        ));
        // The endorsement must be durable before it leaves the node: a
        // restarted node must never sign a *different* code for this
        // ballot (the receipt-uniqueness obligation).
        self.persist();
        self.endpoint.send(
            from,
            Msg::Endorsement {
                serial,
                vote_code: code,
                signature: sig,
            },
        );
    }

    fn on_endorsement(&mut self, from: NodeId, serial: SerialNo, code: VoteCode, sig: Signature) {
        if from.kind != NodeKind::Vc {
            return;
        }
        let sender = from.index;
        let quorum = self.quorum();
        let eid = self.init.params.election_id;
        let Some(vk) = self.init.vc_keys.get(sender as usize).copied() else {
            return;
        };
        let Some(slot) = self.slots.get_mut(&serial) else {
            return;
        };
        // Only relevant while we are responder for exactly this code.
        let Some((used_code, ..)) = slot.used else {
            return;
        };
        if used_code != code || slot.status != Status::NotVoted {
            return;
        }
        if slot.endorsements.iter().any(|(i, _)| *i == sender) {
            return;
        }
        if !vk.verify(&endorsement_message(&eid, serial, &sha256(&code.0)), &sig) {
            return;
        }
        slot.endorsements.push((sender, sig));
        let _ = quorum;
        self.check_ucert_complete(serial);
    }

    /// Forms the UCERT once `Nv−fv` endorsements are in, then discloses our
    /// receipt share (VOTE_P).
    fn check_ucert_complete(&mut self, serial: SerialNo) {
        let quorum = self.quorum();
        let Some(slot) = self.slots.get_mut(&serial) else {
            return;
        };
        if slot.status != Status::NotVoted || slot.ucert.is_some() {
            return;
        }
        if slot.endorsements.len() < quorum {
            return;
        }
        let (code, part, row) = slot.used.expect("responder has code");
        let ucert = Arc::new(UCert {
            serial,
            vote_code: code,
            sigs: slot.endorsements.clone(),
        });
        self.verified_ucerts.insert(ucert.key_digest());
        slot.ucert = Some(ucert.clone());
        slot.status = Status::Pending;
        Self::jlog(&mut self.journal, || VcRecord::Certified {
            serial,
            ucert: (*ucert).clone(),
        });
        Self::jlog(&mut self.journal, || VcRecord::Pending { serial });
        self.disclose_share(serial, code, part, row, ucert);
    }

    /// Sends our VOTE_P (receipt share) for a ballot, marking it pending.
    fn disclose_share(
        &mut self,
        serial: SerialNo,
        code: VoteCode,
        part: PartId,
        row: usize,
        ucert: Arc<UCert>,
    ) {
        if self.config.behavior == VcBehavior::WithholdShares {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        let mut share = ballot.parts[part.index()][row].receipt_share;
        if self.config.behavior == VcBehavior::CorruptShares {
            share.share.value += ddemos_crypto::field::Scalar::ONE;
        }
        {
            let slot = self.slots.entry(serial).or_default();
            if slot.my_share_sent {
                return;
            }
            slot.my_share_sent = true;
        }
        Self::jlog(&mut self.journal, || VcRecord::ShareSent { serial });
        // The UCERT and share-sent marker must be durable before the
        // share is disclosed to peers.
        self.persist();
        self.multicast(Msg::VoteP {
            serial,
            vote_code: code,
            share,
            ucert,
        });
    }

    fn verify_ucert(&mut self, ucert: &UCert) -> bool {
        let digest = ucert.key_digest();
        if self.verified_ucerts.contains(&digest) {
            return true;
        }
        if ucert.verify(
            &self.init.params.election_id,
            &self.init.params,
            &self.init.vc_keys,
        ) {
            self.verified_ucerts.insert(digest);
            true
        } else {
            false
        }
    }

    fn on_vote_p(
        &mut self,
        from: NodeId,
        serial: SerialNo,
        code: VoteCode,
        share: SignedShare,
        ucert: Arc<UCert>,
    ) {
        if from.kind != NodeKind::Vc || !self.in_voting_hours() {
            return;
        }
        if ucert.serial != serial || ucert.vote_code != code || !self.verify_ucert(&ucert) {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        let Some((part, row)) = ballot.find_code(&code) else {
            return;
        };
        // Verify the EA signature over the disclosed share.
        let ctx = receipt_share_context(&self.init.params.election_id, serial, part, row);
        if !DealerVss::verify(&self.init.ea_key, &ctx, &share) {
            return;
        }
        let quorum = self.quorum();
        let mut became_pending = false;
        {
            let slot = self.slots.entry(serial).or_default();
            match slot.status {
                Status::NotVoted => {
                    slot.status = Status::Pending;
                    slot.used = Some((code, part, row));
                    slot.ucert = Some(ucert.clone());
                    became_pending = true;
                    Self::jlog(&mut self.journal, || VcRecord::Used {
                        serial,
                        code,
                        part,
                        row: row as u32,
                    });
                    Self::jlog(&mut self.journal, || VcRecord::Certified {
                        serial,
                        ucert: (*ucert).clone(),
                    });
                    Self::jlog(&mut self.journal, || VcRecord::Pending { serial });
                }
                Status::Pending | Status::Voted => {
                    // An active slot must carry its code; a slot corrupted
                    // in recovery drops the message instead of panicking.
                    let Some((used_code, ..)) = slot.used else {
                        eprintln!(
                            "vc-{}: corrupt slot {serial:?}: active without code; dropping VOTE_P",
                            self.init.node_index
                        );
                        return;
                    };
                    if used_code != code {
                        // A valid UCERT for a different code cannot exist
                        // alongside ours (quorum intersection); drop.
                        return;
                    }
                    if slot.ucert.is_none() {
                        slot.ucert = Some(ucert.clone());
                        Self::jlog(&mut self.journal, || VcRecord::Certified {
                            serial,
                            ucert: (*ucert).clone(),
                        });
                    }
                }
            }
            let slot = self.slots.get_mut(&serial).expect("slot just touched");
            if !slot
                .shares
                .iter()
                .any(|s| s.share.index == share.share.index)
            {
                slot.shares.push(share);
                Self::jlog(&mut self.journal, || VcRecord::ShareStored {
                    serial,
                    share,
                });
            }
        }
        if became_pending {
            self.disclose_share(serial, code, part, row, ucert);
        }
        // Reconstruct once enough shares are in.
        let slot = self.slots.get_mut(&serial).expect("slot exists");
        if slot.status != Status::Voted && slot.shares.len() >= quorum {
            if let Ok(secret) = DealerVss::reconstruct(&slot.shares, quorum) {
                let receipt = secret.to_u64().unwrap_or(u64::MAX);
                slot.receipt = Some(receipt);
                slot.status = Status::Voted;
                let waiting = std::mem::take(&mut slot.waiting);
                Self::jlog(&mut self.journal, || VcRecord::Voted { serial, receipt });
                // The receipt must be durable before any client sees it:
                // re-issuing a *different* receipt after a crash is the
                // exact safety violation durability exists to prevent.
                self.persist();
                for (client, request_id, wanted) in waiting {
                    // Only waiters of the *winning* code get the receipt; a
                    // racing different-code request lost the uniqueness race.
                    let outcome = if wanted == code {
                        VoteOutcome::Receipt(receipt)
                    } else {
                        VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode)
                    };
                    self.reply(client, request_id, serial, outcome);
                }
            }
        }
    }

    // ----- vote-set consensus (§III-E end-of-election) ---------------------

    fn begin_announce(&mut self) {
        self.phase = Phase::Announce;
        self.announce_at_ms = self.clock.now_ms();
        let entries: Vec<AnnounceEntry> = (0..self.store.num_ballots())
            .map(|s| {
                let serial = SerialNo(s);
                let vote = self.slots.get(&serial).and_then(|slot| {
                    let (code, ..) = slot.used?;
                    let ucert = slot.ucert.clone()?;
                    Some((code, ucert))
                });
                AnnounceEntry { serial, vote }
            })
            .collect();
        self.multicast(Msg::Announce {
            entries: Arc::new(entries),
        });
    }

    fn on_announce(&mut self, from: NodeId, entries: Arc<Vec<AnnounceEntry>>) {
        if from.kind != NodeKind::Vc || self.phase == Phase::Voting {
            return;
        }
        if !self.announce_from.insert(from.index) {
            return;
        }
        for entry in entries.iter() {
            let Some((code, ucert)) = &entry.vote else {
                continue;
            };
            self.adopt_code(entry.serial, *code, ucert.clone());
        }
        if self.phase == Phase::Announce && self.announce_from.len() >= self.quorum() {
            self.begin_consensus();
        }
    }

    /// Adopts a (code, UCERT) learned from a peer for a ballot we had no
    /// certified code for.
    fn adopt_code(&mut self, serial: SerialNo, code: VoteCode, ucert: Arc<UCert>) {
        let known = self
            .slots
            .get(&serial)
            .map(|s| s.ucert.is_some())
            .unwrap_or(false);
        if known {
            return;
        }
        if ucert.serial != serial || ucert.vote_code != code || !self.verify_ucert(&ucert) {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        let Some((part, row)) = ballot.find_code(&code) else {
            return;
        };
        let slot = self.slots.entry(serial).or_default();
        slot.used = Some((code, part, row));
        slot.ucert = Some(ucert.clone());
        Self::jlog(&mut self.journal, || VcRecord::Used {
            serial,
            code,
            part,
            row: row as u32,
        });
        Self::jlog(&mut self.journal, || VcRecord::Certified {
            serial,
            ucert: (*ucert).clone(),
        });
    }

    fn begin_consensus(&mut self) {
        self.phase = Phase::Consensus;
        let invert = self.config.behavior == VcBehavior::ConsensusInverter;
        let initial: Vec<bool> = (0..self.store.num_ballots())
            .map(|s| {
                let known = self
                    .slots
                    .get(&SerialNo(s))
                    .map(|slot| slot.ucert.is_some())
                    .unwrap_or(false);
                known != invert
            })
            .collect();
        let (bc, msgs) = BatchConsensus::new(
            self.init.params.num_vc,
            self.init.params.vc_faults(),
            self.init.node_index,
            initial,
            self.beacon,
        );
        self.consensus = Some(bc);
        for m in msgs {
            self.multicast(Msg::Consensus(m));
        }
        let buffered = std::mem::take(&mut self.buffered_consensus);
        for (from, cm) in buffered {
            self.feed_consensus(from, cm);
        }
    }

    fn on_consensus(&mut self, from: NodeId, cm: ConsensusMsg) {
        if from.kind != NodeKind::Vc {
            return;
        }
        if self.consensus.is_none() {
            self.buffered_consensus.push((from.index, cm));
            return;
        }
        self.feed_consensus(from.index, cm);
    }

    fn feed_consensus(&mut self, from: u32, cm: ConsensusMsg) {
        let Some(bc) = self.consensus.as_mut() else {
            return;
        };
        let outs = bc.handle(from, &cm);
        for m in outs {
            self.multicast(Msg::Consensus(m));
        }
        if self.decision.is_none() {
            if let Some(decision) = self.consensus.as_ref().and_then(|b| b.decision()) {
                self.decision = Some(decision);
                self.begin_recover();
            }
        }
    }

    fn begin_recover(&mut self) {
        self.phase = Phase::Recover;
        let decision = self.decision.clone().expect("decision set");
        let mut missing = Vec::new();
        for (i, voted) in decision.iter().enumerate() {
            if !voted {
                continue;
            }
            let serial = SerialNo(i as u64);
            let known = self
                .slots
                .get(&serial)
                .map(|s| s.ucert.is_some())
                .unwrap_or(false);
            if !known {
                missing.push(serial);
            }
        }
        for serial in missing {
            self.multicast(Msg::RecoverRequest { serial });
        }
        self.try_finalize();
    }

    fn on_recover_request(&mut self, from: NodeId, serial: SerialNo) {
        if from.kind != NodeKind::Vc
            || self.phase == Phase::Voting
            || self.config.behavior == VcBehavior::ConsensusInverter
        {
            return;
        }
        let Some(slot) = self.slots.get(&serial) else {
            return;
        };
        let (Some((code, ..)), Some(ucert)) = (slot.used, slot.ucert.clone()) else {
            return;
        };
        self.endpoint.send(
            from,
            Msg::RecoverResponse {
                serial,
                vote_code: code,
                ucert,
            },
        );
    }

    fn on_recover_response(&mut self, serial: SerialNo, code: VoteCode, ucert: Arc<UCert>) {
        if self.phase != Phase::Recover {
            return;
        }
        self.adopt_code(serial, code, ucert);
        self.try_finalize();
    }

    fn try_finalize(&mut self) {
        if self.phase != Phase::Recover {
            return;
        }
        let decision = self.decision.as_ref().expect("decided");
        let mut set = VoteSet::default();
        for (i, voted) in decision.iter().enumerate() {
            if !voted {
                continue;
            }
            let serial = SerialNo(i as u64);
            match self
                .slots
                .get(&serial)
                .and_then(|s| s.used.map(|(c, ..)| c))
            {
                Some(code) if self.slots[&serial].ucert.is_some() => {
                    set.entries.insert(serial, code);
                }
                _ => return, // still waiting on RECOVER responses
            }
        }
        let digest = set.digest();
        let msg =
            ddemos_protocol::initdata::voteset_message(&self.init.params.election_id, &digest);
        let signature = self.init.signing_key.sign(&msg);
        self.finalized = true;
        Self::jlog(&mut self.journal, || VcRecord::Finalized);
        // Durable before delivery: a recovered node must not release a
        // second finalized set.
        self.persist();
        let _ = self.result_tx.send(FinalizedVoteSet {
            node_index: self.init.node_index,
            vote_set: set,
            signature,
            msk_share: self.init.msk_share,
            announce_at_ms: self.announce_at_ms,
            finalized_at_ms: self.clock.now_ms(),
        });
        self.phase = Phase::Done;
    }
}
