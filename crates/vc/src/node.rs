//! The Vote Collector node: the voting protocol of Algorithm 1 and the
//! election-end Vote Set Consensus of §III-E.
//!
//! Each node runs on its own thread, consuming authenticated messages from
//! the simulated network. Nodes validate voter requests independently (no
//! state machine replication — there is no total order across ballots) and
//! process different ballots concurrently, exactly as the paper argues is
//! the key to vote-collection throughput.
//!
//! Lifecycle:
//!
//! 1. **Voting phase** (`start ≤ clock < Tend`): VOTE → ENDORSE →
//!    ENDORSEMENT → UCERT → VOTE_P → receipt reconstruction → reply.
//! 2. **Vote-set consensus** (clock ≥ `Tend`): batched ANNOUNCE dispersal,
//!    one batched binary consensus over "is this ballot voted?", and the
//!    RECOVER sub-protocol for decided-1 ballots with locally unknown
//!    codes.
//! 3. **Finalization**: the agreed vote set, signed, handed to the caller
//!    for submission to every BB node.

use crate::behavior::VcBehavior;
use crate::store::BallotStore;
use crossbeam_channel::Sender;
use ddemos_consensus::BatchConsensus;
use ddemos_crypto::schnorr::Signature;
use ddemos_crypto::sha256::sha256;
use ddemos_crypto::votecode::VoteCode;
use ddemos_crypto::vss::{DealerVss, SignedShare};
use ddemos_net::{Endpoint, Envelope};
use ddemos_protocol::clock::NodeClock;
use ddemos_protocol::initdata::{endorsement_message, receipt_share_context, VcInit};
use ddemos_protocol::messages::{
    AnnounceEntry, ConsensusMsg, Msg, RejectReason, UCert, VoteOutcome,
};
use ddemos_protocol::posts::VoteSet;
use ddemos_protocol::{NodeId, NodeKind, PartId, SerialNo};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The signed vote set a node submits to the Bulletin Board subsystem.
#[derive(Clone, Debug)]
pub struct FinalizedVoteSet {
    /// The submitting node's index.
    pub node_index: u32,
    /// The agreed set of voted ballots.
    pub vote_set: VoteSet,
    /// Signature over [`ddemos_protocol::initdata::voteset_message`].
    pub signature: Signature,
    /// This node's `msk` share (EA-signed), released to BB nodes at end.
    pub msk_share: SignedShare,
    /// Node-clock time (simulation ms) when this node entered the
    /// ANNOUNCE phase. Stamped inside the simulation so vote-set-consensus
    /// timing is deterministic under a virtual clock (a driver-side
    /// wall-clock sample would race with still-running nodes).
    pub announce_at_ms: u64,
    /// Node-clock time (simulation ms) when this node finalized.
    pub finalized_at_ms: u64,
}

/// Runtime configuration of a node.
#[derive(Clone, Debug)]
pub struct VcNodeConfig {
    /// Behaviour profile (honest by default).
    pub behavior: VcBehavior,
    /// Event-loop poll granularity (clock checks between messages).
    pub poll: Duration,
}

impl Default for VcNodeConfig {
    fn default() -> Self {
        VcNodeConfig {
            behavior: VcBehavior::Honest,
            poll: Duration::from_millis(1),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    NotVoted,
    Pending,
    Voted,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Voting,
    Announce,
    Consensus,
    Recover,
    Done,
}

struct BallotSlot {
    status: Status,
    /// The unique code active for this ballot, with its located position.
    used: Option<(VoteCode, PartId, usize)>,
    /// The code this node has endorsed (at most one per ballot).
    my_endorsed: Option<VoteCode>,
    /// Endorsement signatures collected while acting as responder.
    endorsements: Vec<(u32, Signature)>,
    ucert: Option<Arc<UCert>>,
    /// Verified receipt shares (distinct share indices).
    shares: Vec<SignedShare>,
    my_share_sent: bool,
    receipt: Option<u64>,
    /// Clients awaiting a receipt: (client, request id, requested code).
    waiting: Vec<(NodeId, u64, VoteCode)>,
}

impl Default for BallotSlot {
    fn default() -> Self {
        BallotSlot {
            status: Status::NotVoted,
            used: None,
            my_endorsed: None,
            endorsements: Vec::new(),
            ucert: None,
            shares: Vec::new(),
            my_share_sent: false,
            receipt: None,
            waiting: Vec::new(),
        }
    }
}

/// Handle to a spawned VC node.
pub struct VcHandle {
    /// The node's id on the network.
    pub id: NodeId,
    stop: Arc<AtomicBool>,
    force_end: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl VcHandle {
    /// Requests the node to stop without joining (callers that must first
    /// wake the node — e.g. by closing a virtual clock — set every flag,
    /// release the wakes, then join).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Requests the node to stop and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Closes the polls immediately (the node behaves as if its clock
    /// passed `Tend`). Benchmarks use this instead of predicting the
    /// voting-window length.
    pub fn close_polls(&self) {
        self.force_end.store(true, Ordering::SeqCst);
    }
}

impl Drop for VcHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The vote collector node state.
pub struct VcNode<S> {
    init: VcInit,
    store: S,
    endpoint: Endpoint,
    clock: NodeClock,
    config: VcNodeConfig,
    beacon: u64,
    result_tx: Sender<FinalizedVoteSet>,
    slots: HashMap<SerialNo, BallotSlot>,
    phase: Phase,
    votes_handled: u64,
    announce_at_ms: u64,
    /// Digests of already-verified UCERTs.
    verified_ucerts: HashSet<[u8; 32]>,
    announce_from: HashSet<u32>,
    consensus: Option<BatchConsensus>,
    buffered_consensus: Vec<(u32, ConsensusMsg)>,
    decision: Option<Vec<bool>>,
    vc_peers: Vec<NodeId>,
    stop: Arc<AtomicBool>,
    force_end: Arc<AtomicBool>,
}

impl<S: BallotStore + 'static> VcNode<S> {
    /// Spawns a node thread; the finalized vote set is delivered on
    /// `result_tx` when vote-set consensus completes.
    pub fn spawn(
        init: VcInit,
        store: S,
        endpoint: Endpoint,
        clock: NodeClock,
        beacon: u64,
        config: VcNodeConfig,
        result_tx: Sender<FinalizedVoteSet>,
    ) -> VcHandle {
        let id = endpoint.id();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let force_end = Arc::new(AtomicBool::new(false));
        let force_end2 = force_end.clone();
        let vc_peers: Vec<NodeId> = (0..init.params.num_vc as u32).map(NodeId::vc).collect();
        let thread = std::thread::Builder::new()
            .name(format!("vc-{}", init.node_index))
            .spawn(move || {
                let mut node = VcNode {
                    init,
                    store,
                    endpoint,
                    clock,
                    config,
                    beacon,
                    result_tx,
                    slots: HashMap::new(),
                    phase: Phase::Voting,
                    votes_handled: 0,
                    announce_at_ms: 0,
                    verified_ucerts: HashSet::new(),
                    announce_from: HashSet::new(),
                    consensus: None,
                    buffered_consensus: Vec::new(),
                    decision: None,
                    vc_peers,
                    stop: stop2,
                    force_end: force_end2,
                };
                node.run();
            })
            .expect("spawn vc node");
        VcHandle {
            id,
            stop,
            force_end,
            thread: Some(thread),
        }
    }

    fn run(&mut self) {
        // Under a virtual clock this pins the node as an actor: virtual
        // time cannot advance while this thread is processing a message,
        // which is what makes event order a pure function of the seeds.
        let _actor = self.endpoint.actor_guard();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            match self.endpoint.recv_timeout(self.config.poll) {
                Ok(env) => self.dispatch(env),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return,
            }
            let ended = self.force_end.load(Ordering::SeqCst)
                || self.clock.now_ms() >= self.init.params.end_ms;
            if self.phase == Phase::Voting && ended {
                self.begin_announce();
            }
        }
    }

    fn quorum(&self) -> usize {
        self.init.params.vc_quorum()
    }

    fn multicast(&self, msg: Msg) {
        self.endpoint.send_many(self.vc_peers.iter(), msg);
    }

    fn in_voting_hours(&self) -> bool {
        !self.force_end.load(Ordering::SeqCst)
            && self.init.params.in_voting_hours(self.clock.now_ms())
    }

    fn dispatch(&mut self, env: Envelope) {
        if self.config.behavior.is_crashed_at(self.votes_handled) {
            return;
        }
        match env.msg {
            Msg::Vote {
                request_id,
                serial,
                vote_code,
            } => {
                self.votes_handled += 1;
                self.on_vote(env.from, request_id, serial, vote_code);
            }
            Msg::Endorse { serial, vote_code } => self.on_endorse(env.from, serial, vote_code),
            Msg::Endorsement {
                serial,
                vote_code,
                signature,
            } => self.on_endorsement(env.from, serial, vote_code, signature),
            Msg::VoteP {
                serial,
                vote_code,
                share,
                ucert,
            } => self.on_vote_p(env.from, serial, vote_code, share, ucert),
            Msg::Announce { entries } => self.on_announce(env.from, entries),
            Msg::RecoverRequest { serial } => self.on_recover_request(env.from, serial),
            Msg::RecoverResponse {
                serial,
                vote_code,
                ucert,
            } => self.on_recover_response(serial, vote_code, ucert),
            Msg::Consensus(cm) => self.on_consensus(env.from, cm),
            Msg::VoteReply { .. } | Msg::Rbc(_) => {}
        }
    }

    // ----- voting phase (Algorithm 1) -------------------------------------

    fn reply(&self, to: NodeId, request_id: u64, serial: SerialNo, outcome: VoteOutcome) {
        self.endpoint.send(
            to,
            Msg::VoteReply {
                request_id,
                serial,
                outcome,
            },
        );
    }

    fn on_vote(&mut self, from: NodeId, request_id: u64, serial: SerialNo, code: VoteCode) {
        if !self.in_voting_hours() {
            self.reply(
                from,
                request_id,
                serial,
                VoteOutcome::Rejected(RejectReason::OutsideVotingHours),
            );
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            self.reply(
                from,
                request_id,
                serial,
                VoteOutcome::Rejected(RejectReason::UnknownSerial),
            );
            return;
        };
        let slot = self.slots.entry(serial).or_default();
        match slot.status {
            Status::Voted => {
                let (used_code, ..) = slot.used.expect("voted slot has code");
                if used_code == code {
                    let receipt = slot.receipt.expect("voted slot has receipt");
                    self.reply(from, request_id, serial, VoteOutcome::Receipt(receipt));
                } else {
                    self.reply(
                        from,
                        request_id,
                        serial,
                        VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode),
                    );
                }
            }
            Status::Pending => {
                let (used_code, ..) = slot.used.expect("pending slot has code");
                if used_code == code {
                    // Remember the client; reply when the receipt is ready.
                    slot.waiting.push((from, request_id, code));
                } else {
                    self.reply(
                        from,
                        request_id,
                        serial,
                        VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode),
                    );
                }
            }
            Status::NotVoted => {
                if let Some((active, ..)) = slot.used {
                    // An endorsement round is already in flight for this
                    // ballot (we are its responder).
                    if active == code {
                        slot.waiting.push((from, request_id, code));
                    } else {
                        self.reply(
                            from,
                            request_id,
                            serial,
                            VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode),
                        );
                    }
                    return;
                }
                let Some((part, row)) = ballot.find_code(&code) else {
                    self.reply(
                        from,
                        request_id,
                        serial,
                        VoteOutcome::Rejected(RejectReason::InvalidVoteCode),
                    );
                    return;
                };
                // Become the responder: collect endorsements.
                slot.used = Some((code, part, row));
                slot.waiting.push((from, request_id, code));
                slot.endorsements.clear();
                // Our own endorsement (also blocks endorsing other codes).
                if slot.my_endorsed.is_none() {
                    slot.my_endorsed = Some(code);
                    let sig = self.init.signing_key.sign(&endorsement_message(
                        &self.init.params.election_id,
                        serial,
                        &sha256(&code.0),
                    ));
                    slot.endorsements.push((self.init.node_index, sig));
                }
                self.multicast(Msg::Endorse {
                    serial,
                    vote_code: code,
                });
                self.check_ucert_complete(serial);
            }
        }
    }

    fn on_endorse(&mut self, from: NodeId, serial: SerialNo, code: VoteCode) {
        if from.kind != NodeKind::Vc || !self.in_voting_hours() {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        if ballot.find_code(&code).is_none() {
            return;
        }
        let slot = self.slots.entry(serial).or_default();
        let may_endorse = match slot.my_endorsed {
            None => true,
            Some(prev) => prev == code || self.config.behavior == VcBehavior::EquivocalEndorser,
        };
        if !may_endorse {
            return;
        }
        slot.my_endorsed.get_or_insert(code);
        let sig = self.init.signing_key.sign(&endorsement_message(
            &self.init.params.election_id,
            serial,
            &sha256(&code.0),
        ));
        self.endpoint.send(
            from,
            Msg::Endorsement {
                serial,
                vote_code: code,
                signature: sig,
            },
        );
    }

    fn on_endorsement(&mut self, from: NodeId, serial: SerialNo, code: VoteCode, sig: Signature) {
        if from.kind != NodeKind::Vc {
            return;
        }
        let sender = from.index;
        let quorum = self.quorum();
        let eid = self.init.params.election_id;
        let Some(vk) = self.init.vc_keys.get(sender as usize).copied() else {
            return;
        };
        let Some(slot) = self.slots.get_mut(&serial) else {
            return;
        };
        // Only relevant while we are responder for exactly this code.
        let Some((used_code, ..)) = slot.used else {
            return;
        };
        if used_code != code || slot.status != Status::NotVoted {
            return;
        }
        if slot.endorsements.iter().any(|(i, _)| *i == sender) {
            return;
        }
        if !vk.verify(&endorsement_message(&eid, serial, &sha256(&code.0)), &sig) {
            return;
        }
        slot.endorsements.push((sender, sig));
        let _ = quorum;
        self.check_ucert_complete(serial);
    }

    /// Forms the UCERT once `Nv−fv` endorsements are in, then discloses our
    /// receipt share (VOTE_P).
    fn check_ucert_complete(&mut self, serial: SerialNo) {
        let quorum = self.quorum();
        let Some(slot) = self.slots.get_mut(&serial) else {
            return;
        };
        if slot.status != Status::NotVoted || slot.ucert.is_some() {
            return;
        }
        if slot.endorsements.len() < quorum {
            return;
        }
        let (code, part, row) = slot.used.expect("responder has code");
        let ucert = Arc::new(UCert {
            serial,
            vote_code: code,
            sigs: slot.endorsements.clone(),
        });
        self.verified_ucerts.insert(ucert.key_digest());
        slot.ucert = Some(ucert.clone());
        slot.status = Status::Pending;
        self.disclose_share(serial, code, part, row, ucert);
    }

    /// Sends our VOTE_P (receipt share) for a ballot, marking it pending.
    fn disclose_share(
        &mut self,
        serial: SerialNo,
        code: VoteCode,
        part: PartId,
        row: usize,
        ucert: Arc<UCert>,
    ) {
        if self.config.behavior == VcBehavior::WithholdShares {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        let mut share = ballot.parts[part.index()][row].receipt_share;
        if self.config.behavior == VcBehavior::CorruptShares {
            share.share.value += ddemos_crypto::field::Scalar::ONE;
        }
        {
            let slot = self.slots.entry(serial).or_default();
            if slot.my_share_sent {
                return;
            }
            slot.my_share_sent = true;
        }
        self.multicast(Msg::VoteP {
            serial,
            vote_code: code,
            share,
            ucert,
        });
    }

    fn verify_ucert(&mut self, ucert: &UCert) -> bool {
        let digest = ucert.key_digest();
        if self.verified_ucerts.contains(&digest) {
            return true;
        }
        if ucert.verify(
            &self.init.params.election_id,
            &self.init.params,
            &self.init.vc_keys,
        ) {
            self.verified_ucerts.insert(digest);
            true
        } else {
            false
        }
    }

    fn on_vote_p(
        &mut self,
        from: NodeId,
        serial: SerialNo,
        code: VoteCode,
        share: SignedShare,
        ucert: Arc<UCert>,
    ) {
        if from.kind != NodeKind::Vc || !self.in_voting_hours() {
            return;
        }
        if ucert.serial != serial || ucert.vote_code != code || !self.verify_ucert(&ucert) {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        let Some((part, row)) = ballot.find_code(&code) else {
            return;
        };
        // Verify the EA signature over the disclosed share.
        let ctx = receipt_share_context(&self.init.params.election_id, serial, part, row);
        if !DealerVss::verify(&self.init.ea_key, &ctx, &share) {
            return;
        }
        let quorum = self.quorum();
        let mut became_pending = false;
        {
            let slot = self.slots.entry(serial).or_default();
            match slot.status {
                Status::NotVoted => {
                    slot.status = Status::Pending;
                    slot.used = Some((code, part, row));
                    slot.ucert = Some(ucert.clone());
                    became_pending = true;
                }
                Status::Pending | Status::Voted => {
                    let (used_code, ..) = slot.used.expect("active slot has code");
                    if used_code != code {
                        // A valid UCERT for a different code cannot exist
                        // alongside ours (quorum intersection); drop.
                        return;
                    }
                    if slot.ucert.is_none() {
                        slot.ucert = Some(ucert.clone());
                    }
                }
            }
            if !slot
                .shares
                .iter()
                .any(|s| s.share.index == share.share.index)
            {
                slot.shares.push(share);
            }
        }
        if became_pending {
            self.disclose_share(serial, code, part, row, ucert);
        }
        // Reconstruct once enough shares are in.
        let slot = self.slots.get_mut(&serial).expect("slot exists");
        if slot.status != Status::Voted && slot.shares.len() >= quorum {
            if let Ok(secret) = DealerVss::reconstruct(&slot.shares, quorum) {
                let receipt = secret.to_u64().unwrap_or(u64::MAX);
                slot.receipt = Some(receipt);
                slot.status = Status::Voted;
                let waiting = std::mem::take(&mut slot.waiting);
                for (client, request_id, wanted) in waiting {
                    // Only waiters of the *winning* code get the receipt; a
                    // racing different-code request lost the uniqueness race.
                    let outcome = if wanted == code {
                        VoteOutcome::Receipt(receipt)
                    } else {
                        VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode)
                    };
                    self.reply(client, request_id, serial, outcome);
                }
            }
        }
    }

    // ----- vote-set consensus (§III-E end-of-election) ---------------------

    fn begin_announce(&mut self) {
        self.phase = Phase::Announce;
        self.announce_at_ms = self.clock.now_ms();
        let entries: Vec<AnnounceEntry> = (0..self.store.num_ballots())
            .map(|s| {
                let serial = SerialNo(s);
                let vote = self.slots.get(&serial).and_then(|slot| {
                    let (code, ..) = slot.used?;
                    let ucert = slot.ucert.clone()?;
                    Some((code, ucert))
                });
                AnnounceEntry { serial, vote }
            })
            .collect();
        self.multicast(Msg::Announce {
            entries: Arc::new(entries),
        });
    }

    fn on_announce(&mut self, from: NodeId, entries: Arc<Vec<AnnounceEntry>>) {
        if from.kind != NodeKind::Vc || self.phase == Phase::Voting {
            return;
        }
        if !self.announce_from.insert(from.index) {
            return;
        }
        for entry in entries.iter() {
            let Some((code, ucert)) = &entry.vote else {
                continue;
            };
            self.adopt_code(entry.serial, *code, ucert.clone());
        }
        if self.phase == Phase::Announce && self.announce_from.len() >= self.quorum() {
            self.begin_consensus();
        }
    }

    /// Adopts a (code, UCERT) learned from a peer for a ballot we had no
    /// certified code for.
    fn adopt_code(&mut self, serial: SerialNo, code: VoteCode, ucert: Arc<UCert>) {
        let known = self
            .slots
            .get(&serial)
            .map(|s| s.ucert.is_some())
            .unwrap_or(false);
        if known {
            return;
        }
        if ucert.serial != serial || ucert.vote_code != code || !self.verify_ucert(&ucert) {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        let Some((part, row)) = ballot.find_code(&code) else {
            return;
        };
        let slot = self.slots.entry(serial).or_default();
        slot.used = Some((code, part, row));
        slot.ucert = Some(ucert);
    }

    fn begin_consensus(&mut self) {
        self.phase = Phase::Consensus;
        let invert = self.config.behavior == VcBehavior::ConsensusInverter;
        let initial: Vec<bool> = (0..self.store.num_ballots())
            .map(|s| {
                let known = self
                    .slots
                    .get(&SerialNo(s))
                    .map(|slot| slot.ucert.is_some())
                    .unwrap_or(false);
                known != invert
            })
            .collect();
        let (bc, msgs) = BatchConsensus::new(
            self.init.params.num_vc,
            self.init.params.vc_faults(),
            self.init.node_index,
            initial,
            self.beacon,
        );
        self.consensus = Some(bc);
        for m in msgs {
            self.multicast(Msg::Consensus(m));
        }
        let buffered = std::mem::take(&mut self.buffered_consensus);
        for (from, cm) in buffered {
            self.feed_consensus(from, cm);
        }
    }

    fn on_consensus(&mut self, from: NodeId, cm: ConsensusMsg) {
        if from.kind != NodeKind::Vc {
            return;
        }
        if self.consensus.is_none() {
            self.buffered_consensus.push((from.index, cm));
            return;
        }
        self.feed_consensus(from.index, cm);
    }

    fn feed_consensus(&mut self, from: u32, cm: ConsensusMsg) {
        let Some(bc) = self.consensus.as_mut() else {
            return;
        };
        let outs = bc.handle(from, &cm);
        for m in outs {
            self.multicast(Msg::Consensus(m));
        }
        if self.decision.is_none() {
            if let Some(decision) = self.consensus.as_ref().and_then(|b| b.decision()) {
                self.decision = Some(decision);
                self.begin_recover();
            }
        }
    }

    fn begin_recover(&mut self) {
        self.phase = Phase::Recover;
        let decision = self.decision.clone().expect("decision set");
        let mut missing = Vec::new();
        for (i, voted) in decision.iter().enumerate() {
            if !voted {
                continue;
            }
            let serial = SerialNo(i as u64);
            let known = self
                .slots
                .get(&serial)
                .map(|s| s.ucert.is_some())
                .unwrap_or(false);
            if !known {
                missing.push(serial);
            }
        }
        for serial in missing {
            self.multicast(Msg::RecoverRequest { serial });
        }
        self.try_finalize();
    }

    fn on_recover_request(&mut self, from: NodeId, serial: SerialNo) {
        if from.kind != NodeKind::Vc
            || self.phase == Phase::Voting
            || self.config.behavior == VcBehavior::ConsensusInverter
        {
            return;
        }
        let Some(slot) = self.slots.get(&serial) else {
            return;
        };
        let (Some((code, ..)), Some(ucert)) = (slot.used, slot.ucert.clone()) else {
            return;
        };
        self.endpoint.send(
            from,
            Msg::RecoverResponse {
                serial,
                vote_code: code,
                ucert,
            },
        );
    }

    fn on_recover_response(&mut self, serial: SerialNo, code: VoteCode, ucert: Arc<UCert>) {
        if self.phase != Phase::Recover {
            return;
        }
        self.adopt_code(serial, code, ucert);
        self.try_finalize();
    }

    fn try_finalize(&mut self) {
        if self.phase != Phase::Recover {
            return;
        }
        let decision = self.decision.as_ref().expect("decided");
        let mut set = VoteSet::default();
        for (i, voted) in decision.iter().enumerate() {
            if !voted {
                continue;
            }
            let serial = SerialNo(i as u64);
            match self
                .slots
                .get(&serial)
                .and_then(|s| s.used.map(|(c, ..)| c))
            {
                Some(code) if self.slots[&serial].ucert.is_some() => {
                    set.entries.insert(serial, code);
                }
                _ => return, // still waiting on RECOVER responses
            }
        }
        let digest = set.digest();
        let msg =
            ddemos_protocol::initdata::voteset_message(&self.init.params.election_id, &digest);
        let signature = self.init.signing_key.sign(&msg);
        let _ = self.result_tx.send(FinalizedVoteSet {
            node_index: self.init.node_index,
            vote_set: set,
            signature,
            msk_share: self.init.msk_share,
            announce_at_ms: self.announce_at_ms,
            finalized_at_ms: self.clock.now_ms(),
        });
        self.phase = Phase::Done;
    }
}
