//! The Vote Collector node *driver*: a thin thread loop that pumps a
//! [`VcCore`] against a transport endpoint.
//!
//! All protocol logic lives in the sans-I/O [`crate::core`] module; this
//! driver owns exactly the I/O the core refuses to: the transport
//! endpoint, the node clock, the durable journal, the stop/close-polls
//! flags, and the finalized-vote-set delivery channel. One iteration:
//!
//! 1. translate the environment into a [`VcInput`] — a received envelope,
//!    a poll-timer expiry (`Tick`), a latched close-polls flag, or an
//!    authenticated `Msg::ClosePolls`/`Msg::Shutdown` control envelope;
//! 2. `core.step(input, clock.now_ms())`;
//! 3. execute the returned [`VcOutput`]s in order (sends, journal
//!    appends, group commits, finalized-set delivery, amnesia recovery).
//!
//! Because the driver is this thin, the same core runs unchanged over
//! the in-process `SimNet` (every existing virtual-time, fault and
//! durability behavior) and over `TcpTransport` with one replica per OS
//! process (`ddemos_harness::tcp`).

use crate::core::{StepTrace, VcCore, VcInput, VcOutput};
use crate::store::BallotStore;
use crossbeam_channel::Sender;
use ddemos_net::{DynEndpoint, DynEventEndpoint, EventAdapter, TransportEndpoint, Wait};
use ddemos_obs::Recorder;
use ddemos_protocol::clock::NodeClock;
use ddemos_protocol::initdata::VcInit;
use ddemos_protocol::messages::Msg;
use ddemos_protocol::posts::FinalizedVoteSet;
use ddemos_protocol::{NodeId, NodeKind};
use ddemos_storage::DynJournal;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the driver delivers the core's finalized vote set.
pub enum DeliverTarget {
    /// The in-process harness channel.
    Channel(Sender<FinalizedVoteSet>),
    /// Send a [`Msg::Finalized`] envelope to each listed peer (the
    /// multi-process coordinator).
    Peers(Vec<NodeId>),
}

/// Runtime configuration of a node.
#[derive(Clone, Debug)]
pub struct VcNodeConfig {
    /// Behaviour profile (honest by default).
    pub behavior: crate::behavior::VcBehavior,
    /// Event-loop poll granularity (clock checks between messages).
    pub poll: Duration,
    /// Optional step-trace recorder (determinism tests).
    pub trace: Option<StepTrace>,
    /// Optional state-triggered Byzantine profile, layered over
    /// `behavior` (see [`crate::behavior::TriggeredAdversary`]).
    pub adversary: Option<crate::behavior::TriggeredAdversary>,
    /// Metrics recorder (disabled by default). The driver feeds it
    /// per-message step latency, outputs-per-step, and the inbound queue
    /// depth at dequeue; its phase label follows the node's own event
    /// order (`vote` → `consensus` on `ClosePolls` → `push` on
    /// finalization), which keeps attribution deterministic.
    pub recorder: Recorder,
}

impl Default for VcNodeConfig {
    fn default() -> Self {
        VcNodeConfig {
            behavior: crate::behavior::VcBehavior::Honest,
            poll: Duration::from_millis(1),
            trace: None,
            adversary: None,
            recorder: Recorder::disabled(),
        }
    }
}

/// Handle to a spawned VC node.
pub struct VcHandle {
    /// The node's id on the network.
    pub id: NodeId,
    stop: Arc<AtomicBool>,
    force_end: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl VcHandle {
    /// Requests the node to stop without joining (callers that must first
    /// wake the node — e.g. by closing a virtual clock — set every flag,
    /// release the wakes, then join).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Requests the node to stop and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Closes the polls immediately (the node behaves as if its clock
    /// passed `Tend`). Benchmarks use this instead of predicting the
    /// voting-window length.
    pub fn close_polls(&self) {
        self.force_end.store(true, Ordering::SeqCst);
    }

    /// Waits for the node to exit on its own — a standalone replica
    /// parks here until its driver receives an authenticated
    /// `Msg::Shutdown` (or its transport disconnects).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for VcHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The driver state: a core plus everything I/O.
struct VcDriver<S> {
    core: VcCore<S>,
    endpoint: DynEventEndpoint,
    clock: NodeClock,
    journal: Option<DynJournal>,
    deliver: DeliverTarget,
    trace: Option<StepTrace>,
    recorder: Recorder,
    stop: Arc<AtomicBool>,
    force_end: Arc<AtomicBool>,
    close_forwarded: bool,
    timeout: Duration,
}

/// Upper bound on envelopes drained per readiness wake: keeps the
/// stop/close-polls flags responsive under a flooding peer.
const MAX_BURST: usize = 256;

/// The metrics label of one driver input.
fn input_label(input: &VcInput) -> &'static str {
    match input {
        VcInput::Deliver(env) => env.msg.kind(),
        VcInput::Tick => "Tick",
        VcInput::ClosePolls => "ClosePolls",
        VcInput::Shutdown => "Shutdown",
    }
}

impl<S: BallotStore> VcDriver<S> {
    fn run(&mut self) {
        // Under a virtual clock this pins the node as an actor: virtual
        // time cannot advance while this thread is processing a message,
        // which is what makes event order a pure function of the seeds.
        let _actor = self.endpoint.actor_guard();
        self.recorder.set_phase("vote");
        // A journal that already holds state (the node restarted) is
        // replayed before any message is served. Runs under the actor
        // registration so charged disk latencies advance the clock.
        self.recover();
        let outs = self.core.start();
        self.execute(outs);
        loop {
            if self.stop.load(Ordering::SeqCst) {
                self.shutdown();
                return;
            }
            if !self.close_forwarded && self.force_end.load(Ordering::SeqCst) {
                self.close_forwarded = true;
                self.step(VcInput::ClosePolls);
            }
            // The driver runs on the poll-based event surface: wait for
            // readiness in the transport's time base, then drain without
            // blocking. One readiness wake drains the whole buffered
            // burst: under a virtual clock deliveries are clock-paced and
            // the burst degenerates to one envelope (seeded runs are
            // step-for-step the old `recv_timeout` loop), while a real
            // transport under load hands the core a queue it can
            // batch-verify ahead of the steps.
            let inputs = match self.endpoint.wait(self.timeout) {
                Wait::Ready => {
                    let mut inputs = Vec::new();
                    while inputs.len() < MAX_BURST {
                        let Some(env) = self.endpoint.try_recv() else {
                            break;
                        };
                        // Queue depth left behind at dequeue. Unstable
                        // (`~`): it races with concurrent senders, so it
                        // never joins the determinism fingerprint.
                        self.recorder.observe(
                            "~vc.queue_depth",
                            "",
                            self.endpoint.read_pending() as u64,
                        );
                        // Control envelopes are a driver concern:
                        // authenticate (only client/EA identities may
                        // steer a replica) and translate into typed
                        // inputs.
                        let control = matches!(env.from.kind, NodeKind::Client | NodeKind::Ea);
                        inputs.push(match env.msg {
                            Msg::ClosePolls if control => VcInput::ClosePolls,
                            Msg::Shutdown if control => VcInput::Shutdown,
                            _ => VcInput::Deliver(env),
                        });
                        if matches!(inputs.last(), Some(VcInput::Shutdown)) {
                            break;
                        }
                    }
                    if inputs.is_empty() {
                        // `Ready` guarantees a buffered envelope; a bare
                        // drain is still safe to treat as a timer poll.
                        inputs.push(VcInput::Tick);
                    }
                    inputs
                }
                Wait::Timeout => vec![VcInput::Tick],
                Wait::Closed => {
                    self.shutdown();
                    return;
                }
            };
            // Warm the verified-signature memo for the whole burst in one
            // MSM before stepping (a no-op for bursts without signatures).
            if inputs.len() > 1 {
                self.core.preverify(&inputs);
            }
            for input in inputs {
                if matches!(input, VcInput::Shutdown) {
                    self.shutdown();
                    return;
                }
                self.step(input);
            }
        }
    }

    /// Final step: tells the core, then flushes any commit barriers the
    /// adaptive-commit mode deferred (nothing visible depended on them,
    /// but an orderly exit should not discard durable work).
    fn shutdown(&mut self) {
        self.step(VcInput::Shutdown);
        if let Some(journal) = self.journal.as_mut() {
            if let Err(e) = journal.commit() {
                eprintln!("vc: final journal commit failed ({e})");
            }
        }
    }

    /// One core step: stamp the time, record the trace, execute outputs.
    ///
    /// The whole handle — core step plus output execution, journal sync
    /// included — is charged to `vc.step_ns` under the input's message
    /// kind, so the profile attributes durable-commit latency to the
    /// message that forced it. Only `Deliver` inputs record under the
    /// stable names: delivered envelopes are virtual-time events with a
    /// seed-determined order, while `Tick`/`ClosePolls`/`Shutdown` are
    /// injected by the driver loop (idle timeouts, the harness
    /// `force_end` flag, the stop flag), whose count and interleaving
    /// depend on wall-clock scheduling even under virtual time — those
    /// go to `~`-prefixed unstable names, excluded from the fingerprint.
    fn step(&mut self, input: VcInput) {
        let label = input_label(&input);
        // Deliveries to a finalized node are also unstable: a done node
        // is only answering stragglers, and how many late echoes it
        // drains before the stop flag lands depends on wall scheduling.
        // Its own outcome-bearing steps (everything up to and including
        // the finalizing delivery) stay under the stable names.
        let stable = matches!(input, VcInput::Deliver(_)) && !self.core.is_done();
        let (outputs_name, step_name) = if stable {
            ("vc.step_outputs", "vc.step_ns")
        } else {
            ("~vc.step_outputs", "~vc.step_ns")
        };
        let start = self.recorder.now_ns();
        let now_ms = self.clock.now_ms();
        let outs = match &self.trace {
            Some(trace) => {
                let outs = self.core.step(input.clone(), now_ms);
                trace.record(&input, now_ms, &outs);
                outs
            }
            None => self.core.step(input, now_ms),
        };
        self.recorder.add(outputs_name, label, outs.len() as u64);
        self.execute(outs);
        self.recorder.observe_since(step_name, label, start);
    }

    /// Replays the journal into the core (start-up and amnesia recovery).
    fn recover(&mut self) {
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        if let Err(e) = journal.recover(&mut self.core.durable()) {
            // The WAL truncated itself at the offending record, so the
            // applied prefix and the log agree; continue from the prefix.
            eprintln!("vc: journal replay stopped early ({e}); recovered the clean prefix");
        }
        let now_ms = self.clock.now_ms();
        let outs = self.core.post_recovery(now_ms);
        self.execute(outs);
    }

    /// Executes one batch of outputs, in order. Journal commits run
    /// inline (durable-before-visible); the snapshot cadence runs once at
    /// the end of the batch, when the core's state matches every appended
    /// record.
    fn execute(&mut self, outputs: Vec<VcOutput>) {
        let mut committed = false;
        // Adaptive commit: a barrier with no externally visible output
        // (send/delivery) after it in this batch guards nothing yet — its
        // frames may ride the group-commit window until the next visible-
        // guarded commit (or until the window fills inside `append`).
        // "Durable before visible" is untouched: every visible output is
        // still preceded, in-batch, by a commit that runs inline.
        let adaptive = self
            .journal
            .as_ref()
            .is_some_and(|journal| journal.adaptive_commit());
        let mut visible_after = vec![false; outputs.len()];
        if adaptive {
            let mut seen_visible = false;
            for (slot, output) in visible_after.iter_mut().zip(&outputs).rev() {
                *slot = seen_visible;
                if matches!(output, VcOutput::Send { .. } | VcOutput::Deliver(_)) {
                    seen_visible = true;
                }
            }
        }
        for (output, visible_later) in outputs.into_iter().zip(visible_after) {
            match output {
                VcOutput::Send { to, msg } => {
                    // The node's own ANNOUNCE starts vote-set consensus.
                    // Flipping the phase here — on a core output — keeps
                    // the transition a pure function of this node's event
                    // order, unlike the `ClosePolls` input, which may or
                    // may not arrive before the node self-closes at Tend.
                    if matches!(msg, Msg::Announce { .. }) {
                        self.recorder.set_phase("consensus");
                    }
                    self.endpoint.send(to, msg)
                }
                VcOutput::SetTimer(d) => self.timeout = d,
                VcOutput::Journal(bytes) => {
                    if let Some(journal) = self.journal.as_mut() {
                        if let Err(e) = journal.append(&bytes) {
                            if e.is_disk_full() {
                                // Device full: the record was NOT written
                                // (the WAL frame counter did not advance).
                                // Degrade to read-only and drop the rest of
                                // this batch — the Sends after this append
                                // depend on it being durable, and the
                                // journal on disk stays intact for replay.
                                eprintln!(
                                    "vc: journal device full; entering read-only degraded mode"
                                );
                                self.core.set_degraded();
                                break;
                            }
                            eprintln!("vc: journal append failed ({e}); continuing volatile");
                        }
                    }
                }
                VcOutput::Commit => {
                    if adaptive && !visible_later {
                        // Deferred: nothing visible in this batch depends
                        // on these frames being synced yet.
                        continue;
                    }
                    if let Some(journal) = self.journal.as_mut() {
                        if let Err(e) = journal.commit() {
                            eprintln!("vc: journal commit failed ({e})");
                        } else {
                            committed = true;
                        }
                    }
                }
                VcOutput::Deliver(finalized) => {
                    // Finalization: this node enters the push phase.
                    self.recorder.set_phase("push");
                    match &self.deliver {
                        DeliverTarget::Channel(tx) => {
                            let _ = tx.send(finalized);
                        }
                        DeliverTarget::Peers(peers) => {
                            for peer in peers {
                                self.endpoint.send(*peer, Msg::Finalized(finalized.clone()));
                            }
                        }
                    }
                }
                VcOutput::Recover => {
                    if let Some(journal) = self.journal.as_mut() {
                        if let Err(e) = journal.crash(0) {
                            eprintln!("vc: journal crash simulation failed ({e})");
                        }
                    }
                    self.recover();
                }
            }
        }
        if committed {
            if let Some(journal) = self.journal.as_mut() {
                if let Err(e) = journal.maybe_compact(&self.core.durable()) {
                    eprintln!("vc: journal compaction failed ({e})");
                }
            }
        }
    }
}

/// The vote collector node: spawn functions producing a [`VcHandle`]
/// around a [`VcCore`]-driving thread.
pub struct VcNode<S> {
    _store: PhantomData<S>,
}

impl<S: BallotStore + 'static> VcNode<S> {
    /// Spawns a node thread; the finalized vote set is delivered on
    /// `result_tx` when vote-set consensus completes.
    pub fn spawn(
        init: VcInit,
        store: S,
        endpoint: impl TransportEndpoint + 'static,
        clock: NodeClock,
        beacon: u64,
        config: VcNodeConfig,
        result_tx: Sender<FinalizedVoteSet>,
    ) -> VcHandle {
        Self::spawn_durable(
            init, store, endpoint, clock, beacon, config, result_tx, None,
        )
    }

    /// [`VcNode::spawn`] with a durable journal: ballot-slot transitions
    /// are WAL-logged (group-committed, with a forced commit before every
    /// externally visible action that depends on them), and a
    /// [`Msg::Amnesia`] power-cycle signal makes the node drop volatile
    /// state and rebuild from snapshot + WAL replay. The journal should
    /// be freshly recovered (or empty); the node replays it on start.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_durable(
        init: VcInit,
        store: S,
        endpoint: impl TransportEndpoint + 'static,
        clock: NodeClock,
        beacon: u64,
        config: VcNodeConfig,
        result_tx: Sender<FinalizedVoteSet>,
        journal: Option<DynJournal>,
    ) -> VcHandle {
        Self::spawn_with(
            init,
            store,
            Box::new(endpoint),
            clock,
            beacon,
            config,
            DeliverTarget::Channel(result_tx),
            journal,
        )
    }

    /// [`VcNode::spawn_event`] for callers holding a blocking endpoint:
    /// lifts it through [`EventAdapter`] (an exact translation, virtual
    /// time included) onto the event surface the driver runs on.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_with(
        init: VcInit,
        store: S,
        endpoint: DynEndpoint,
        clock: NodeClock,
        beacon: u64,
        config: VcNodeConfig,
        deliver: DeliverTarget,
        journal: Option<DynJournal>,
    ) -> VcHandle {
        Self::spawn_event(
            init,
            store,
            Box::new(EventAdapter::new(endpoint)),
            clock,
            beacon,
            config,
            deliver,
            journal,
        )
    }

    /// The fully general spawn: any event endpoint, any delivery
    /// target (multi-process replicas deliver as [`Msg::Finalized`]
    /// envelopes to the coordinator).
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_event(
        init: VcInit,
        store: S,
        endpoint: DynEventEndpoint,
        clock: NodeClock,
        beacon: u64,
        config: VcNodeConfig,
        deliver: DeliverTarget,
        journal: Option<DynJournal>,
    ) -> VcHandle {
        let id = endpoint.id();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let force_end = Arc::new(AtomicBool::new(false));
        let force_end2 = force_end.clone();
        let node_index = init.node_index;
        let poll = config.poll;
        let thread = std::thread::Builder::new()
            .name(format!("vc-{node_index}"))
            .spawn(move || {
                let mut core = VcCore::new(
                    init,
                    store,
                    config.behavior,
                    poll,
                    beacon,
                    journal.is_some(),
                );
                if let Some(adv) = config.adversary {
                    core.set_adversary(adv);
                }
                let mut driver = VcDriver {
                    core,
                    endpoint,
                    clock,
                    journal,
                    deliver,
                    trace: config.trace,
                    recorder: config.recorder,
                    stop: stop2,
                    force_end: force_end2,
                    close_forwarded: false,
                    timeout: poll,
                };
                driver.run();
            })
            .expect("spawn vc node");
        VcHandle {
            id,
            stop,
            force_end,
            thread: Some(thread),
        }
    }
}
