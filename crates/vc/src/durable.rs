//! The durable projection of a VC node's ballot state.
//!
//! The paper's prototype keeps collector state in PostgreSQL so that a
//! node that crashes can rejoin with its obligations intact — above all
//! "never issue two different receipts for one ballot" (§III-E): the
//! endorsed code, the uniqueness certificate, and the reconstructed
//! receipt must all survive a restart. This module defines
//!
//! * [`BallotSlot`] — the per-ballot state machine (shared with
//!   `node.rs`), split into a durable projection (status, used code,
//!   endorsement, UCERT, shares, receipt) and volatile scratch (waiting
//!   clients, collected endorsement signatures) that recovery legitimately
//!   loses;
//! * [`VcRecord`] — the WAL record vocabulary, one record per state
//!   transition, encoded with the canonical `wire.rs` codec;
//! * [`DurableView`] — a view over the node's slot map implementing
//!   [`ddemos_storage::Durable`], so a `Journal` can snapshot, replay and
//!   compact it.
//!
//! The encoding deliberately excludes the volatile fields, so a node
//! state rebuilt from snapshot + WAL replay is **byte-identical** (under
//! [`DurableView::encode_snapshot`]) to the never-crashed original — the
//! equivalence the recovery tests assert.

use ddemos_crypto::votecode::VoteCode;
use ddemos_crypto::vss::SignedShare;
use ddemos_protocol::codec;
use ddemos_protocol::messages::UCert;
use ddemos_protocol::wire::{Reader, WireError, Writer};
use ddemos_protocol::{NodeId, PartId, SerialNo};
use ddemos_storage::Durable;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Voting status of one ballot slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    /// No certified vote seen.
    NotVoted,
    /// A UCERT exists; receipt reconstruction in progress.
    Pending,
    /// Receipt reconstructed.
    Voted,
}

impl Status {
    fn to_u8(self) -> u8 {
        match self {
            Status::NotVoted => 0,
            Status::Pending => 1,
            Status::Voted => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Status, WireError> {
        match v {
            0 => Ok(Status::NotVoted),
            1 => Ok(Status::Pending),
            2 => Ok(Status::Voted),
            _ => Err(WireError::BadValue),
        }
    }
}

/// Per-ballot state. The non-`Vec` fields plus `shares` form the durable
/// projection; `endorsements` and `waiting` are volatile scratch a
/// restart legitimately loses (peers re-drive endorsements, voters
/// retry).
pub(crate) struct BallotSlot {
    pub(crate) status: Status,
    /// The unique code active for this ballot, with its located position.
    pub(crate) used: Option<(VoteCode, PartId, usize)>,
    /// The code this node has endorsed (at most one per ballot).
    pub(crate) my_endorsed: Option<VoteCode>,
    /// Endorsement signatures collected while acting as responder
    /// (volatile).
    pub(crate) endorsements: Vec<(u32, ddemos_crypto::schnorr::Signature)>,
    pub(crate) ucert: Option<Arc<UCert>>,
    /// Verified receipt shares (distinct share indices).
    pub(crate) shares: Vec<SignedShare>,
    pub(crate) my_share_sent: bool,
    pub(crate) receipt: Option<u64>,
    /// Clients awaiting a receipt (volatile): (client, request id, code).
    pub(crate) waiting: Vec<(NodeId, u64, VoteCode)>,
}

impl Default for BallotSlot {
    fn default() -> Self {
        BallotSlot {
            status: Status::NotVoted,
            used: None,
            my_endorsed: None,
            endorsements: Vec::new(),
            ucert: None,
            shares: Vec::new(),
            my_share_sent: false,
            receipt: None,
            waiting: Vec::new(),
        }
    }
}

/// One WAL record: a single durable state transition of one ballot slot.
#[derive(Clone, Debug)]
pub(crate) enum VcRecord {
    /// A code became the slot's active one (responder start, VOTE_P
    /// adoption, or announce-phase adoption).
    Used {
        serial: SerialNo,
        code: VoteCode,
        part: PartId,
        row: u32,
    },
    /// This node endorsed `code` for the ballot (must never endorse a
    /// different one, even across restarts).
    Endorsed { serial: SerialNo, code: VoteCode },
    /// A verified UCERT was stored for the slot.
    Certified { serial: SerialNo, ucert: UCert },
    /// The slot moved `NotVoted → Pending` (share disclosure may begin).
    Pending { serial: SerialNo },
    /// A verified receipt share was collected.
    ShareStored {
        serial: SerialNo,
        share: SignedShare,
    },
    /// This node disclosed its own receipt share (at most once).
    ShareSent { serial: SerialNo },
    /// The receipt was reconstructed — the paper's "one receipt per
    /// ballot, forever" obligation.
    Voted { serial: SerialNo, receipt: u64 },
    /// The node delivered its finalized vote set (must not deliver a
    /// second one after recovery).
    Finalized,
}

const TAG_USED: u8 = 1;
const TAG_ENDORSED: u8 = 2;
const TAG_CERTIFIED: u8 = 3;
const TAG_PENDING: u8 = 4;
const TAG_SHARE_STORED: u8 = 5;
const TAG_SHARE_SENT: u8 = 6;
const TAG_VOTED: u8 = 7;
const TAG_FINALIZED: u8 = 8;

impl VcRecord {
    /// Canonical encoding (one WAL frame payload).
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            VcRecord::Used {
                serial,
                code,
                part,
                row,
            } => {
                w.put_u8(TAG_USED).put_u64(serial.0);
                codec::put_vote_code(&mut w, code);
                codec::put_part(&mut w, *part);
                w.put_u32(*row);
            }
            VcRecord::Endorsed { serial, code } => {
                w.put_u8(TAG_ENDORSED).put_u64(serial.0);
                codec::put_vote_code(&mut w, code);
            }
            VcRecord::Certified { serial, ucert } => {
                w.put_u8(TAG_CERTIFIED).put_u64(serial.0);
                codec::put_ucert(&mut w, ucert);
            }
            VcRecord::Pending { serial } => {
                w.put_u8(TAG_PENDING).put_u64(serial.0);
            }
            VcRecord::ShareStored { serial, share } => {
                w.put_u8(TAG_SHARE_STORED).put_u64(serial.0);
                codec::put_signed_share(&mut w, share);
            }
            VcRecord::ShareSent { serial } => {
                w.put_u8(TAG_SHARE_SENT).put_u64(serial.0);
            }
            VcRecord::Voted { serial, receipt } => {
                w.put_u8(TAG_VOTED).put_u64(serial.0).put_u64(*receipt);
            }
            VcRecord::Finalized => {
                w.put_u8(TAG_FINALIZED);
            }
        }
        w.into_bytes()
    }

    /// Decodes one record.
    ///
    /// # Errors
    /// [`WireError`] on truncation or invalid values.
    pub(crate) fn decode(bytes: &[u8]) -> Result<VcRecord, WireError> {
        let mut r = Reader::new(bytes);
        let tag = r.get_u8()?;
        Ok(match tag {
            TAG_USED => VcRecord::Used {
                serial: SerialNo(r.get_u64()?),
                code: codec::get_vote_code(&mut r)?,
                part: codec::get_part(&mut r)?,
                row: r.get_u32()?,
            },
            TAG_ENDORSED => VcRecord::Endorsed {
                serial: SerialNo(r.get_u64()?),
                code: codec::get_vote_code(&mut r)?,
            },
            TAG_CERTIFIED => VcRecord::Certified {
                serial: SerialNo(r.get_u64()?),
                ucert: codec::get_ucert(&mut r)?,
            },
            TAG_PENDING => VcRecord::Pending {
                serial: SerialNo(r.get_u64()?),
            },
            TAG_SHARE_STORED => VcRecord::ShareStored {
                serial: SerialNo(r.get_u64()?),
                share: codec::get_signed_share(&mut r)?,
            },
            TAG_SHARE_SENT => VcRecord::ShareSent {
                serial: SerialNo(r.get_u64()?),
            },
            TAG_VOTED => VcRecord::Voted {
                serial: SerialNo(r.get_u64()?),
                receipt: r.get_u64()?,
            },
            TAG_FINALIZED => VcRecord::Finalized,
            _ => return Err(WireError::BadValue),
        })
    }
}

/// A [`Durable`] view over the node's slot map (plus the UCERT
/// verification cache it rebuilds and the finalized marker).
pub(crate) struct DurableView<'a> {
    pub(crate) slots: &'a mut BTreeMap<SerialNo, BallotSlot>,
    pub(crate) verified_ucerts: &'a mut BTreeSet<[u8; 32]>,
    pub(crate) finalized: &'a mut bool,
}

impl DurableView<'_> {
    fn apply(&mut self, record: VcRecord) {
        match record {
            VcRecord::Used {
                serial,
                code,
                part,
                row,
            } => {
                let slot = self.slots.entry(serial).or_default();
                slot.used = Some((code, part, row as usize));
            }
            VcRecord::Endorsed { serial, code } => {
                let slot = self.slots.entry(serial).or_default();
                slot.my_endorsed.get_or_insert(code);
            }
            VcRecord::Certified { serial, ucert } => {
                self.verified_ucerts.insert(ucert.key_digest());
                let slot = self.slots.entry(serial).or_default();
                if slot.ucert.is_none() {
                    slot.ucert = Some(Arc::new(ucert));
                }
            }
            VcRecord::Pending { serial } => {
                let slot = self.slots.entry(serial).or_default();
                if slot.status == Status::NotVoted {
                    slot.status = Status::Pending;
                }
            }
            VcRecord::ShareStored { serial, share } => {
                let slot = self.slots.entry(serial).or_default();
                if !slot
                    .shares
                    .iter()
                    .any(|s| s.share.index == share.share.index)
                {
                    slot.shares.push(share);
                }
            }
            VcRecord::ShareSent { serial } => {
                self.slots.entry(serial).or_default().my_share_sent = true;
            }
            VcRecord::Voted { serial, receipt } => {
                let slot = self.slots.entry(serial).or_default();
                slot.receipt = Some(receipt);
                slot.status = Status::Voted;
            }
            VcRecord::Finalized => {
                *self.finalized = true;
            }
        }
    }
}

impl Durable for DurableView<'_> {
    fn encode_snapshot(&self, w: &mut Writer) {
        w.put_bool(*self.finalized);
        // BTreeMap iterates in serial order, so the snapshot is canonical
        // by construction — no sort pass needed.
        // Only slots with durable content (an entry created purely by a
        // volatile waiter carries nothing worth persisting, but its
        // defaults encode fine and keep the codec total).
        w.put_u64(self.slots.len() as u64);
        for (serial, slot) in self.slots.iter() {
            w.put_u64(serial.0);
            w.put_u8(slot.status.to_u8());
            match &slot.used {
                Some((code, part, row)) => {
                    w.put_bool(true);
                    codec::put_vote_code(w, code);
                    codec::put_part(w, *part);
                    w.put_u32(*row as u32);
                }
                None => {
                    w.put_bool(false);
                }
            }
            match &slot.my_endorsed {
                Some(code) => {
                    w.put_bool(true);
                    codec::put_vote_code(w, code);
                }
                None => {
                    w.put_bool(false);
                }
            }
            match &slot.ucert {
                Some(ucert) => {
                    w.put_bool(true);
                    codec::put_ucert(w, ucert);
                }
                None => {
                    w.put_bool(false);
                }
            }
            w.put_u32(slot.shares.len() as u32);
            for share in &slot.shares {
                codec::put_signed_share(w, share);
            }
            w.put_bool(slot.my_share_sent);
            match slot.receipt {
                Some(receipt) => {
                    w.put_bool(true);
                    w.put_u64(receipt);
                }
                None => {
                    w.put_bool(false);
                }
            }
        }
    }

    fn restore_snapshot(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let _tag = r.get_bytes()?; // writer domain tag
        *self.finalized = r.get_bool()?;
        let n = r.get_u64()?;
        for _ in 0..n {
            let serial = SerialNo(r.get_u64()?);
            let mut slot = BallotSlot {
                status: Status::from_u8(r.get_u8()?)?,
                ..BallotSlot::default()
            };
            if r.get_bool()? {
                let code = codec::get_vote_code(r)?;
                let part = codec::get_part(r)?;
                let row = r.get_u32()? as usize;
                slot.used = Some((code, part, row));
            }
            if r.get_bool()? {
                slot.my_endorsed = Some(codec::get_vote_code(r)?);
            }
            if r.get_bool()? {
                let ucert = codec::get_ucert(r)?;
                self.verified_ucerts.insert(ucert.key_digest());
                slot.ucert = Some(Arc::new(ucert));
            }
            let n_shares = r.get_u32()?;
            for _ in 0..n_shares {
                slot.shares.push(codec::get_signed_share(r)?);
            }
            slot.my_share_sent = r.get_bool()?;
            if r.get_bool()? {
                slot.receipt = Some(r.get_u64()?);
            }
            self.slots.insert(serial, slot);
        }
        Ok(())
    }

    fn apply_record(&mut self, record: &[u8]) -> Result<(), WireError> {
        self.apply(VcRecord::decode(record)?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddemos_crypto::schnorr::SigningKey;
    use ddemos_crypto::shamir::Share;
    use ddemos_protocol::clock::GlobalClock;
    use ddemos_storage::{DiskProfile, Journal, JournalConfig, SimDisk};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn snapshot_bytes(
        slots: &mut BTreeMap<SerialNo, BallotSlot>,
        ucerts: &mut BTreeSet<[u8; 32]>,
        finalized: &mut bool,
    ) -> Vec<u8> {
        let view = DurableView {
            slots,
            verified_ucerts: ucerts,
            finalized,
        };
        let mut w = Writer::new();
        w.put_bytes(b"tag");
        view.encode_snapshot(&mut w);
        w.into_bytes()
    }

    fn random_records(seed: u64, n: usize) -> Vec<VcRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = SigningKey::generate(&mut rng).sign(b"t");
        let mut out = Vec::new();
        for _ in 0..n {
            let serial = SerialNo(rng.gen_range(0..6u64));
            let code = VoteCode([rng.gen::<u8>(); 20]);
            out.push(match rng.gen_range(0..8u32) {
                0 => VcRecord::Used {
                    serial,
                    code,
                    part: if rng.gen() { PartId::A } else { PartId::B },
                    row: rng.gen_range(0..4),
                },
                1 => VcRecord::Endorsed { serial, code },
                2 => VcRecord::Certified {
                    serial,
                    ucert: UCert {
                        serial,
                        vote_code: code,
                        sigs: vec![(rng.gen_range(0..4), sig)],
                    },
                },
                3 => VcRecord::Pending { serial },
                4 => VcRecord::ShareStored {
                    serial,
                    share: SignedShare {
                        share: Share {
                            index: rng.gen_range(1..5),
                            value: ddemos_crypto::field::Scalar::random(&mut rng),
                        },
                        signature: sig,
                    },
                },
                5 => VcRecord::ShareSent { serial },
                6 => VcRecord::Voted {
                    serial,
                    receipt: rng.gen(),
                },
                _ => VcRecord::Finalized,
            });
        }
        out
    }

    #[test]
    fn record_codec_roundtrips() {
        for rec in random_records(3, 64) {
            let bytes = rec.encode();
            let decoded = VcRecord::decode(&bytes).unwrap();
            assert_eq!(bytes, decoded.encode(), "re-encode differs: {rec:?}");
        }
        assert!(VcRecord::decode(&[99]).is_err());
        assert!(VcRecord::decode(&[]).is_err());
    }

    /// The core recovery guarantee: a state rebuilt from snapshot + WAL
    /// replay is byte-identical to the live state that wrote them.
    #[test]
    fn snapshot_plus_replay_is_byte_identical() {
        let disk = std::sync::Arc::new(SimDisk::new(GlobalClock::new(), DiskProfile::instant()));
        let mut journal = Journal::new(
            disk,
            JournalConfig {
                group_commit: 4,
                compact_every: None,
                adaptive_commit: false,
            },
        );

        let mut slots = BTreeMap::new();
        let mut ucerts = BTreeSet::new();
        let mut finalized = false;
        let records = random_records(11, 120);
        for (i, rec) in records.iter().enumerate() {
            DurableView {
                slots: &mut slots,
                verified_ucerts: &mut ucerts,
                finalized: &mut finalized,
            }
            .apply(rec.clone());
            journal.append(&rec.encode()).unwrap();
            if i == 40 {
                // Mid-run compaction: recovery must compose snapshot +
                // the records after it.
                let view = DurableView {
                    slots: &mut slots,
                    verified_ucerts: &mut ucerts,
                    finalized: &mut finalized,
                };
                journal.compact(&view).unwrap();
            }
        }
        journal.commit().unwrap();

        let mut r_slots = BTreeMap::new();
        let mut r_ucerts = BTreeSet::new();
        let mut r_finalized = false;
        let mut view = DurableView {
            slots: &mut r_slots,
            verified_ucerts: &mut r_ucerts,
            finalized: &mut r_finalized,
        };
        let stats = journal.recover(&mut view).unwrap();
        assert!(stats.from_snapshot);

        let live = snapshot_bytes(&mut slots, &mut ucerts, &mut finalized);
        let recovered = snapshot_bytes(&mut r_slots, &mut r_ucerts, &mut r_finalized);
        assert_eq!(live, recovered, "recovered state diverged");
        // The UCERT-digest set is a verification *cache*: the live set may
        // hold digests of certificates that were verified but superseded
        // before storage (re-verified on demand after recovery). Recovery
        // must never fabricate a cache entry, though.
        assert!(r_ucerts.is_subset(&ucerts));
        assert!(!r_ucerts.is_empty());
    }
}
