//! Ballot stores backing a VC node.
//!
//! The paper's prototype keeps VC initialization data in PostgreSQL and,
//! for the scalability experiments, either serves it from disk (Fig 5a) or
//! caches it in memory (Fig 4). Here a store is a trait: an in-memory map,
//! a derivation function (the PRF-backed virtual store for 250M-ballot
//! elections), and a latency-model wrapper that charges the index-depth
//! cost a database lookup would (the Fig 5a substitution; see §1–2 of
//! `DESIGN.md` at the workspace root for the hierarchy and the model's
//! calibration). Deployments pick a store through the harness's
//! `StoreKind` builder option rather than constructing these directly.

use ddemos_protocol::clock::GlobalClock;
use ddemos_protocol::codec;
use ddemos_protocol::initdata::{VcBallot, VcRow};
use ddemos_protocol::wire::{Reader, WireError, Writer};
use ddemos_protocol::SerialNo;
use ddemos_storage::{decode_frame, Disk as _, DynDisk, StorageError, Wal, WalConfig};
use std::collections::BTreeMap;
use std::time::Duration;

/// Source of per-ballot VC rows.
pub trait BallotStore: Send + Sync {
    /// Fetches the rows for `serial` (None for unknown serials).
    fn get(&self, serial: SerialNo) -> Option<VcBallot>;
    /// The number of registered ballots (serials are `0..num_ballots`).
    fn num_ballots(&self) -> u64;
}

/// A fully materialized in-memory store.
#[derive(Debug, Default)]
pub struct MemoryStore {
    map: BTreeMap<SerialNo, VcBallot>,
    n: u64,
}

impl MemoryStore {
    /// Builds a store from materialized init data.
    pub fn new(map: BTreeMap<SerialNo, VcBallot>, n: u64) -> MemoryStore {
        MemoryStore { map, n }
    }
}

impl BallotStore for MemoryStore {
    fn get(&self, serial: SerialNo) -> Option<VcBallot> {
        self.map.get(&serial).cloned()
    }
    fn num_ballots(&self) -> u64 {
        self.n
    }
}

/// A store that derives rows on demand from a closure (the PRF-backed
/// virtual store; the closure typically calls back into the EA derivation).
pub struct FnStore<F> {
    derive: F,
    n: u64,
}

impl<F> FnStore<F>
where
    F: Fn(SerialNo) -> Option<VcBallot> + Send + Sync,
{
    /// Builds a virtual store over `n` ballots.
    pub fn new(n: u64, derive: F) -> FnStore<F> {
        FnStore { derive, n }
    }
}

impl<F> BallotStore for FnStore<F>
where
    F: Fn(SerialNo) -> Option<VcBallot> + Send + Sync,
{
    fn get(&self, serial: SerialNo) -> Option<VcBallot> {
        if serial.0 >= self.n {
            return None;
        }
        (self.derive)(serial)
    }
    fn num_ballots(&self) -> u64 {
        self.n
    }
}

// ---------------------------------------------------------------------------
// WAL-backed store
// ---------------------------------------------------------------------------

/// Encodes one ballot's VC rows (the WAL frame payload, after the serial).
fn put_vc_ballot(w: &mut Writer, ballot: &VcBallot) {
    for part in &ballot.parts {
        w.put_u32(part.len() as u32);
        for row in part {
            codec::put_vote_code_hash(w, &row.code_hash);
            codec::put_signed_share(w, &row.receipt_share);
        }
    }
}

fn get_vc_ballot(r: &mut Reader<'_>) -> Result<VcBallot, WireError> {
    let mut parts: [Vec<VcRow>; 2] = [Vec::new(), Vec::new()];
    for part in &mut parts {
        let n = r.get_u32()?;
        if n > 1 << 20 {
            return Err(WireError::BadLength);
        }
        for _ in 0..n {
            part.push(VcRow {
                code_hash: codec::get_vote_code_hash(r)?,
                receipt_share: codec::get_signed_share(r)?,
            });
        }
    }
    Ok(VcBallot { parts })
}

/// A WAL-backed ballot store: the VC init rows live in checksummed log
/// frames on a [`Disk`](ddemos_storage::Disk) instead of a `HashMap`, so
/// a multi-million-ballot electorate spills to disk (and, on a `SimDisk`,
/// every lookup charges the disk's modelled read latency on the
/// simulation clock). An in-memory index maps each serial to its frame.
pub struct WalStore {
    disk: DynDisk,
    index: BTreeMap<SerialNo, (u64, u32)>,
    n: u64,
}

impl WalStore {
    /// Builds the store by writing `rows` to `disk` in serial order
    /// (one checksummed frame per ballot), syncing once at the end.
    ///
    /// # Errors
    /// [`StorageError`] on disk failure.
    pub fn build(
        rows: &BTreeMap<SerialNo, VcBallot>,
        n: u64,
        disk: DynDisk,
    ) -> Result<WalStore, StorageError> {
        let mut wal = Wal::new(disk.clone(), WalConfig { group_commit: 256 });
        let mut index = BTreeMap::new();
        // BTreeMap iterates in serial order already — frames land on disk
        // canonically without a sort pass.
        for (&serial, ballot) in rows.iter() {
            let mut w = Writer::new();
            w.put_u64(serial.0);
            put_vc_ballot(&mut w, ballot);
            let payload = w.into_bytes();
            let frame_at = wal.append(&payload)?;
            index.insert(
                serial,
                (
                    frame_at + ddemos_storage::wal::FRAME_HEADER as u64,
                    payload.len() as u32,
                ),
            );
        }
        wal.commit()?;
        Ok(WalStore { disk, index, n })
    }

    /// Reopens a store previously [`WalStore::build`]t on `disk`,
    /// rebuilding the index by scanning the frames (what a restarted node
    /// does instead of re-deriving its database).
    ///
    /// # Errors
    /// [`StorageError`] on disk failure or a corrupt frame prefix.
    pub fn open(disk: DynDisk, n: u64) -> Result<WalStore, StorageError> {
        let len = disk.len();
        let mut buf = vec![0u8; len as usize];
        disk.read_at(0, &mut buf)?;
        let mut index = BTreeMap::new();
        let mut offset = 0usize;
        while let Some((payload, next)) = decode_frame(&buf, offset) {
            let mut r = Reader::new(&buf[payload.clone()]);
            let serial = r
                .get_u64()
                .map_err(|_| StorageError::Corrupt("ballot frame serial"))?;
            index.insert(
                SerialNo(serial),
                (payload.start as u64, (payload.end - payload.start) as u32),
            );
            offset = next;
        }
        Ok(WalStore { disk, index, n })
    }

    /// Number of ballots materialized on disk.
    pub fn frames(&self) -> usize {
        self.index.len()
    }
}

impl BallotStore for WalStore {
    fn get(&self, serial: SerialNo) -> Option<VcBallot> {
        let (offset, len) = *self.index.get(&serial)?;
        let mut buf = vec![0u8; len as usize];
        self.disk.read_at(offset, &mut buf).ok()?;
        let mut r = Reader::new(&buf);
        if r.get_u64().ok()? != serial.0 {
            return None;
        }
        get_vc_ballot(&mut r).ok()
    }
    fn num_ballots(&self) -> u64 {
        self.n
    }
}

/// Synthetic per-lookup latency model: `base + per_level · log₂(n)`,
/// approximating B-tree index depth growth with electorate size.
///
/// Calibration: with the defaults (`base = 80 µs`, `per_level = 14 µs`),
/// a 50M-row index (log₂ ≈ 25.6) costs ~439 µs and a 250M-row index
/// (log₂ ≈ 27.9) costs ~471 µs per lookup — matching the gentle throughput
/// decline of Fig 5a rather than any cliff.
#[derive(Clone, Copy, Debug)]
pub struct StorageModel {
    /// Fixed per-lookup cost.
    pub base: Duration,
    /// Additional cost per index level (`log₂(num_ballots)`).
    pub per_level: Duration,
    /// Cache-miss term: additional cost per `√(num_ballots / 10⁶)`. Index
    /// upper levels stay RAM-resident; leaf/heap hit rates degrade with
    /// table size, which is what bends the Fig 5a curve beyond pure index
    /// depth.
    pub per_sqrt_million: Duration,
}

impl Default for StorageModel {
    fn default() -> Self {
        StorageModel {
            base: Duration::from_micros(80),
            per_level: Duration::from_micros(14),
            per_sqrt_million: Duration::from_micros(60),
        }
    }
}

impl StorageModel {
    /// The modelled lookup latency for an `n`-ballot election.
    pub fn lookup_latency(&self, n: u64) -> Duration {
        let levels = (n.max(2) as f64).log2();
        let sqrt_millions = (n as f64 / 1e6).sqrt();
        self.base
            + Duration::from_nanos((self.per_level.as_nanos() as f64 * levels) as u64)
            + Duration::from_nanos((self.per_sqrt_million.as_nanos() as f64 * sqrt_millions) as u64)
    }
}

/// Wraps a store, charging the modelled lookup latency on every `get`
/// through a clock-driven wait: real mode sleeps the OS thread (no
/// core-burning spin loop, even for sub-millisecond latencies), virtual
/// mode blocks in virtual time so the charge costs no wall clock at all.
pub struct LatencyStore<S> {
    inner: S,
    latency: Duration,
    clock: GlobalClock,
}

impl<S: BallotStore> LatencyStore<S> {
    /// Wraps `inner` with the latency predicted by `model` for its size,
    /// charged against a fresh real-time clock.
    pub fn new(inner: S, model: StorageModel) -> LatencyStore<S> {
        Self::with_clock(inner, model, GlobalClock::new())
    }

    /// Wraps `inner`, charging the modelled latency against `clock`
    /// (virtual elections pass their virtual global clock here).
    pub fn with_clock(inner: S, model: StorageModel, clock: GlobalClock) -> LatencyStore<S> {
        let latency = model.lookup_latency(inner.num_ballots());
        LatencyStore {
            inner,
            latency,
            clock,
        }
    }

    /// The charged per-lookup latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }
}

impl<S: BallotStore> BallotStore for LatencyStore<S> {
    fn get(&self, serial: SerialNo) -> Option<VcBallot> {
        self.clock.sleep(self.latency);
        self.inner.get(serial)
    }
    fn num_ballots(&self) -> u64 {
        self.inner.num_ballots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_lookup() {
        let store = MemoryStore::new(BTreeMap::new(), 0);
        assert!(store.get(SerialNo(0)).is_none());
        assert_eq!(store.num_ballots(), 0);
    }

    #[test]
    fn fn_store_bounds() {
        let store = FnStore::new(5, |s| {
            Some(VcBallot {
                parts: [vec![], vec![]],
            })
            .filter(|_| s.0 < 5)
        });
        assert!(store.get(SerialNo(4)).is_some());
        assert!(store.get(SerialNo(5)).is_none());
    }

    #[test]
    fn storage_model_grows_with_log_n() {
        let model = StorageModel::default();
        let small = model.lookup_latency(50_000_000);
        let large = model.lookup_latency(250_000_000);
        assert!(large > small);
        // Sub-linear: 5x the rows costs well under 2x the latency.
        assert!(large < small * 2);
    }

    #[test]
    fn latency_store_charges_time() {
        let inner = MemoryStore::new(BTreeMap::new(), 1 << 20);
        let model = StorageModel {
            base: Duration::from_micros(300),
            per_level: Duration::ZERO,
            per_sqrt_million: Duration::ZERO,
        };
        let store = LatencyStore::new(inner, model);
        let t0 = std::time::Instant::now();
        let _ = store.get(SerialNo(0));
        assert!(t0.elapsed() >= Duration::from_micros(250));
    }

    #[test]
    fn wal_store_roundtrips_and_reopens() {
        use ddemos_crypto::schnorr::SigningKey;
        use ddemos_crypto::shamir::Share;
        use ddemos_crypto::votecode::{VoteCode, VoteCodeHash};
        use ddemos_crypto::vss::SignedShare;
        use ddemos_storage::{DiskProfile, SimDisk};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::sync::Arc;

        let mut rng = StdRng::seed_from_u64(5);
        let key = SigningKey::generate(&mut rng);
        let row = |b: u8| VcRow {
            code_hash: VoteCodeHash::commit(&VoteCode([b; 20]), u64::from(b)),
            receipt_share: SignedShare {
                share: Share {
                    index: u32::from(b) + 1,
                    value: ddemos_crypto::field::Scalar::from_u64(u64::from(b)),
                },
                signature: key.sign(&[b]),
            },
        };
        let mut rows = BTreeMap::new();
        for s in 0..4u64 {
            rows.insert(
                SerialNo(s),
                VcBallot {
                    parts: [
                        vec![row(s as u8), row(s as u8 + 10)],
                        vec![row(s as u8 + 20)],
                    ],
                },
            );
        }
        let disk: ddemos_storage::DynDisk =
            Arc::new(SimDisk::new(GlobalClock::new(), DiskProfile::instant()));
        let store = WalStore::build(&rows, 10, disk.clone()).unwrap();
        assert_eq!(store.num_ballots(), 10);
        assert_eq!(store.frames(), 4);
        assert_eq!(store.get(SerialNo(2)).unwrap(), rows[&SerialNo(2)]);
        assert!(
            store.get(SerialNo(7)).is_none(),
            "registered but unmaterialized"
        );

        // Reopen from the same disk: the index is rebuilt by frame scan.
        let reopened = WalStore::open(disk, 10).unwrap();
        assert_eq!(reopened.frames(), 4);
        for s in 0..4u64 {
            assert_eq!(reopened.get(SerialNo(s)).unwrap(), rows[&SerialNo(s)]);
        }
    }

    #[test]
    fn latency_store_charges_virtual_time_without_wall_time() {
        use ddemos_protocol::clock::VirtualClock;
        let inner = MemoryStore::new(BTreeMap::new(), 1 << 20);
        let model = StorageModel {
            base: Duration::from_millis(400),
            per_level: Duration::ZERO,
            per_sqrt_million: Duration::ZERO,
        };
        let vclock = VirtualClock::new();
        let store =
            LatencyStore::with_clock(inner, model, GlobalClock::new_virtual(vclock.clone()));
        let wall = std::time::Instant::now();
        let _ = store.get(SerialNo(0));
        assert!(vclock.now_ms() >= 400, "virtual charge applied");
        assert!(
            wall.elapsed() < Duration::from_millis(400),
            "no wall-time cost"
        );
    }
}
