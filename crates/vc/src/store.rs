//! Ballot stores backing a VC node.
//!
//! The paper's prototype keeps VC initialization data in PostgreSQL and,
//! for the scalability experiments, either serves it from disk (Fig 5a) or
//! caches it in memory (Fig 4). Here a store is a trait: an in-memory map,
//! a derivation function (the PRF-backed virtual store for 250M-ballot
//! elections), and a latency-model wrapper that charges the index-depth
//! cost a database lookup would (the Fig 5a substitution; see §1–2 of
//! `DESIGN.md` at the workspace root for the hierarchy and the model's
//! calibration). Deployments pick a store through the harness's
//! `StoreKind` builder option rather than constructing these directly.

use ddemos_protocol::clock::GlobalClock;
use ddemos_protocol::initdata::VcBallot;
use ddemos_protocol::SerialNo;
use std::collections::HashMap;
use std::time::Duration;

/// Source of per-ballot VC rows.
pub trait BallotStore: Send + Sync {
    /// Fetches the rows for `serial` (None for unknown serials).
    fn get(&self, serial: SerialNo) -> Option<VcBallot>;
    /// The number of registered ballots (serials are `0..num_ballots`).
    fn num_ballots(&self) -> u64;
}

/// A fully materialized in-memory store.
#[derive(Debug, Default)]
pub struct MemoryStore {
    map: HashMap<SerialNo, VcBallot>,
    n: u64,
}

impl MemoryStore {
    /// Builds a store from materialized init data.
    pub fn new(map: HashMap<SerialNo, VcBallot>, n: u64) -> MemoryStore {
        MemoryStore { map, n }
    }
}

impl BallotStore for MemoryStore {
    fn get(&self, serial: SerialNo) -> Option<VcBallot> {
        self.map.get(&serial).cloned()
    }
    fn num_ballots(&self) -> u64 {
        self.n
    }
}

/// A store that derives rows on demand from a closure (the PRF-backed
/// virtual store; the closure typically calls back into the EA derivation).
pub struct FnStore<F> {
    derive: F,
    n: u64,
}

impl<F> FnStore<F>
where
    F: Fn(SerialNo) -> Option<VcBallot> + Send + Sync,
{
    /// Builds a virtual store over `n` ballots.
    pub fn new(n: u64, derive: F) -> FnStore<F> {
        FnStore { derive, n }
    }
}

impl<F> BallotStore for FnStore<F>
where
    F: Fn(SerialNo) -> Option<VcBallot> + Send + Sync,
{
    fn get(&self, serial: SerialNo) -> Option<VcBallot> {
        if serial.0 >= self.n {
            return None;
        }
        (self.derive)(serial)
    }
    fn num_ballots(&self) -> u64 {
        self.n
    }
}

/// Synthetic per-lookup latency model: `base + per_level · log₂(n)`,
/// approximating B-tree index depth growth with electorate size.
///
/// Calibration: with the defaults (`base = 80 µs`, `per_level = 14 µs`),
/// a 50M-row index (log₂ ≈ 25.6) costs ~439 µs and a 250M-row index
/// (log₂ ≈ 27.9) costs ~471 µs per lookup — matching the gentle throughput
/// decline of Fig 5a rather than any cliff.
#[derive(Clone, Copy, Debug)]
pub struct StorageModel {
    /// Fixed per-lookup cost.
    pub base: Duration,
    /// Additional cost per index level (`log₂(num_ballots)`).
    pub per_level: Duration,
    /// Cache-miss term: additional cost per `√(num_ballots / 10⁶)`. Index
    /// upper levels stay RAM-resident; leaf/heap hit rates degrade with
    /// table size, which is what bends the Fig 5a curve beyond pure index
    /// depth.
    pub per_sqrt_million: Duration,
}

impl Default for StorageModel {
    fn default() -> Self {
        StorageModel {
            base: Duration::from_micros(80),
            per_level: Duration::from_micros(14),
            per_sqrt_million: Duration::from_micros(60),
        }
    }
}

impl StorageModel {
    /// The modelled lookup latency for an `n`-ballot election.
    pub fn lookup_latency(&self, n: u64) -> Duration {
        let levels = (n.max(2) as f64).log2();
        let sqrt_millions = (n as f64 / 1e6).sqrt();
        self.base
            + Duration::from_nanos((self.per_level.as_nanos() as f64 * levels) as u64)
            + Duration::from_nanos((self.per_sqrt_million.as_nanos() as f64 * sqrt_millions) as u64)
    }
}

/// Wraps a store, charging the modelled lookup latency on every `get`
/// through a clock-driven wait: real mode sleeps the OS thread (no
/// core-burning spin loop, even for sub-millisecond latencies), virtual
/// mode blocks in virtual time so the charge costs no wall clock at all.
pub struct LatencyStore<S> {
    inner: S,
    latency: Duration,
    clock: GlobalClock,
}

impl<S: BallotStore> LatencyStore<S> {
    /// Wraps `inner` with the latency predicted by `model` for its size,
    /// charged against a fresh real-time clock.
    pub fn new(inner: S, model: StorageModel) -> LatencyStore<S> {
        Self::with_clock(inner, model, GlobalClock::new())
    }

    /// Wraps `inner`, charging the modelled latency against `clock`
    /// (virtual elections pass their virtual global clock here).
    pub fn with_clock(inner: S, model: StorageModel, clock: GlobalClock) -> LatencyStore<S> {
        let latency = model.lookup_latency(inner.num_ballots());
        LatencyStore {
            inner,
            latency,
            clock,
        }
    }

    /// The charged per-lookup latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }
}

impl<S: BallotStore> BallotStore for LatencyStore<S> {
    fn get(&self, serial: SerialNo) -> Option<VcBallot> {
        self.clock.sleep(self.latency);
        self.inner.get(serial)
    }
    fn num_ballots(&self) -> u64 {
        self.inner.num_ballots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_lookup() {
        let store = MemoryStore::new(HashMap::new(), 0);
        assert!(store.get(SerialNo(0)).is_none());
        assert_eq!(store.num_ballots(), 0);
    }

    #[test]
    fn fn_store_bounds() {
        let store = FnStore::new(5, |s| {
            Some(VcBallot {
                parts: [vec![], vec![]],
            })
            .filter(|_| s.0 < 5)
        });
        assert!(store.get(SerialNo(4)).is_some());
        assert!(store.get(SerialNo(5)).is_none());
    }

    #[test]
    fn storage_model_grows_with_log_n() {
        let model = StorageModel::default();
        let small = model.lookup_latency(50_000_000);
        let large = model.lookup_latency(250_000_000);
        assert!(large > small);
        // Sub-linear: 5x the rows costs well under 2x the latency.
        assert!(large < small * 2);
    }

    #[test]
    fn latency_store_charges_time() {
        let inner = MemoryStore::new(HashMap::new(), 1 << 20);
        let model = StorageModel {
            base: Duration::from_micros(300),
            per_level: Duration::ZERO,
            per_sqrt_million: Duration::ZERO,
        };
        let store = LatencyStore::new(inner, model);
        let t0 = std::time::Instant::now();
        let _ = store.get(SerialNo(0));
        assert!(t0.elapsed() >= Duration::from_micros(250));
    }

    #[test]
    fn latency_store_charges_virtual_time_without_wall_time() {
        use ddemos_protocol::clock::VirtualClock;
        let inner = MemoryStore::new(HashMap::new(), 1 << 20);
        let model = StorageModel {
            base: Duration::from_millis(400),
            per_level: Duration::ZERO,
            per_sqrt_million: Duration::ZERO,
        };
        let vclock = VirtualClock::new();
        let store =
            LatencyStore::with_clock(inner, model, GlobalClock::new_virtual(vclock.clone()));
        let wall = std::time::Instant::now();
        let _ = store.get(SerialNo(0));
        assert!(vclock.now_ms() >= 400, "virtual charge applied");
        assert!(
            wall.elapsed() < Duration::from_millis(400),
            "no wall-time cost"
        );
    }
}
