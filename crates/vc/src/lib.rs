//! # ddemos-vc
//!
//! The Vote Collection subsystem — the paper's primary distributed
//! contribution (§III-E): a cluster of `Nv ≥ 3fv+1` nodes that collects
//! votes fully asynchronously, gives each voter a human-verifiable
//! recorded-as-cast receipt (reconstructed from `Nv−fv` EA-dealt shares
//! under a uniqueness certificate), and at election end agrees on a single
//! vote set via batched binary consensus with ANNOUNCE dispersal and
//! RECOVER back-fill.
//!
//! * [`core`] — the sans-I/O protocol engine ([`VcCore`]): Algorithm 1 +
//!   vote-set consensus as a pure `step(input, now_ms) -> Vec<output>`
//!   state machine, with no thread, socket, clock, or journal of its own.
//! * [`node`] — the thin thread driver pumping a core against any
//!   `ddemos_net::Transport` endpoint (one thread per node).
//! * [`store`] — ballot stores: in-memory, PRF-derived (virtual 250M-ballot
//!   elections), and the index-depth latency model for the disk experiment
//!   (hierarchy and calibration documented in `DESIGN.md` at the workspace
//!   root).
//! * [`behavior`] — Byzantine behaviour profiles used by security tests.
//!
//! Clusters are normally stood up through the `ddemos-harness` facade
//! (`ElectionBuilder`), which spawns the node threads, wires the stores
//! via its `StoreKind` option, and drives vote-set consensus to
//! [`FinalizedVoteSet`]s deterministically — or, for multi-process
//! deployments, through `ddemos_harness::tcp`, which runs the same driver
//! over real sockets.

#![warn(missing_docs)]

pub mod behavior;
pub mod core;
mod durable;
pub mod node;
pub mod store;

pub use behavior::{AdversaryView, Trigger, TriggeredAdversary, VcBehavior};
pub use core::{StepTrace, TraceStep, VcCore, VcDurable, VcInput, VcOutput};
pub use ddemos_protocol::posts::FinalizedVoteSet;
pub use node::{DeliverTarget, VcHandle, VcNode, VcNodeConfig};
pub use store::{BallotStore, FnStore, LatencyStore, MemoryStore, StorageModel, WalStore};
