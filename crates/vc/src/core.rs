//! The sans-I/O Vote Collector core.
//!
//! [`VcCore`] is the entire per-node protocol of Algorithm 1 plus the
//! election-end Vote Set Consensus of §III-E as a pure state machine:
//! `step(input, now_ms) -> Vec<VcOutput>`. It owns no thread, no socket,
//! no channel, no clock, and no journal — drivers feed it
//! [`VcInput`]s and execute the [`VcOutput`]s it returns, in order.
//!
//! Determinism contract: given the same construction arguments and the
//! same `(input, now_ms)` sequence, a core produces byte-identical output
//! sequences (see [`StepTrace`] and `tests/determinism.rs`), whatever
//! drives it — the in-process thread loop over `SimNet`, the same loop
//! over `TcpTransport`, or a test harness replaying a recorded trace.
//!
//! Output ordering carries the durability contract: a
//! [`VcOutput::Commit`] always precedes the [`VcOutput::Send`]s whose
//! contents depend on the journaled state, so a driver that executes
//! outputs in order preserves the "durable before externally visible"
//! invariant the recovery tests assert.

use crate::behavior::{AdversaryView, TriggeredAdversary, VcBehavior};
use crate::durable::{BallotSlot, DurableView, Status, VcRecord};
use crate::store::BallotStore;
use ddemos_crypto::mverify::{MsgVerifier, DEFAULT_CACHE_CAPACITY};
use ddemos_crypto::schnorr::{Signature, VerifyingKey};
use ddemos_crypto::sha256::sha256;
use ddemos_crypto::votecode::VoteCode;
use ddemos_crypto::vss::{DealerVss, SignedShare};
use ddemos_protocol::codec;
use ddemos_protocol::initdata::{endorsement_message, receipt_share_context, VcInit};
use ddemos_protocol::messages::{
    AnnounceEntry, ConsensusMsg, Envelope, Msg, RejectReason, UCert, VoteOutcome,
};
use ddemos_protocol::posts::{FinalizedVoteSet, VoteSet};
use ddemos_protocol::wire::{Reader, WireError, Writer};
use ddemos_protocol::{NodeId, NodeKind, PartId, SerialNo};
use ddemos_storage::Durable;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use ddemos_consensus::BatchConsensus;

/// One input to the core. Time never comes from a clock the core reads —
/// every step is stamped with the driver's `now_ms` (node-clock
/// milliseconds, drift included).
// Deliver carries a full envelope by design: boxing it would cost an
// allocation per message on the voting hot path to shrink three unit
// variants.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum VcInput {
    /// A network envelope arrived.
    Deliver(Envelope),
    /// The poll timer fired with no traffic (drives the end-of-voting
    /// check, exactly like the old loop's `recv_timeout` expiry).
    Tick,
    /// Close the polls now (the node behaves as if its clock passed
    /// `Tend`). Drivers translate both the in-process `close_polls()`
    /// flag and an authenticated `Msg::ClosePolls` envelope into this.
    ClosePolls,
    /// The driver is stopping; the core emits nothing and expects no
    /// further steps.
    Shutdown,
}

const IN_DELIVER: u8 = 1;
const IN_TICK: u8 = 2;
const IN_CLOSE_POLLS: u8 = 3;
const IN_SHUTDOWN: u8 = 4;

impl VcInput {
    /// Canonical encoding (trace recording / replay).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            VcInput::Deliver(env) => {
                w.put_u8(IN_DELIVER);
                codec::put_envelope(&mut w, env);
            }
            VcInput::Tick => {
                w.put_u8(IN_TICK);
            }
            VcInput::ClosePolls => {
                w.put_u8(IN_CLOSE_POLLS);
            }
            VcInput::Shutdown => {
                w.put_u8(IN_SHUTDOWN);
            }
        }
        w.into_bytes()
    }

    /// Decodes an input recorded by [`VcInput::encode`].
    ///
    /// # Errors
    /// [`WireError`] on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<VcInput, WireError> {
        let mut r = Reader::new(bytes);
        Ok(match r.get_u8()? {
            IN_DELIVER => VcInput::Deliver(codec::get_envelope(&mut r)?),
            IN_TICK => VcInput::Tick,
            IN_CLOSE_POLLS => VcInput::ClosePolls,
            IN_SHUTDOWN => VcInput::Shutdown,
            _ => return Err(WireError::BadValue),
        })
    }
}

/// One effect a driver must execute. Order matters (see the module docs).
#[derive(Clone, Debug)]
pub enum VcOutput {
    /// Send a message on the node's transport endpoint.
    Send {
        /// Destination.
        to: NodeId,
        /// Payload.
        msg: Msg,
    },
    /// (Re-)arm the poll timer: the driver's next receive should wait at
    /// most this long before feeding [`VcInput::Tick`].
    SetTimer(Duration),
    /// Append one encoded [`VcRecord`] to the node's journal. Emitted
    /// only by cores constructed with `durable = true`.
    Journal(Vec<u8>),
    /// Force the journal's group commit (and run the snapshot cadence):
    /// the state appended so far must be durable before the following
    /// `Send`s become externally visible.
    Commit,
    /// Deliver the finalized vote set to the harness (in-process channel
    /// or a `Msg::Finalized` envelope to the coordinator).
    Deliver(FinalizedVoteSet),
    /// The node power-cycled ([`Msg::Amnesia`]): volatile state is
    /// already gone; the driver must crash-simulate its journal, replay
    /// it into [`VcCore::durable`], then run
    /// [`VcCore::post_recovery`] and execute what it returns.
    Recover,
}

impl VcOutput {
    /// Canonical encoding (trace recording).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            VcOutput::Send { to, msg } => {
                w.put_u8(1);
                codec::put_node_id(&mut w, *to);
                codec::put_msg(&mut w, msg);
            }
            VcOutput::SetTimer(d) => {
                w.put_u8(2).put_u64(d.as_nanos() as u64);
            }
            VcOutput::Journal(bytes) => {
                w.put_u8(3).put_bytes(bytes);
            }
            VcOutput::Commit => {
                w.put_u8(4);
            }
            VcOutput::Deliver(f) => {
                w.put_u8(5);
                codec::put_finalized_vote_set(&mut w, f);
            }
            VcOutput::Recover => {
                w.put_u8(6);
            }
        }
        w.into_bytes()
    }
}

/// One recorded step: the encoded input, its time stamp, and the encoded
/// outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// [`VcInput::encode`] of the step's input.
    pub input: Vec<u8>,
    /// The `now_ms` the driver stamped the step with.
    pub now_ms: u64,
    /// [`VcOutput::encode`] of each output, in order.
    pub outputs: Vec<Vec<u8>>,
}

/// A shared recorder a driver appends every `(input, now_ms, outputs)`
/// triple to — the byte-level proof that core behavior is a pure function
/// of the input sequence, independent of the driver.
#[derive(Clone, Default)]
pub struct StepTrace {
    entries: Arc<Mutex<Vec<TraceStep>>>,
}

impl std::fmt::Debug for StepTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StepTrace({} steps)", self.entries.lock().len())
    }
}

impl StepTrace {
    /// An empty trace.
    pub fn new() -> StepTrace {
        StepTrace::default()
    }

    /// Records one step.
    pub fn record(&self, input: &VcInput, now_ms: u64, outputs: &[VcOutput]) {
        self.entries.lock().push(TraceStep {
            input: input.encode(),
            now_ms,
            outputs: outputs.iter().map(VcOutput::encode).collect(),
        });
    }

    /// Takes the recorded steps (the trace is left empty).
    pub fn take(&self) -> Vec<TraceStep> {
        std::mem::take(&mut self.entries.lock())
    }

    /// A digest over every recorded byte (order-sensitive).
    pub fn digest(&self) -> [u8; 32] {
        let entries = self.entries.lock();
        let mut w = Writer::tagged("ddemos/vc-step-trace/v1");
        w.put_u64(entries.len() as u64);
        for step in entries.iter() {
            w.put_bytes(&step.input);
            w.put_u64(step.now_ms);
            w.put_u32(step.outputs.len() as u32);
            for out in &step.outputs {
                w.put_bytes(out);
            }
        }
        w.digest()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Voting,
    Announce,
    Consensus,
    Recover,
    Done,
}

/// A [`Durable`] view over a core's journaled state, handed to drivers
/// for journal recovery ([`VcCore::durable`]).
pub struct VcDurable<'a>(DurableView<'a>);

impl Durable for VcDurable<'_> {
    fn encode_snapshot(&self, w: &mut Writer) {
        self.0.encode_snapshot(w);
    }

    fn restore_snapshot(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.0.restore_snapshot(r)
    }

    fn apply_record(&mut self, record: &[u8]) -> Result<(), WireError> {
        self.0.apply_record(record)
    }
}

/// The sans-I/O Vote Collector state machine. See the module docs.
pub struct VcCore<S> {
    init: VcInit,
    store: S,
    behavior: VcBehavior,
    /// A state-triggered Byzantine profile layered over `behavior`
    /// (consulted at the same decision points; see
    /// [`TriggeredAdversary`]). `None` for honest and statically
    /// Byzantine nodes.
    adversary: Option<TriggeredAdversary>,
    /// Verified endorsement signatures observed so far (own included) —
    /// the "protocol state seen" that endorsement-count triggers
    /// predicate over.
    endorsements_seen: u64,
    poll: Duration,
    beacon: u64,
    /// Whether a journal is attached driver-side: gates the
    /// [`VcOutput::Journal`]/[`VcOutput::Commit`]/[`VcOutput::Recover`]
    /// outputs (and their encoding cost) off the hot path for volatile
    /// nodes.
    durable: bool,
    slots: BTreeMap<SerialNo, BallotSlot>,
    phase: Phase,
    votes_handled: u64,
    announce_at_ms: u64,
    /// Whether this node has delivered its finalized vote set (journaled,
    /// so an amnesia recovery cannot deliver a second one).
    finalized: bool,
    /// Digests of already-verified UCERTs.
    verified_ucerts: BTreeSet<[u8; 32]>,
    /// Batch-first signature verification front end: prepared tables for
    /// the static peer keys plus the bounded verified-envelope memo.
    /// Volatile (rebuilt empty on recovery) — it only memoizes results,
    /// so replaying the same inputs reproduces the same outcomes.
    mverify: MsgVerifier,
    announce_from: BTreeSet<u32>,
    /// ANNOUNCE messages that arrived while this node was still in the
    /// voting phase. Polls close at each node's *own* clock (or when its
    /// driver delivers ClosePolls — a staggered network message on a real
    /// transport), so an early peer's single ANNOUNCE multicast must not
    /// be lost: more than `fv` drops would leave the announce quorum
    /// unreachable and deadlock vote-set consensus.
    buffered_announces: Vec<(NodeId, Arc<Vec<AnnounceEntry>>)>,
    consensus: Option<BatchConsensus>,
    buffered_consensus: Vec<(u32, ConsensusMsg)>,
    decision: Option<Vec<bool>>,
    vc_peers: Vec<NodeId>,
    /// Polls closed (by `Tend` on the node clock or a ClosePolls input).
    closed: bool,
    /// Set while a [`VcOutput::Recover`] is outstanding: suppresses the
    /// end-of-voting check until [`VcCore::post_recovery`] runs it over
    /// the recovered state.
    awaiting_recovery: bool,
    /// The time stamp of the step being processed.
    now_ms: u64,
    /// Journal device reported full: the node is read-only. It keeps
    /// serving already-recorded receipts but refuses to take on new
    /// votes or sign new endorsements — a durable promise it could not
    /// keep across a restart would break receipt uniqueness. Set by the
    /// driver when an append returns `StorageError::DiskFull`.
    degraded: bool,
    outputs: Vec<VcOutput>,
}

impl<S: BallotStore> VcCore<S> {
    /// Creates a core. `durable` must reflect whether the driver attaches
    /// a journal (it gates the journal outputs).
    pub fn new(
        init: VcInit,
        store: S,
        behavior: VcBehavior,
        poll: Duration,
        beacon: u64,
        durable: bool,
    ) -> VcCore<S> {
        let vc_peers: Vec<NodeId> = (0..init.params.num_vc as u32).map(NodeId::vc).collect();
        let mut mverify = MsgVerifier::new(DEFAULT_CACHE_CAPACITY);
        for vk in &init.vc_keys {
            mverify.prepare(vk);
        }
        mverify.prepare(&init.ea_key);
        VcCore {
            init,
            store,
            behavior,
            adversary: None,
            endorsements_seen: 0,
            poll,
            beacon,
            durable,
            slots: BTreeMap::new(),
            phase: Phase::Voting,
            votes_handled: 0,
            announce_at_ms: 0,
            finalized: false,
            verified_ucerts: BTreeSet::new(),
            mverify,
            announce_from: BTreeSet::new(),
            buffered_announces: Vec::new(),
            consensus: None,
            buffered_consensus: Vec::new(),
            decision: None,
            vc_peers,
            closed: false,
            awaiting_recovery: false,
            now_ms: 0,
            degraded: false,
            outputs: Vec::new(),
        }
    }

    /// This node's network identity.
    pub fn id(&self) -> NodeId {
        NodeId::vc(self.init.node_index)
    }

    /// Arms a state-triggered adversary on this core. The adversary acts
    /// at the same decision points as the static [`VcBehavior`]s, gated
    /// by its predicate over observed state.
    pub fn set_adversary(&mut self, adversary: TriggeredAdversary) {
        self.adversary = Some(adversary);
    }

    /// The armed adversary, if any (tests inspect its fire count).
    pub fn adversary(&self) -> Option<&TriggeredAdversary> {
        self.adversary.as_ref()
    }

    /// Puts the core into read-only degraded mode (journal device full).
    /// New votes get a typed [`RejectReason::ReplicaDegraded`] refusal
    /// and no new endorsements are signed; already-recorded receipts are
    /// still served. Degradation is sticky — a replica only leaves it by
    /// restarting against a device with room again.
    pub fn set_degraded(&mut self) {
        self.degraded = true;
    }

    /// Whether the core is in read-only degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Consults the triggered adversary for `action` at a decision point
    /// concerning `serial`, latching a fire when it acts.
    fn adversary_fires(&mut self, action: VcBehavior, serial: Option<SerialNo>) -> bool {
        let view = AdversaryView {
            endorsements_seen: self.endorsements_seen,
            serial: serial.map(|s| s.0),
        };
        match &mut self.adversary {
            Some(adv) => adv.fires(action, view),
            None => false,
        }
    }

    /// Initial outputs: arms the poll timer. Drivers execute these before
    /// the first step.
    pub fn start(&mut self) -> Vec<VcOutput> {
        vec![VcOutput::SetTimer(self.poll)]
    }

    /// Whether this node has released its finalized vote set. A done
    /// node keeps serving straggler peers (late consensus echoes,
    /// RECOVER dispersals), but its own protocol outcome is sealed;
    /// drivers use this to keep post-finalization traffic — whose extent
    /// depends on when the process shuts down — out of the deterministic
    /// metrics fingerprint.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// The journaled-state view drivers replay a journal into (node
    /// start-up and [`VcOutput::Recover`] handling).
    pub fn durable(&mut self) -> VcDurable<'_> {
        VcDurable(DurableView {
            slots: &mut self.slots,
            verified_ucerts: &mut self.verified_ucerts,
            finalized: &mut self.finalized,
        })
    }

    /// Completes a journal replay: re-enters the `Done` phase if the
    /// replayed state was finalized, finishes receipts the crash
    /// interrupted, and re-runs the end-of-voting check over the
    /// recovered state. Drivers call this after every
    /// [`VcCore::durable`] replay and execute the returned outputs.
    pub fn post_recovery(&mut self, now_ms: u64) -> Vec<VcOutput> {
        self.now_ms = now_ms;
        self.awaiting_recovery = false;
        if self.finalized {
            self.phase = Phase::Done;
        }
        self.finish_recovered_receipts();
        self.check_phase_end();
        std::mem::take(&mut self.outputs)
    }

    /// Advances the state machine by one input, stamped with the node
    /// clock's current milliseconds. Returns the effects, in order.
    pub fn step(&mut self, input: VcInput, now_ms: u64) -> Vec<VcOutput> {
        self.now_ms = now_ms;
        match input {
            VcInput::Deliver(env) => self.dispatch(env),
            VcInput::Tick => {}
            VcInput::ClosePolls => self.closed = true,
            VcInput::Shutdown => {
                return std::mem::take(&mut self.outputs);
            }
        }
        if !self.awaiting_recovery {
            self.check_phase_end();
        }
        std::mem::take(&mut self.outputs)
    }

    /// Warms the verified-signature memo for a burst of queued inputs:
    /// extracts every signature the subsequent `step`s would otherwise
    /// verify one at a time (ENDORSEMENT signatures, VOTE_P UCERT
    /// signatures, VOTE_P receipt shares) and verifies them in one MSM.
    ///
    /// Purely an optimization — it emits no outputs and mutates nothing
    /// but the memo, and a signature only enters the memo by verifying,
    /// so `step` outcomes are byte-identical with or without this call
    /// (invalid signatures just fail again, attributed, inside the step).
    pub fn preverify(&mut self, inputs: &[VcInput]) {
        let eid = self.init.params.election_id;
        let mut items: Vec<(VerifyingKey, Vec<u8>, Signature)> = Vec::new();
        for input in inputs {
            let VcInput::Deliver(env) = input else {
                continue;
            };
            if env.from.kind != NodeKind::Vc {
                continue;
            }
            match &env.msg {
                Msg::Endorsement {
                    serial,
                    vote_code,
                    signature,
                } => {
                    if let Some(vk) = self.init.vc_keys.get(env.from.index as usize) {
                        items.push((
                            *vk,
                            endorsement_message(&eid, *serial, &sha256(&vote_code.0)),
                            *signature,
                        ));
                    }
                }
                Msg::VoteP {
                    serial,
                    vote_code,
                    share,
                    ucert,
                } => {
                    let msg = endorsement_message(&eid, ucert.serial, &sha256(&ucert.vote_code.0));
                    for (idx, sig) in &ucert.sigs {
                        if let Some(vk) = self.init.vc_keys.get(*idx as usize) {
                            items.push((*vk, msg.clone(), *sig));
                        }
                    }
                    if let Some(ballot) = self.store.get(*serial) {
                        if let Some((part, row)) = ballot.find_code(vote_code) {
                            let ctx = receipt_share_context(&eid, *serial, part, row);
                            items.push(MsgVerifier::share_item(&self.init.ea_key, &ctx, share));
                        }
                    }
                }
                _ => {}
            }
        }
        if !items.is_empty() {
            self.mverify.check_batch(&items);
        }
    }

    fn check_phase_end(&mut self) {
        let ended = self.closed || self.now_ms >= self.init.params.end_ms;
        if self.phase == Phase::Voting && ended {
            self.begin_announce();
        }
    }

    fn out(&mut self, output: VcOutput) {
        self.outputs.push(output);
    }

    fn send(&mut self, to: NodeId, msg: Msg) {
        self.out(VcOutput::Send { to, msg });
    }

    fn multicast(&mut self, msg: Msg) {
        for &to in &self.vc_peers.clone() {
            self.out(VcOutput::Send {
                to,
                msg: msg.clone(),
            });
        }
    }

    fn quorum(&self) -> usize {
        self.init.params.vc_quorum()
    }

    fn in_voting_hours(&self) -> bool {
        !self.closed && self.init.params.in_voting_hours(self.now_ms)
    }

    // ----- durability ------------------------------------------------------

    /// Emits one journal-append output (no-op for volatile cores — the
    /// closure defers record construction, so they pay nothing on the
    /// voting hot path). Durability is deferred to the group commit
    /// ([`VcCore::persist`]).
    fn jlog(&mut self, record: impl FnOnce() -> VcRecord) {
        if self.durable {
            let bytes = record().encode();
            self.out(VcOutput::Journal(bytes));
        }
    }

    /// Emits the commit barrier: everything journaled so far must be
    /// durable before the outputs that follow become externally visible.
    fn persist(&mut self) {
        if self.durable {
            self.out(VcOutput::Commit);
        }
    }

    /// Completes receipts a crash interrupted: a replayed slot that is
    /// `Pending` with a quorum of shares reconstructs immediately (the
    /// live node would have done so before its next message).
    fn finish_recovered_receipts(&mut self) {
        let quorum = self.quorum();
        let serials: Vec<SerialNo> = self
            .slots
            .iter()
            .filter(|(_, s)| s.status == Status::Pending && s.shares.len() >= quorum)
            .map(|(serial, _)| *serial)
            .collect();
        for serial in serials {
            // The slot was listed just above; a vanished entry would be a
            // corrupt replay — skip it rather than abort the replica.
            let Some(slot) = self.slots.get_mut(&serial) else {
                continue;
            };
            if let Ok(secret) = DealerVss::reconstruct(&slot.shares, quorum) {
                let receipt = secret.to_u64().unwrap_or(u64::MAX);
                slot.receipt = Some(receipt);
                slot.status = Status::Voted;
                self.jlog(|| VcRecord::Voted { serial, receipt });
            }
        }
        self.persist();
    }

    /// Power-cycles the node (the `CrashAmnesia` fault): every byte of
    /// volatile state is dropped. For durable cores the driver then
    /// crash-simulates the journal and replays it (the emitted
    /// [`VcOutput::Recover`]); volatile nodes simply come back empty.
    /// Volatile scratch (waiting clients, collected endorsements,
    /// consensus buffers) is legitimately gone — voters retry, peers
    /// re-drive.
    fn crash_amnesia(&mut self) {
        self.slots.clear();
        self.verified_ucerts.clear();
        self.announce_from.clear();
        self.buffered_announces.clear();
        self.consensus = None;
        self.buffered_consensus.clear();
        self.decision = None;
        self.finalized = false;
        self.phase = Phase::Voting;
        if self.durable {
            self.awaiting_recovery = true;
            self.out(VcOutput::Recover);
        } else {
            self.finish_recovered_receipts();
        }
        // If the clock already passed `Tend` the end-of-voting check
        // (post-recovery for durable cores, end of this step otherwise)
        // re-enters the announce phase.
    }

    /// A replayed slot that lost a field its status implies is real
    /// corruption; a live node must refuse the ballot rather than panic.
    fn reject_corrupt_slot(
        &mut self,
        to: NodeId,
        request_id: u64,
        serial: SerialNo,
        missing: &str,
    ) {
        eprintln!(
            "vc-{}: corrupt slot {serial:?}: missing {missing}; refusing ballot",
            self.init.node_index
        );
        self.reply(
            to,
            request_id,
            serial,
            VoteOutcome::Rejected(RejectReason::InvalidVoteCode),
        );
    }

    fn dispatch(&mut self, env: Envelope) {
        if let Msg::Amnesia = env.msg {
            // Only the fault injector's self-addressed envelope counts —
            // a peer cannot remote-reboot this node.
            if env.from == self.id() {
                self.crash_amnesia();
            }
            return;
        }
        if self.behavior.is_crashed_at(self.votes_handled) {
            return;
        }
        match env.msg {
            Msg::Vote {
                request_id,
                serial,
                vote_code,
            } => {
                self.votes_handled += 1;
                self.on_vote(env.from, request_id, serial, vote_code);
            }
            Msg::Endorse { serial, vote_code } => self.on_endorse(env.from, serial, vote_code),
            Msg::Endorsement {
                serial,
                vote_code,
                signature,
            } => self.on_endorsement(env.from, serial, vote_code, signature),
            Msg::VoteP {
                serial,
                vote_code,
                share,
                ucert,
            } => self.on_vote_p(env.from, serial, vote_code, share, ucert),
            Msg::Announce { entries } => self.on_announce(env.from, entries),
            Msg::RecoverRequest { serial } => self.on_recover_request(env.from, serial),
            Msg::RecoverResponse {
                serial,
                vote_code,
                ucert,
            } => self.on_recover_response(serial, vote_code, ucert),
            Msg::Consensus(cm) => self.on_consensus(env.from, cm),
            // ClosePolls/Shutdown are driver-level control signals (the
            // driver authenticates and translates them into typed
            // inputs); everything else addressed to a VC node is noise.
            Msg::VoteReply { .. }
            | Msg::Rbc(_)
            | Msg::Amnesia
            | Msg::ClosePolls
            | Msg::Shutdown
            | Msg::Finalized(_)
            | Msg::BbWrite { .. }
            | Msg::BbWriteReply { .. }
            | Msg::BbReadRequest { .. }
            | Msg::BbReadResponse { .. } => {}
        }
    }

    // ----- voting phase (Algorithm 1) -------------------------------------

    fn reply(&mut self, to: NodeId, request_id: u64, serial: SerialNo, outcome: VoteOutcome) {
        self.send(
            to,
            Msg::VoteReply {
                request_id,
                serial,
                outcome,
            },
        );
    }

    fn on_vote(&mut self, from: NodeId, request_id: u64, serial: SerialNo, code: VoteCode) {
        if !self.in_voting_hours() {
            self.reply(
                from,
                request_id,
                serial,
                VoteOutcome::Rejected(RejectReason::OutsideVotingHours),
            );
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            self.reply(
                from,
                request_id,
                serial,
                VoteOutcome::Rejected(RejectReason::UnknownSerial),
            );
            return;
        };
        if self.degraded {
            // Read-only: keep serving ballots whose journal state is
            // already durable (a `Voted` replay of the same code, or a
            // round already in flight) but refuse to start new work we
            // could not record.
            let has_durable_state = self
                .slots
                .get(&serial)
                .is_some_and(|s| s.status != Status::NotVoted || s.used.is_some());
            if !has_durable_state {
                self.reply(
                    from,
                    request_id,
                    serial,
                    VoteOutcome::Rejected(RejectReason::ReplicaDegraded),
                );
                return;
            }
        }
        let slot = self.slots.entry(serial).or_default();
        match slot.status {
            Status::Voted => {
                // A `Voted` slot must carry its code and receipt; a slot
                // corrupted in recovery refuses the ballot instead of
                // panicking the node (the typed path a bad replay takes).
                let Some((used_code, ..)) = slot.used else {
                    self.reject_corrupt_slot(from, request_id, serial, "used code");
                    return;
                };
                if used_code == code {
                    let Some(receipt) = slot.receipt else {
                        self.reject_corrupt_slot(from, request_id, serial, "receipt");
                        return;
                    };
                    self.reply(from, request_id, serial, VoteOutcome::Receipt(receipt));
                } else {
                    self.reply(
                        from,
                        request_id,
                        serial,
                        VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode),
                    );
                }
            }
            Status::Pending => {
                // Same typed handling on the recovery-adjacent path: a
                // `Pending` slot without a code is corrupt, not a panic.
                let Some((used_code, ..)) = slot.used else {
                    self.reject_corrupt_slot(from, request_id, serial, "pending code");
                    return;
                };
                if used_code == code {
                    // Remember the client; reply when the receipt is ready.
                    slot.waiting.push((from, request_id, code));
                } else {
                    self.reply(
                        from,
                        request_id,
                        serial,
                        VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode),
                    );
                }
            }
            Status::NotVoted => {
                if let Some((active, ..)) = slot.used {
                    // An endorsement round is already in flight for this
                    // ballot (we are its responder).
                    if active == code {
                        slot.waiting.push((from, request_id, code));
                    } else {
                        self.reply(
                            from,
                            request_id,
                            serial,
                            VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode),
                        );
                    }
                    return;
                }
                let Some((part, row)) = ballot.find_code(&code) else {
                    self.reply(
                        from,
                        request_id,
                        serial,
                        VoteOutcome::Rejected(RejectReason::InvalidVoteCode),
                    );
                    return;
                };
                // Become the responder: collect endorsements.
                slot.used = Some((code, part, row));
                slot.waiting.push((from, request_id, code));
                slot.endorsements.clear();
                // Our own endorsement (also blocks endorsing other codes).
                let endorse_self = slot.my_endorsed.is_none();
                if endorse_self {
                    slot.my_endorsed = Some(code);
                }
                self.jlog(|| VcRecord::Used {
                    serial,
                    code,
                    part,
                    row: row as u32,
                });
                if endorse_self {
                    let sig = self.init.signing_key.sign(&endorsement_message(
                        &self.init.params.election_id,
                        serial,
                        &sha256(&code.0),
                    ));
                    // The slot entry above outlives the jlog call only via
                    // a fresh lookup; a concurrently corrupted map would
                    // drop the endorsement rather than abort the replica.
                    if let Some(slot) = self.slots.get_mut(&serial) {
                        slot.endorsements.push((self.init.node_index, sig));
                    }
                    self.endorsements_seen += 1;
                    self.jlog(|| VcRecord::Endorsed { serial, code });
                }
                // The endorsed/used state must be durable before peers can
                // observe it through our ENDORSE multicast.
                self.persist();
                self.multicast(Msg::Endorse {
                    serial,
                    vote_code: code,
                });
                self.check_ucert_complete(serial);
            }
        }
    }

    fn on_endorse(&mut self, from: NodeId, serial: SerialNo, code: VoteCode) {
        if from.kind != NodeKind::Vc || !self.in_voting_hours() {
            return;
        }
        // Read-only: a signature we cannot journal is a promise we might
        // not keep across a restart (re-signing a different code later
        // would break receipt uniqueness), so a degraded node signs only
        // codes it already endorsed durably.
        if self.degraded && self.slots.get(&serial).and_then(|s| s.my_endorsed) != Some(code) {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        if ballot.find_code(&code).is_none() {
            return;
        }
        // Equivocation (endorsing a second code for a ballot we already
        // endorsed): statically Byzantine endorsers always do it; a
        // triggered adversary does it when its predicate over observed
        // state fires. The adversary is only consulted when a conflict
        // actually exists, so its fire count equals violations committed.
        let prev_endorsed = self.slots.get(&serial).and_then(|s| s.my_endorsed);
        let equivocal = match prev_endorsed {
            Some(prev) if prev != code => {
                self.behavior == VcBehavior::EquivocalEndorser
                    || self.adversary_fires(VcBehavior::EquivocalEndorser, Some(serial))
            }
            _ => false,
        };
        let slot = self.slots.entry(serial).or_default();
        let may_endorse = match slot.my_endorsed {
            None => true,
            Some(prev) => prev == code || equivocal,
        };
        if !may_endorse {
            return;
        }
        slot.my_endorsed.get_or_insert(code);
        self.jlog(|| VcRecord::Endorsed { serial, code });
        let sig = self.init.signing_key.sign(&endorsement_message(
            &self.init.params.election_id,
            serial,
            &sha256(&code.0),
        ));
        self.endorsements_seen += 1;
        // The endorsement must be durable before it leaves the node: a
        // restarted node must never sign a *different* code for this
        // ballot (the receipt-uniqueness obligation).
        self.persist();
        self.send(
            from,
            Msg::Endorsement {
                serial,
                vote_code: code,
                signature: sig,
            },
        );
    }

    fn on_endorsement(&mut self, from: NodeId, serial: SerialNo, code: VoteCode, sig: Signature) {
        if from.kind != NodeKind::Vc {
            return;
        }
        let sender = from.index;
        let eid = self.init.params.election_id;
        let Some(vk) = self.init.vc_keys.get(sender as usize).copied() else {
            return;
        };
        {
            let Some(slot) = self.slots.get(&serial) else {
                return;
            };
            // Only relevant while we are responder for exactly this code.
            let Some((used_code, ..)) = slot.used else {
                return;
            };
            if used_code != code || slot.status != Status::NotVoted {
                return;
            }
            if slot.endorsements.iter().any(|(i, _)| *i == sender) {
                return;
            }
        }
        if !self.mverify.check(
            &vk,
            &endorsement_message(&eid, serial, &sha256(&code.0)),
            &sig,
        ) {
            return;
        }
        let Some(slot) = self.slots.get_mut(&serial) else {
            return;
        };
        slot.endorsements.push((sender, sig));
        self.endorsements_seen += 1;
        self.check_ucert_complete(serial);
    }

    /// Forms the UCERT once `Nv−fv` endorsements are in, then discloses our
    /// receipt share (VOTE_P).
    fn check_ucert_complete(&mut self, serial: SerialNo) {
        let quorum = self.quorum();
        let Some(slot) = self.slots.get_mut(&serial) else {
            return;
        };
        if slot.status != Status::NotVoted || slot.ucert.is_some() {
            return;
        }
        if slot.endorsements.len() < quorum {
            return;
        }
        // A responder slot always carries its code; one that lost it is
        // corrupt — refuse to certify rather than abort the replica.
        let Some((code, part, row)) = slot.used else {
            eprintln!(
                "vc-{}: corrupt slot {serial:?}: responder without code; dropping UCERT",
                self.init.node_index
            );
            return;
        };
        let ucert = Arc::new(UCert {
            serial,
            vote_code: code,
            sigs: slot.endorsements.clone(),
        });
        self.verified_ucerts.insert(ucert.key_digest());
        if let Some(slot) = self.slots.get_mut(&serial) {
            slot.ucert = Some(ucert.clone());
            slot.status = Status::Pending;
        }
        let ucert_rec = (*ucert).clone();
        self.jlog(move || VcRecord::Certified {
            serial,
            ucert: ucert_rec,
        });
        self.jlog(|| VcRecord::Pending { serial });
        self.disclose_share(serial, code, part, row, ucert);
    }

    /// Sends our VOTE_P (receipt share) for a ballot, marking it pending.
    fn disclose_share(
        &mut self,
        serial: SerialNo,
        code: VoteCode,
        part: PartId,
        row: usize,
        ucert: Arc<UCert>,
    ) {
        if self.behavior == VcBehavior::WithholdShares
            || self.adversary_fires(VcBehavior::WithholdShares, Some(serial))
        {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        let mut share = ballot.parts[part.index()][row].receipt_share;
        if self.behavior == VcBehavior::CorruptShares
            || self.adversary_fires(VcBehavior::CorruptShares, Some(serial))
        {
            share.share.value += ddemos_crypto::field::Scalar::ONE;
        }
        {
            let slot = self.slots.entry(serial).or_default();
            if slot.my_share_sent {
                return;
            }
            slot.my_share_sent = true;
        }
        self.jlog(|| VcRecord::ShareSent { serial });
        // The UCERT and share-sent marker must be durable before the
        // share is disclosed to peers.
        self.persist();
        self.multicast(Msg::VoteP {
            serial,
            vote_code: code,
            share,
            ucert,
        });
    }

    fn verify_ucert(&mut self, ucert: &UCert) -> bool {
        let digest = ucert.key_digest();
        if self.verified_ucerts.contains(&digest) {
            return true;
        }
        // Batched mirror of `UCert::verify`: verify every signature from
        // a known VC node in one MSM, then count distinct node indices
        // with at least one valid signature. Outcome-equivalent to the
        // scalar short-circuit loop — it reaches quorum iff that loop
        // does — but pays one MSM instead of `Nv−fv` ladders.
        let msg = endorsement_message(
            &self.init.params.election_id,
            ucert.serial,
            &sha256(&ucert.vote_code.0),
        );
        let mut idxs: Vec<usize> = Vec::with_capacity(ucert.sigs.len());
        let mut items: Vec<(VerifyingKey, Vec<u8>, Signature)> =
            Vec::with_capacity(ucert.sigs.len());
        for (idx, sig) in &ucert.sigs {
            let idx = *idx as usize;
            if let Some(vk) = self.init.vc_keys.get(idx) {
                idxs.push(idx);
                items.push((*vk, msg.clone(), *sig));
            }
        }
        let verdicts = self.mverify.check_batch(&items);
        let valid: BTreeSet<usize> = idxs
            .iter()
            .zip(&verdicts)
            .filter(|(_, &ok)| ok)
            .map(|(&i, _)| i)
            .collect();
        if valid.len() >= self.quorum() {
            self.verified_ucerts.insert(digest);
            true
        } else {
            false
        }
    }

    fn on_vote_p(
        &mut self,
        from: NodeId,
        serial: SerialNo,
        code: VoteCode,
        share: SignedShare,
        ucert: Arc<UCert>,
    ) {
        if from.kind != NodeKind::Vc || !self.in_voting_hours() {
            return;
        }
        if ucert.serial != serial || ucert.vote_code != code || !self.verify_ucert(&ucert) {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        let Some((part, row)) = ballot.find_code(&code) else {
            return;
        };
        // Verify the EA signature over the disclosed share.
        let ctx = receipt_share_context(&self.init.params.election_id, serial, part, row);
        if !self.mverify.check_share(&self.init.ea_key, &ctx, &share) {
            return;
        }
        let quorum = self.quorum();
        let mut became_pending = false;
        let mut certified_now = false;
        let mut store_share = false;
        {
            let slot = self.slots.entry(serial).or_default();
            match slot.status {
                Status::NotVoted => {
                    slot.status = Status::Pending;
                    slot.used = Some((code, part, row));
                    slot.ucert = Some(ucert.clone());
                    became_pending = true;
                }
                Status::Pending | Status::Voted => {
                    // An active slot must carry its code; a slot corrupted
                    // in recovery drops the message instead of panicking.
                    let Some((used_code, ..)) = slot.used else {
                        eprintln!(
                            "vc-{}: corrupt slot {serial:?}: active without code; dropping VOTE_P",
                            self.init.node_index
                        );
                        return;
                    };
                    if used_code != code {
                        // A valid UCERT for a different code cannot exist
                        // alongside ours (quorum intersection); drop.
                        return;
                    }
                    if slot.ucert.is_none() {
                        slot.ucert = Some(ucert.clone());
                        certified_now = true;
                    }
                }
            }
            if !slot
                .shares
                .iter()
                .any(|s| s.share.index == share.share.index)
            {
                slot.shares.push(share);
                store_share = true;
            }
        }
        if became_pending {
            let ucert_rec = (*ucert).clone();
            self.jlog(|| VcRecord::Used {
                serial,
                code,
                part,
                row: row as u32,
            });
            self.jlog(move || VcRecord::Certified {
                serial,
                ucert: ucert_rec,
            });
            self.jlog(|| VcRecord::Pending { serial });
        } else if certified_now {
            let ucert_rec = (*ucert).clone();
            self.jlog(move || VcRecord::Certified {
                serial,
                ucert: ucert_rec,
            });
        }
        if store_share {
            self.jlog(|| VcRecord::ShareStored { serial, share });
        }
        if became_pending {
            self.disclose_share(serial, code, part, row, ucert);
        }
        // Reconstruct once enough shares are in. The slot was touched
        // above; if it vanished the map is corrupt — drop the message.
        let Some(slot) = self.slots.get_mut(&serial) else {
            return;
        };
        if slot.status != Status::Voted && slot.shares.len() >= quorum {
            if let Ok(secret) = DealerVss::reconstruct(&slot.shares, quorum) {
                let receipt = secret.to_u64().unwrap_or(u64::MAX);
                slot.receipt = Some(receipt);
                slot.status = Status::Voted;
                let waiting = std::mem::take(&mut slot.waiting);
                self.jlog(|| VcRecord::Voted { serial, receipt });
                // The receipt must be durable before any client sees it:
                // re-issuing a *different* receipt after a crash is the
                // exact safety violation durability exists to prevent.
                self.persist();
                for (client, request_id, wanted) in waiting {
                    // Only waiters of the *winning* code get the receipt; a
                    // racing different-code request lost the uniqueness race.
                    let outcome = if wanted == code {
                        VoteOutcome::Receipt(receipt)
                    } else {
                        VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode)
                    };
                    self.reply(client, request_id, serial, outcome);
                }
            }
        }
    }

    // ----- vote-set consensus (§III-E end-of-election) ---------------------

    fn begin_announce(&mut self) {
        self.phase = Phase::Announce;
        self.announce_at_ms = self.now_ms;
        let entries: Vec<AnnounceEntry> = (0..self.store.num_ballots())
            .map(|s| {
                let serial = SerialNo(s);
                let vote = self.slots.get(&serial).and_then(|slot| {
                    let (code, ..) = slot.used?;
                    let ucert = slot.ucert.clone()?;
                    Some((code, ucert))
                });
                AnnounceEntry { serial, vote }
            })
            .collect();
        self.multicast(Msg::Announce {
            entries: Arc::new(entries),
        });
        // Serve the dispersals of peers whose polls closed before ours.
        let buffered = std::mem::take(&mut self.buffered_announces);
        for (from, entries) in buffered {
            self.on_announce(from, entries);
        }
    }

    fn on_announce(&mut self, from: NodeId, entries: Arc<Vec<AnnounceEntry>>) {
        if from.kind != NodeKind::Vc {
            return;
        }
        if self.phase == Phase::Voting {
            // ANNOUNCE is multicast exactly once per peer; a node whose
            // clock has not reached `Tend` yet must hold it, not drop it
            // (at most one buffered dispersal per sender).
            if !self.buffered_announces.iter().any(|(f, _)| *f == from) {
                self.buffered_announces.push((from, entries));
            }
            return;
        }
        if !self.announce_from.insert(from.index) {
            return;
        }
        for entry in entries.iter() {
            let Some((code, ucert)) = &entry.vote else {
                continue;
            };
            self.adopt_code(entry.serial, *code, ucert.clone());
        }
        if self.phase == Phase::Announce && self.announce_from.len() >= self.quorum() {
            self.begin_consensus();
        }
    }

    /// Adopts a (code, UCERT) learned from a peer for a ballot we had no
    /// certified code for.
    fn adopt_code(&mut self, serial: SerialNo, code: VoteCode, ucert: Arc<UCert>) {
        let known = self
            .slots
            .get(&serial)
            .map(|s| s.ucert.is_some())
            .unwrap_or(false);
        if known {
            return;
        }
        if ucert.serial != serial || ucert.vote_code != code || !self.verify_ucert(&ucert) {
            return;
        }
        let Some(ballot) = self.store.get(serial) else {
            return;
        };
        let Some((part, row)) = ballot.find_code(&code) else {
            return;
        };
        let slot = self.slots.entry(serial).or_default();
        slot.used = Some((code, part, row));
        slot.ucert = Some(ucert.clone());
        self.jlog(|| VcRecord::Used {
            serial,
            code,
            part,
            row: row as u32,
        });
        let ucert_rec = (*ucert).clone();
        self.jlog(move || VcRecord::Certified {
            serial,
            ucert: ucert_rec,
        });
    }

    fn begin_consensus(&mut self) {
        self.phase = Phase::Consensus;
        let invert = self.behavior == VcBehavior::ConsensusInverter
            || self.adversary_fires(VcBehavior::ConsensusInverter, None);
        let initial: Vec<bool> = (0..self.store.num_ballots())
            .map(|s| {
                let known = self
                    .slots
                    .get(&SerialNo(s))
                    .map(|slot| slot.ucert.is_some())
                    .unwrap_or(false);
                known != invert
            })
            .collect();
        let (bc, msgs) = BatchConsensus::new(
            self.init.params.num_vc,
            self.init.params.vc_faults(),
            self.init.node_index,
            initial,
            self.beacon,
        );
        self.consensus = Some(bc);
        for m in msgs {
            self.multicast(Msg::Consensus(m));
        }
        let buffered = std::mem::take(&mut self.buffered_consensus);
        for (from, cm) in buffered {
            self.feed_consensus(from, cm);
        }
    }

    fn on_consensus(&mut self, from: NodeId, cm: ConsensusMsg) {
        if from.kind != NodeKind::Vc {
            return;
        }
        if self.consensus.is_none() {
            self.buffered_consensus.push((from.index, cm));
            return;
        }
        self.feed_consensus(from.index, cm);
    }

    fn feed_consensus(&mut self, from: u32, cm: ConsensusMsg) {
        let Some(bc) = self.consensus.as_mut() else {
            return;
        };
        let outs = bc.handle(from, &cm);
        for m in outs {
            self.multicast(Msg::Consensus(m));
        }
        if self.decision.is_none() {
            if let Some(decision) = self.consensus.as_ref().and_then(|b| b.decision()) {
                self.decision = Some(decision);
                self.begin_recover();
            }
        }
    }

    fn begin_recover(&mut self) {
        self.phase = Phase::Recover;
        // Entering recovery without a decision would be a driver bug; a
        // replica drops into Done-less limbo rather than panicking.
        let Some(decision) = self.decision.clone() else {
            return;
        };
        let mut missing = Vec::new();
        for (i, voted) in decision.iter().enumerate() {
            if !voted {
                continue;
            }
            let serial = SerialNo(i as u64);
            let known = self
                .slots
                .get(&serial)
                .map(|s| s.ucert.is_some())
                .unwrap_or(false);
            if !known {
                missing.push(serial);
            }
        }
        for serial in missing {
            self.multicast(Msg::RecoverRequest { serial });
        }
        self.try_finalize();
    }

    fn on_recover_request(&mut self, from: NodeId, serial: SerialNo) {
        // A triggered inverter that has struck also refuses RECOVER
        // assistance (the static inverter's second half) — checked by
        // fire history, not `fires()`, so refusals don't consume budget.
        let triggered_inverter = self
            .adversary
            .as_ref()
            .is_some_and(|a| a.action() == VcBehavior::ConsensusInverter && a.times_fired() > 0);
        if from.kind != NodeKind::Vc
            || self.phase == Phase::Voting
            || self.behavior == VcBehavior::ConsensusInverter
            || triggered_inverter
        {
            return;
        }
        let Some(slot) = self.slots.get(&serial) else {
            return;
        };
        let (Some((code, ..)), Some(ucert)) = (slot.used, slot.ucert.clone()) else {
            return;
        };
        self.send(
            from,
            Msg::RecoverResponse {
                serial,
                vote_code: code,
                ucert,
            },
        );
    }

    fn on_recover_response(&mut self, serial: SerialNo, code: VoteCode, ucert: Arc<UCert>) {
        if self.phase != Phase::Recover {
            return;
        }
        self.adopt_code(serial, code, ucert);
        self.try_finalize();
    }

    fn try_finalize(&mut self) {
        if self.phase != Phase::Recover {
            return;
        }
        let Some(decision) = self.decision.as_ref() else {
            return;
        };
        let mut set = VoteSet::default();
        for (i, voted) in decision.iter().enumerate() {
            if !voted {
                continue;
            }
            let serial = SerialNo(i as u64);
            let Some(slot) = self.slots.get(&serial) else {
                return; // still waiting on RECOVER responses
            };
            match slot.used.map(|(c, ..)| c) {
                Some(code) if slot.ucert.is_some() => {
                    set.entries.insert(serial, code);
                }
                _ => return, // still waiting on RECOVER responses
            }
        }
        let digest = set.digest();
        let msg =
            ddemos_protocol::initdata::voteset_message(&self.init.params.election_id, &digest);
        let signature = self.init.signing_key.sign(&msg);
        self.finalized = true;
        self.jlog(|| VcRecord::Finalized);
        // Durable before delivery: a recovered node must not release a
        // second finalized set.
        self.persist();
        self.out(VcOutput::Deliver(FinalizedVoteSet {
            node_index: self.init.node_index,
            vote_set: set,
            signature,
            msk_share: self.init.msk_share,
            announce_at_ms: self.announce_at_ms,
            finalized_at_ms: self.now_ms,
        }));
        self.phase = Phase::Done;
    }
}
