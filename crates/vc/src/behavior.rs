//! Byzantine behaviour profiles for VC nodes.
//!
//! The threat model (§III-C) allows up to `fv < Nv/3` arbitrarily malicious
//! vote collectors. These profiles implement the concrete adversarial
//! strategies exercised by the security tests and the adversarial
//! benchmarks; `Honest` is the default.

/// How a VC node (mis)behaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VcBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Never reacts to anything (fail-stop from the start).
    Crashed,
    /// Follows the protocol, then fail-stops after handling this many VOTE
    /// messages.
    CrashAfterVotes(u64),
    /// Endorses every vote code it is asked about, ignoring the
    /// one-endorsement-per-ballot rule (attempts to enable double voting).
    EquivocalEndorser,
    /// Discloses corrupted receipt shares in VOTE_P (the EA signature check
    /// at honest receivers must reject them).
    CorruptShares,
    /// Participates in endorsement but never discloses receipt shares.
    WithholdShares,
    /// Enters vote-set consensus with inverted opinions and refuses
    /// RECOVER assistance.
    ConsensusInverter,
}

impl VcBehavior {
    /// True if the node should process no messages at all.
    pub fn is_crashed_at(&self, votes_handled: u64) -> bool {
        match self {
            VcBehavior::Crashed => true,
            VcBehavior::CrashAfterVotes(limit) => votes_handled >= *limit,
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------------
// State-triggered adversaries
// ---------------------------------------------------------------------------

/// What a [`TriggeredAdversary`]'s predicate gets to look at when an
/// adversarial action is possible: the protocol state the node has
/// actually observed, not the global schedule. This is what makes the
/// adversary *adaptive* — it reacts to the run, like a real attacker.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdversaryView {
    /// Verified endorsement signatures this node has observed so far
    /// (its own signatures included).
    pub endorsements_seen: u64,
    /// The ballot serial the pending action concerns, when there is one.
    pub serial: Option<u64>,
}

/// A predicate over observed protocol state (see [`AdversaryView`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Always satisfied (a static adversary expressed in trigger form).
    Always,
    /// Satisfied once the node has observed at least this many verified
    /// endorsement signatures — e.g. `AfterEndorsements(fv)` waits until
    /// the adversary has *seen* `fv` endorsements before striking.
    AfterEndorsements(u64),
    /// Satisfied only for ballot serials in this inclusive range (a
    /// targeted attack on a block of voters).
    SerialInRange(u64, u64),
}

impl Trigger {
    /// Whether the predicate holds for this observation.
    pub fn satisfied(&self, view: AdversaryView) -> bool {
        match *self {
            Trigger::Always => true,
            Trigger::AfterEndorsements(n) => view.endorsements_seen >= n,
            Trigger::SerialInRange(lo, hi) => view.serial.is_some_and(|s| s >= lo && s <= hi),
        }
    }
}

/// A state-triggered Byzantine profile: a [`VcBehavior`] action armed by
/// a [`Trigger`] predicate, with a fire budget.
///
/// Unlike the static behaviors above (which misbehave from the first
/// opportunity), a triggered adversary follows the protocol until its
/// predicate over *observed* state becomes true, then performs its
/// action at most `max_fires` times. The core consults it at the same
/// decision points where the static behaviors act, so a triggered
/// adversary can do nothing a static one could not — it only chooses
/// *when*, which is exactly the capability the paper's asynchronous
/// adversary has (§III-C: the adversary schedules message delivery and
/// corruption adaptively).
#[derive(Clone, Debug)]
pub struct TriggeredAdversary {
    action: VcBehavior,
    trigger: Trigger,
    max_fires: u64,
    fired: u64,
}

impl TriggeredAdversary {
    /// An adversary performing `action` whenever `trigger` is satisfied,
    /// at most `max_fires` times.
    pub fn new(action: VcBehavior, trigger: Trigger, max_fires: u64) -> TriggeredAdversary {
        TriggeredAdversary {
            action,
            trigger,
            max_fires,
            fired: 0,
        }
    }

    /// One-shot equivocation, armed only after the node has observed
    /// `n` verified endorsements (classically `n = fv`: strike once the
    /// honest quorum is believably close).
    pub fn equivocate_after_endorsements(n: u64) -> TriggeredAdversary {
        TriggeredAdversary::new(
            VcBehavior::EquivocalEndorser,
            Trigger::AfterEndorsements(n),
            1,
        )
    }

    /// Withholds receipt shares, but only for ballot serials in
    /// `lo..=hi` (every other voter is served honestly — the hardest
    /// kind of misbehavior to notice from aggregate statistics).
    pub fn withhold_shares_for_serials(lo: u64, hi: u64) -> TriggeredAdversary {
        TriggeredAdversary::new(
            VcBehavior::WithholdShares,
            Trigger::SerialInRange(lo, hi),
            u64::MAX,
        )
    }

    /// Discloses corrupted receipt shares for serials in `lo..=hi`.
    pub fn corrupt_shares_for_serials(lo: u64, hi: u64) -> TriggeredAdversary {
        TriggeredAdversary::new(
            VcBehavior::CorruptShares,
            Trigger::SerialInRange(lo, hi),
            u64::MAX,
        )
    }

    /// The action this adversary performs when it fires.
    pub fn action(&self) -> VcBehavior {
        self.action
    }

    /// How many times the predicate has fired (latched actions taken).
    pub fn times_fired(&self) -> u64 {
        self.fired
    }

    /// Checks whether this adversary performs `action` for the given
    /// observation, **latching** a fire (consuming budget) when it does.
    /// Call only at the point where the action would actually be taken —
    /// the fire count is the number of protocol violations committed,
    /// not the number of times the predicate was merely evaluated.
    pub fn fires(&mut self, action: VcBehavior, view: AdversaryView) -> bool {
        if self.action != action || self.fired >= self.max_fires {
            return false;
        }
        if !self.trigger.satisfied(view) {
            return false;
        }
        self.fired += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_equivocation_fires_exactly_once() {
        let mut adv = TriggeredAdversary::equivocate_after_endorsements(2);
        let before = AdversaryView {
            endorsements_seen: 1,
            serial: None,
        };
        let after = AdversaryView {
            endorsements_seen: 2,
            serial: None,
        };
        // Not armed yet: fewer endorsements observed than the threshold.
        assert!(!adv.fires(VcBehavior::EquivocalEndorser, before));
        assert_eq!(adv.times_fired(), 0);
        // Armed: fires once…
        assert!(adv.fires(VcBehavior::EquivocalEndorser, after));
        assert_eq!(adv.times_fired(), 1);
        // …and exactly once: the budget is spent.
        assert!(!adv.fires(VcBehavior::EquivocalEndorser, after));
        assert!(!adv.fires(VcBehavior::EquivocalEndorser, after));
        assert_eq!(adv.times_fired(), 1);
    }

    #[test]
    fn serial_range_trigger_is_targeted() {
        let mut adv = TriggeredAdversary::withhold_shares_for_serials(5, 7);
        let hit = |s| AdversaryView {
            endorsements_seen: 0,
            serial: Some(s),
        };
        assert!(!adv.fires(VcBehavior::WithholdShares, hit(4)));
        assert!(adv.fires(VcBehavior::WithholdShares, hit(5)));
        assert!(adv.fires(VcBehavior::WithholdShares, hit(7)));
        assert!(!adv.fires(VcBehavior::WithholdShares, hit(8)));
        // A different action never matches this adversary.
        assert!(!adv.fires(VcBehavior::CorruptShares, hit(6)));
        assert_eq!(adv.times_fired(), 2);
    }
}
