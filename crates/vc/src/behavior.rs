//! Byzantine behaviour profiles for VC nodes.
//!
//! The threat model (§III-C) allows up to `fv < Nv/3` arbitrarily malicious
//! vote collectors. These profiles implement the concrete adversarial
//! strategies exercised by the security tests and the adversarial
//! benchmarks; `Honest` is the default.

/// How a VC node (mis)behaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VcBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Never reacts to anything (fail-stop from the start).
    Crashed,
    /// Follows the protocol, then fail-stops after handling this many VOTE
    /// messages.
    CrashAfterVotes(u64),
    /// Endorses every vote code it is asked about, ignoring the
    /// one-endorsement-per-ballot rule (attempts to enable double voting).
    EquivocalEndorser,
    /// Discloses corrupted receipt shares in VOTE_P (the EA signature check
    /// at honest receivers must reject them).
    CorruptShares,
    /// Participates in endorsement but never discloses receipt shares.
    WithholdShares,
    /// Enters vote-set consensus with inverted opinions and refuses
    /// RECOVER assistance.
    ConsensusInverter,
}

impl VcBehavior {
    /// True if the node should process no messages at all.
    pub fn is_crashed_at(&self, votes_handled: u64) -> bool {
        match self {
            VcBehavior::Crashed => true,
            VcBehavior::CrashAfterVotes(limit) => votes_handled >= *limit,
            _ => false,
        }
    }
}
