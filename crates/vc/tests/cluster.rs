//! Focused VC-cluster tests: Algorithm 1's guarantees at the subsystem
//! level (UCERT uniqueness under racing codes, receipt reconstruction,
//! vote-set consensus with faults, RECOVER back-fill).

use crossbeam_channel::unbounded;
use ddemos_ea::ElectionAuthority;
use ddemos_net::{NetworkProfile, SimNet};
use ddemos_protocol::ballot::Ballot;
use ddemos_protocol::clock::GlobalClock;
use ddemos_protocol::messages::{Msg, VoteOutcome};
use ddemos_protocol::{ElectionParams, NodeId, SerialNo};
use ddemos_vc::{FinalizedVoteSet, MemoryStore, VcBehavior, VcHandle, VcNode, VcNodeConfig};
use std::collections::HashMap;
use std::time::Duration;

struct Cluster {
    net: SimNet,
    handles: Vec<VcHandle>,
    ballots: Vec<Ballot>,
    result_rx: crossbeam_channel::Receiver<FinalizedVoteSet>,
    params: ElectionParams,
}

fn start_cluster(
    num_vc: usize,
    num_ballots: u64,
    behaviors: &[VcBehavior],
    profile: NetworkProfile,
) -> Cluster {
    let params =
        ElectionParams::new("vc-cluster", num_ballots, 2, num_vc, 1, 1, 1, 0, 3_600_000)
            .unwrap();
    let ea = ElectionAuthority::new(params.clone(), 77);
    let ballots: Vec<Ballot> =
        (0..num_ballots).map(|s| ea.voter_ballot(SerialNo(s))).collect();
    let net = SimNet::new(profile, 77);
    let clock = GlobalClock::new();
    let (result_tx, result_rx) = unbounded();
    let mut keys = ea.setup_keys_only();
    let mut handles = Vec::new();
    for node in 0..num_vc as u32 {
        let map: HashMap<SerialNo, _> = (0..num_ballots)
            .map(|s| (SerialNo(s), ea.vc_ballot(SerialNo(s), node)))
            .collect();
        let endpoint = net.register(NodeId::vc(node));
        let behavior = behaviors.get(node as usize).copied().unwrap_or_default();
        handles.push(VcNode::spawn(
            keys.vc_inits[node as usize].clone(),
            MemoryStore::new(map, num_ballots),
            endpoint,
            clock.node_clock(0),
            keys.consensus_beacon,
            VcNodeConfig { behavior, ..VcNodeConfig::default() },
            result_tx.clone(),
        ));
    }
    keys.vc_inits.clear();
    Cluster { net, handles, ballots, result_rx, params }
}

fn raw_vote(
    cluster: &Cluster,
    client: u32,
    to_vc: u32,
    serial: SerialNo,
    code: ddemos_crypto::votecode::VoteCode,
) -> Option<VoteOutcome> {
    let endpoint = cluster.net.register(NodeId::client(client));
    endpoint.send(NodeId::vc(to_vc), Msg::Vote { request_id: u64::from(client), serial, vote_code: code });
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while std::time::Instant::now() < deadline {
        let Ok(env) = endpoint.recv_timeout(Duration::from_millis(100)) else { continue };
        if let Msg::VoteReply { request_id, outcome, .. } = env.msg {
            if request_id == u64::from(client) {
                return Some(outcome);
            }
        }
    }
    None
}

#[test]
fn racing_codes_on_one_ballot_yield_at_most_one_recorded_code() {
    // Two clients race *different* codes of the same ballot at different
    // responders. UCERT uniqueness (quorum intersection) guarantees at
    // most one wins; the other is rejected or starves.
    let cluster = start_cluster(4, 1, &[], NetworkProfile::lan());
    let ballot = cluster.ballots[0].clone();
    let code_a = ballot.parts[0].lines[0].vote_code;
    let code_b = ballot.parts[1].lines[1].vote_code;
    let (r1, r2) = std::thread::scope(|s| {
        let c = &cluster;
        let h1 = s.spawn(move || raw_vote(c, 1, 0, SerialNo(0), code_a));
        let h2 = s.spawn(move || raw_vote(c, 2, 1, SerialNo(0), code_b));
        (h1.join().unwrap(), h2.join().unwrap())
    });
    let receipts = [r1, r2]
        .iter()
        .filter(|r| matches!(r, Some(VoteOutcome::Receipt(_))))
        .count();
    assert!(receipts <= 1, "two different codes must never both be recorded");
    // Finish: close polls, check the vote set has at most one entry.
    for h in &cluster.handles {
        h.close_polls();
    }
    let quorum = cluster.params.vc_quorum();
    let mut sets = Vec::new();
    for _ in 0..quorum {
        sets.push(cluster.result_rx.recv_timeout(Duration::from_secs(30)).expect("vote set"));
    }
    for f in &sets {
        assert!(f.vote_set.len() <= 1);
        assert_eq!(f.vote_set.digest(), sets[0].vote_set.digest(), "agreement");
    }
    cluster.net.shutdown();
}

#[test]
fn vote_set_consensus_agrees_with_a_crashed_node() {
    let behaviors = [VcBehavior::Crashed];
    let cluster = start_cluster(4, 3, &behaviors, NetworkProfile::lan());
    // Cast two of three ballots through honest nodes.
    for (i, serial) in [0u64, 1].iter().enumerate() {
        let ballot = &cluster.ballots[*serial as usize];
        let code = ballot.parts[0].lines[0].vote_code;
        let outcome = raw_vote(&cluster, 10 + i as u32, 1 + i as u32, SerialNo(*serial), code);
        assert!(matches!(outcome, Some(VoteOutcome::Receipt(_))), "{outcome:?}");
    }
    for h in &cluster.handles {
        h.close_polls();
    }
    let mut sets = Vec::new();
    for _ in 0..3 {
        sets.push(cluster.result_rx.recv_timeout(Duration::from_secs(30)).expect("vote set"));
    }
    for f in &sets {
        assert_eq!(f.vote_set.len(), 2, "both receipts honoured");
        assert_eq!(f.vote_set.digest(), sets[0].vote_set.digest());
    }
    cluster.net.shutdown();
}

#[test]
fn invalid_code_rejected_and_unknown_serial_rejected() {
    let cluster = start_cluster(4, 1, &[], NetworkProfile::lan());
    let bogus = ddemos_crypto::votecode::VoteCode([0xEE; 20]);
    match raw_vote(&cluster, 1, 0, SerialNo(0), bogus) {
        Some(VoteOutcome::Rejected(
            ddemos_protocol::messages::RejectReason::InvalidVoteCode,
        )) => {}
        other => panic!("expected InvalidVoteCode, got {other:?}"),
    }
    match raw_vote(&cluster, 2, 0, SerialNo(99), bogus) {
        Some(VoteOutcome::Rejected(ddemos_protocol::messages::RejectReason::UnknownSerial)) => {}
        other => panic!("expected UnknownSerial, got {other:?}"),
    }
    cluster.net.shutdown();
}

#[test]
fn receipt_under_wan_latency() {
    let cluster = start_cluster(4, 1, &[], NetworkProfile::wan());
    let ballot = cluster.ballots[0].clone();
    let code = ballot.parts[1].lines[0].vote_code;
    let t0 = std::time::Instant::now();
    let outcome = raw_vote(&cluster, 1, 2, SerialNo(0), code);
    let elapsed = t0.elapsed();
    let Some(VoteOutcome::Receipt(r)) = outcome else { panic!("no receipt: {outcome:?}") };
    assert_eq!(r, ballot.parts[1].lines[0].receipt);
    // At least 3 one-way 25ms hops (endorse round + share round).
    assert!(elapsed >= Duration::from_millis(75), "{elapsed:?}");
    cluster.net.shutdown();
}

#[test]
fn sixteen_node_cluster_collects_votes() {
    let cluster = start_cluster(16, 2, &[], NetworkProfile::lan());
    for serial in 0..2u64 {
        let ballot = &cluster.ballots[serial as usize];
        let code = ballot.parts[0].lines[1].vote_code;
        let outcome = raw_vote(&cluster, serial as u32 + 1, (serial % 16) as u32, SerialNo(serial), code);
        assert!(matches!(outcome, Some(VoteOutcome::Receipt(_))), "{outcome:?}");
    }
    cluster.net.shutdown();
}
