//! A Bulletin Board node (§III-G): the [`BbCore`] state machine behind a
//! lock and an optional durable journal.
//!
//! BB nodes are deliberately simple: isolated repositories that never talk
//! to each other. Reads are public; writes are authenticated and verified —
//! vote sets against the `fv+1` identical-copy threshold, `msk` shares
//! against the EA's signatures and `H_msk`, trustee posts against trustee
//! keys, EA opening-bundle signatures, and reconstruct-then-verify for the
//! distributed ZK responses and the tally opening. The robustness of the
//! subsystem comes entirely from this write-side verification plus
//! read-side majority (see [`crate::reader`]).
//!
//! All of that verification lives in the sans-I/O [`crate::core`] module;
//! this wrapper executes the core's outputs: journal appends + commits
//! before the reply is released, so an acknowledged write is durable.
//! The same core also serves multi-process deployments, where
//! `ddemos_harness::tcp` drives a `BbNode` from `Msg::BbWrite` /
//! `Msg::BbReadRequest` envelopes ([`BbNode::handle_write`]).

use crate::core::{BbCore, BbInput, BbOutput, BbRecord, BbSnapshot, WriteError};
use ddemos_crypto::schnorr::Signature;
use ddemos_crypto::vss::SignedShare;
use ddemos_obs::Recorder;
use ddemos_protocol::initdata::BbInit;
use ddemos_protocol::messages::{BbWriteMsg, BbWriteOutcome};
use ddemos_protocol::posts::{TrusteePost, VoteSet};
use ddemos_protocol::wire::{Reader, WireError, Writer};
use ddemos_storage::{Durable, DynJournal, RecoveryStats, StorageError};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One Bulletin Board node.
pub struct BbNode {
    /// Retained outside the lock so [`BbNode::init_data`] can hand out a
    /// reference (the heavy ballot payload is shared by `Arc`).
    init: BbInit,
    core: RwLock<BbCore>,
    /// Durable journal (`None` = volatile node). Every accepted write is
    /// logged; [`BbNode::recover_amnesia`] rebuilds the node by replaying
    /// the log through the same verified write path.
    journal: Mutex<Option<DynJournal>>,
    /// Journal device reported full: the replica is read-only and
    /// refuses writes with [`WriteError::ReadOnly`] instead of
    /// acknowledging them non-durably. Reads keep serving everything
    /// already accepted.
    degraded: AtomicBool,
    /// Byzantine divergence trigger: once the replica has accepted a
    /// finalized vote set, its *reads* deny it ever did (serving a
    /// pre-finalization snapshot). The read-side `fb+1` majority must
    /// outvote such a replica.
    diverge_after_finalized: AtomicBool,
    /// Metrics recorder (disabled by default): per-write-kind step
    /// latency and counts, journal timing included.
    recorder: Mutex<Recorder>,
}

impl BbNode {
    /// Creates a node from its initialization data (which it publishes
    /// immediately, per §III-D).
    pub fn new(init: BbInit) -> BbNode {
        BbNode {
            core: RwLock::new(BbCore::new(init.clone())),
            init,
            journal: Mutex::new(None),
            degraded: AtomicBool::new(false),
            diverge_after_finalized: AtomicBool::new(false),
            recorder: Mutex::new(Recorder::disabled()),
        }
    }

    /// Attaches a metrics recorder; every accepted or rejected write is
    /// charged to `bb.step_ns` under its input kind.
    pub fn set_recorder(&self, recorder: Recorder) {
        *self.recorder.lock() = recorder;
    }

    /// Attaches a durable journal: every accepted write is logged and
    /// committed, and [`BbNode::recover_amnesia`] can rebuild the node
    /// after a power cycle. A journal already holding state is replayed
    /// immediately.
    ///
    /// # Errors
    /// [`StorageError`] when the existing journal fails to replay.
    pub fn attach_journal(&self, mut journal: DynJournal) -> Result<RecoveryStats, StorageError> {
        let stats = journal.recover(&mut BbReplica(self))?;
        *self.journal.lock() = Some(journal);
        Ok(stats)
    }

    /// Whether a journal is attached.
    pub fn is_durable(&self) -> bool {
        self.journal.lock().is_some()
    }

    /// The published initialization data (public).
    pub fn init_data(&self) -> &BbInit {
        &self.init
    }

    /// Whether the replica is in read-only degraded mode (journal
    /// device full).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Arms the state-triggered Byzantine divergence: after the first
    /// finalized vote set is accepted, this replica's reads pretend the
    /// finalization never happened. Until that trigger state is reached
    /// the replica is indistinguishable from an honest one — the
    /// adaptive-adversary shape the campaign fuzzer exercises against
    /// [`crate::MajorityReader`].
    pub fn set_diverge_after_finalized(&self, diverge: bool) {
        self.diverge_after_finalized
            .store(diverge, Ordering::Release);
    }

    /// Public read: the node's current snapshot.
    pub fn read(&self) -> BbSnapshot {
        let snapshot = self.core.read().snapshot().clone();
        if self.diverge_after_finalized.load(Ordering::Acquire) && snapshot.vote_set.is_some() {
            // The armed divergence: deny the finalized state, serving
            // the empty pre-election snapshot. Every diverging reply is
            // identical, so the lie is as self-consistent as a Byzantine
            // replica can make it.
            return BbSnapshot::default();
        }
        snapshot
    }

    /// Power-cycles the node: all volatile state is dropped (unsynced
    /// journal bytes included) and the accepted-write history is replayed
    /// from snapshot + WAL through the same verified write path, so the
    /// rebuilt state is exactly what the writes produce. Without a
    /// journal this is a plain amnesia crash: the node comes back empty,
    /// and the read-side `fb+1` majority carries the subsystem.
    pub fn recover_amnesia(&self) {
        // A restart re-probes the device: if it is still full, the first
        // journaled write re-enters degraded mode.
        self.degraded.store(false, Ordering::Release);
        *self.core.write() = BbCore::new(self.init.clone());
        let mut guard = self.journal.lock();
        if let Some(journal) = guard.as_mut() {
            if let Err(e) = journal.crash(0) {
                eprintln!("bb: journal crash simulation failed ({e})");
            }
            if let Err(e) = journal.recover(&mut BbReplica(self)) {
                // The WAL truncated itself at the offending record; the
                // replica continues from the applied clean prefix.
                eprintln!("bb: journal replay stopped early ({e}); recovered the clean prefix");
            }
        }
    }

    /// Runs one write through the core and executes its outputs: journal
    /// append + commit (+ snapshot cadence) before the reply is released.
    fn submit(&self, input: BbInput) -> Result<(), WriteError> {
        if self.degraded.load(Ordering::Acquire) {
            return Err(WriteError::ReadOnly);
        }
        let recorder = self.recorder.lock().clone();
        let kind = input.kind();
        let start = recorder.now_ns();
        let outputs = self.core.write().step(input);
        let mut outcome = Ok(());
        for output in outputs {
            match output {
                BbOutput::Journal(bytes) => {
                    let mut guard = self.journal.lock();
                    if let Some(journal) = guard.as_mut() {
                        let append = journal.append(&bytes).and_then(|()| {
                            journal.commit()?;
                            journal.maybe_compact(&BbReplica(self))?;
                            Ok(())
                        });
                        if let Err(e) = append {
                            if e.is_disk_full() {
                                // Nothing was written (the WAL frame
                                // counter did not advance). Refuse the
                                // write instead of acknowledging it
                                // non-durably, and stay read-only: the
                                // journal on disk is intact for replay.
                                eprintln!(
                                    "bb: journal device full; entering read-only degraded mode"
                                );
                                self.degraded.store(true, Ordering::Release);
                                return Err(WriteError::ReadOnly);
                            }
                            eprintln!("bb: journal write failed ({e}); continuing volatile");
                        }
                    }
                }
                // Commits are folded into the append above (BB writes are
                // rare and each one is an externally visible acceptance).
                BbOutput::Commit => {}
                BbOutput::Reply(result) => outcome = result,
            }
        }
        recorder.add("bb.step_writes", kind, 1);
        recorder.observe_since("bb.step_ns", kind, start);
        outcome
    }

    /// A VC node submits its final vote set (authenticated write).
    ///
    /// # Errors
    /// Rejects unknown writers and bad signatures; accepts duplicates
    /// idempotently.
    pub fn submit_vote_set(
        &self,
        from_vc: u32,
        set: &VoteSet,
        sig: &Signature,
    ) -> Result<(), WriteError> {
        self.submit(BbInput::VoteSet {
            from_vc,
            set: set.clone(),
            sig: *sig,
        })
    }

    /// A VC node submits its `msk` share (authenticated by the EA's
    /// signature on the share itself).
    ///
    /// # Errors
    /// Rejects shares whose EA signature fails.
    pub fn submit_msk_share(&self, share: &SignedShare) -> Result<(), WriteError> {
        self.submit(BbInput::MskShare { share: *share })
    }

    /// A trustee submits its post (authenticated write).
    ///
    /// # Errors
    /// Rejects unknown trustees, bad signatures, and posts whose EA-signed
    /// opening bundles fail verification.
    pub fn submit_trustee_post(
        &self,
        post: Arc<TrusteePost>,
        sig: &Signature,
    ) -> Result<(), WriteError> {
        self.submit(BbInput::TrusteePost { post, sig: *sig })
    }

    /// Handles one relayed write envelope (the multi-process replica
    /// loop), returning the wire outcome code.
    pub fn handle_write(&self, write: BbWriteMsg) -> BbWriteOutcome {
        crate::core::result_to_outcome(self.submit(BbInput::from(write)))
    }
}

/// [`Durable`] adapter for a [`BbNode`]: the durable state *is* the
/// accepted-write history, retained in exact acceptance order. A
/// snapshot re-encodes that history verbatim, and both snapshot restore
/// and WAL replay re-apply the writes through the same verified write
/// path — same order, same quorum crossings, same phase gates — so the
/// rebuilt node is byte-identical to one that never crashed.
struct BbReplica<'a>(&'a BbNode);

impl Durable for BbReplica<'_> {
    fn encode_snapshot(&self, w: &mut Writer) {
        self.0.core.read().encode_history(w);
    }

    fn restore_snapshot(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let _tag = r.get_bytes()?; // writer domain tag
        let n = r.get_u64()?;
        let mut core = self.0.core.write();
        for _ in 0..n {
            let record = BbRecord::decode(r)?;
            core.replay(record);
        }
        Ok(())
    }

    fn apply_record(&mut self, record: &[u8]) -> Result<(), WireError> {
        let record = BbRecord::decode(&mut Reader::new(record))?;
        self.0.core.write().replay(record);
        Ok(())
    }
}
