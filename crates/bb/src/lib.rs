//! # ddemos-bb
//!
//! The replicated Bulletin Board subsystem (§III-G): `Nb ≥ 2fb+1` isolated
//! nodes that publish election data and verify every authenticated write —
//! vote sets (`fv+1` identical copies), EA-signed `msk` shares checked
//! against `H_msk`, and trustee posts (openings, distributed ZK final
//! moves, tally-opening shares), culminating in the published result.
//! Readers use [`reader::MajorityReader`], the library form of the paper's
//! majority-comparing browser extension (§V).

#![warn(missing_docs)]

pub mod node;
pub mod reader;

pub use node::{trustee_post_digest, BbNode, BbSnapshot, WriteError};
pub use reader::MajorityReader;
