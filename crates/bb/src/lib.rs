//! # ddemos-bb
//!
//! The replicated Bulletin Board subsystem (§III-G): `Nb ≥ 2fb+1` isolated
//! nodes that publish election data and verify every authenticated write —
//! vote sets (`fv+1` identical copies), EA-signed `msk` shares checked
//! against `H_msk`, and trustee posts (openings, distributed ZK final
//! moves, tally-opening shares), culminating in the published result.
//! Readers use [`reader::MajorityReader`], the library form of the paper's
//! majority-comparing browser extension (§V).
//!
//! The write-verification state machine itself is the sans-I/O
//! [`core::BbCore`] (`step(input) -> Vec<output>`, same shape as
//! `ddemos_vc`'s `VcCore`); [`node::BbNode`] wraps it with a lock and an
//! optional durable journal, and [`codec`] gives snapshots a canonical
//! wire form for remote readers.

#![warn(missing_docs)]

pub mod codec;
pub mod core;
pub mod node;
pub mod reader;

pub use core::{trustee_post_digest, BbCore, BbInput, BbOutput, BbSnapshot, WriteError};
pub use node::BbNode;
pub use reader::{BbApi, MajorityReader};
