//! Majority reader over the replicated Bulletin Board.
//!
//! The paper ships a Firefox extension that issues every read to all BB
//! nodes, compares the responses in binary form, and forwards the one a
//! majority agrees on (§V "Web browser replicated service reader"). This is
//! that component's library equivalent: readers never see a minority
//! answer, and divergent nodes are simply outvoted.
//!
//! The reader is replica-location agnostic: it speaks [`BbApi`], which a
//! local [`BbNode`] implements directly and a remote TCP client
//! (`ddemos_harness::tcp`) implements by request/response envelopes — an
//! unreachable replica answers `None`/`Unavailable` and is outvoted like
//! any other divergent node.

use crate::core::WriteError;
use crate::node::BbNode;
use crate::BbSnapshot;
use ddemos_crypto::schnorr::Signature;
use ddemos_crypto::vss::SignedShare;
use ddemos_protocol::clock::GlobalClock;
use ddemos_protocol::posts::{ElectionResult, TrusteePost, VoteSet};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How long [`MajorityReader::read_until`] pauses between retries.
const RETRY_INTERVAL: std::time::Duration = std::time::Duration::from_millis(2);

/// One Bulletin Board replica, wherever it lives: in-process
/// ([`BbNode`]) or across a transport. Reads return `None` when the
/// replica is unreachable; writes report [`WriteError::Unavailable`].
pub trait BbApi: Send + Sync {
    /// Public read of the replica's snapshot.
    fn read(&self) -> Option<BbSnapshot>;

    /// Submits a VC node's final vote set.
    ///
    /// # Errors
    /// See [`WriteError`].
    fn submit_vote_set(
        &self,
        from_vc: u32,
        set: &VoteSet,
        sig: &Signature,
    ) -> Result<(), WriteError>;

    /// Submits a VC node's `msk` share.
    ///
    /// # Errors
    /// See [`WriteError`].
    fn submit_msk_share(&self, share: &SignedShare) -> Result<(), WriteError>;

    /// Submits a trustee post.
    ///
    /// # Errors
    /// See [`WriteError`].
    fn submit_trustee_post(
        &self,
        post: Arc<TrusteePost>,
        sig: &Signature,
    ) -> Result<(), WriteError>;
}

impl BbApi for BbNode {
    fn read(&self) -> Option<BbSnapshot> {
        Some(BbNode::read(self))
    }

    fn submit_vote_set(
        &self,
        from_vc: u32,
        set: &VoteSet,
        sig: &Signature,
    ) -> Result<(), WriteError> {
        BbNode::submit_vote_set(self, from_vc, set, sig)
    }

    fn submit_msk_share(&self, share: &SignedShare) -> Result<(), WriteError> {
        BbNode::submit_msk_share(self, share)
    }

    fn submit_trustee_post(
        &self,
        post: Arc<TrusteePost>,
        sig: &Signature,
    ) -> Result<(), WriteError> {
        BbNode::submit_trustee_post(self, post, sig)
    }
}

/// A read client holding the URLs (here: handles) of all BB nodes.
#[derive(Clone)]
pub struct MajorityReader {
    nodes: Vec<Arc<dyn BbApi>>,
    clock: GlobalClock,
}

impl MajorityReader {
    /// Creates a reader over in-process replicas (retries paced by a
    /// real-time clock).
    pub fn new(nodes: Vec<Arc<BbNode>>) -> MajorityReader {
        Self::over(
            nodes
                .into_iter()
                .map(|node| node as Arc<dyn BbApi>)
                .collect(),
        )
    }

    /// Creates a reader over any mix of replica clients (the
    /// multi-process coordinator hands in TCP clients here).
    pub fn over(nodes: Vec<Arc<dyn BbApi>>) -> MajorityReader {
        MajorityReader {
            nodes,
            clock: GlobalClock::new(),
        }
    }

    /// Paces retry waits (and the retry timeout) by `clock` instead of
    /// wall time — under a virtual clock, polling costs no wall time and
    /// the timeout is measured in virtual milliseconds.
    #[must_use]
    pub fn with_clock(mut self, clock: GlobalClock) -> MajorityReader {
        self.clock = clock;
        self
    }

    /// The number of identical replies a read requires (`fb + 1`, with
    /// `fb = ⌊(Nb−1)/2⌋`).
    pub fn required_majority(&self) -> usize {
        (self.nodes.len() - 1) / 2 + 1
    }

    /// Reads all nodes and returns the snapshot backed by a majority, if
    /// one exists (readers retry on transient divergence, per §III-G).
    /// Unreachable replicas count as divergent.
    pub fn read_snapshot(&self) -> Option<BbSnapshot> {
        let mut counts: BTreeMap<[u8; 32], (usize, BbSnapshot)> = BTreeMap::new();
        for node in &self.nodes {
            let Some(snap) = node.read() else {
                continue;
            };
            let entry = counts.entry(snap.digest()).or_insert((0, snap));
            entry.0 += 1;
        }
        counts
            .into_values()
            .find(|(count, _)| *count >= self.required_majority())
            .map(|(_, snap)| snap)
    }

    /// Reads with retries until a majority-backed snapshot satisfying
    /// `pred` appears or `timeout` elapses (both measured on the reader's
    /// clock: wall time by default, virtual time under
    /// [`MajorityReader::with_clock`]).
    pub fn read_until<F>(&self, timeout: std::time::Duration, pred: F) -> Option<BbSnapshot>
    where
        F: Fn(&BbSnapshot) -> bool,
    {
        let start_ns = self.clock.now_ns();
        let timeout_ns = timeout.as_nanos() as u64;
        loop {
            if let Some(snap) = self.read_snapshot() {
                if pred(&snap) {
                    return Some(snap);
                }
            }
            if self.clock.now_ns().saturating_sub(start_ns) > timeout_ns {
                return None;
            }
            self.clock.sleep(RETRY_INTERVAL);
        }
    }

    /// Majority-read of the final vote set.
    pub fn vote_set(&self) -> Option<VoteSet> {
        self.read_snapshot()?.vote_set
    }

    /// Majority-read of the published result.
    pub fn result(&self) -> Option<ElectionResult> {
        self.read_snapshot()?.result
    }

    /// The underlying replica clients (for writers that must contact
    /// every node).
    pub fn nodes(&self) -> &[Arc<dyn BbApi>] {
        &self.nodes
    }
}
