//! Majority reader over the replicated Bulletin Board.
//!
//! The paper ships a Firefox extension that issues every read to all BB
//! nodes, compares the responses in binary form, and forwards the one a
//! majority agrees on (§V "Web browser replicated service reader"). This is
//! that component's library equivalent: readers never see a minority
//! answer, and divergent nodes are simply outvoted.

use crate::node::{BbNode, BbSnapshot};
use ddemos_protocol::clock::GlobalClock;
use ddemos_protocol::posts::{ElectionResult, VoteSet};
use std::collections::HashMap;
use std::sync::Arc;

/// How long [`MajorityReader::read_until`] pauses between retries.
const RETRY_INTERVAL: std::time::Duration = std::time::Duration::from_millis(2);

/// A read client holding the URLs (here: handles) of all BB nodes.
#[derive(Clone)]
pub struct MajorityReader {
    nodes: Vec<Arc<BbNode>>,
    clock: GlobalClock,
}

impl MajorityReader {
    /// Creates a reader over the given replicas (retries paced by a
    /// real-time clock).
    pub fn new(nodes: Vec<Arc<BbNode>>) -> MajorityReader {
        MajorityReader {
            nodes,
            clock: GlobalClock::new(),
        }
    }

    /// Paces retry waits (and the retry timeout) by `clock` instead of
    /// wall time — under a virtual clock, polling costs no wall time and
    /// the timeout is measured in virtual milliseconds.
    #[must_use]
    pub fn with_clock(mut self, clock: GlobalClock) -> MajorityReader {
        self.clock = clock;
        self
    }

    /// The number of identical replies a read requires (`fb + 1`, with
    /// `fb = ⌊(Nb−1)/2⌋`).
    pub fn required_majority(&self) -> usize {
        (self.nodes.len() - 1) / 2 + 1
    }

    /// Reads all nodes and returns the snapshot backed by a majority, if
    /// one exists (readers retry on transient divergence, per §III-G).
    pub fn read_snapshot(&self) -> Option<BbSnapshot> {
        let mut counts: HashMap<[u8; 32], (usize, BbSnapshot)> = HashMap::new();
        for node in &self.nodes {
            let snap = node.read();
            let entry = counts.entry(snap.digest()).or_insert((0, snap));
            entry.0 += 1;
        }
        counts
            .into_values()
            .find(|(count, _)| *count >= self.required_majority())
            .map(|(_, snap)| snap)
    }

    /// Reads with retries until a majority-backed snapshot satisfying
    /// `pred` appears or `timeout` elapses (both measured on the reader's
    /// clock: wall time by default, virtual time under
    /// [`MajorityReader::with_clock`]).
    pub fn read_until<F>(&self, timeout: std::time::Duration, pred: F) -> Option<BbSnapshot>
    where
        F: Fn(&BbSnapshot) -> bool,
    {
        let start_ns = self.clock.now_ns();
        let timeout_ns = timeout.as_nanos() as u64;
        loop {
            if let Some(snap) = self.read_snapshot() {
                if pred(&snap) {
                    return Some(snap);
                }
            }
            if self.clock.now_ns().saturating_sub(start_ns) > timeout_ns {
                return None;
            }
            self.clock.sleep(RETRY_INTERVAL);
        }
    }

    /// Majority-read of the final vote set.
    pub fn vote_set(&self) -> Option<VoteSet> {
        self.read_snapshot()?.vote_set
    }

    /// Majority-read of the published result.
    pub fn result(&self) -> Option<ElectionResult> {
        self.read_snapshot()?.result
    }

    /// The underlying replicas (for writers that must contact every node).
    pub fn nodes(&self) -> &[Arc<BbNode>] {
        &self.nodes
    }
}
