//! Canonical codec for [`BbSnapshot`] — the payload of a
//! `Msg::BbReadResponse`, so remote readers (the multi-process
//! coordinator's majority reader) receive exactly what a local
//! [`crate::BbNode::read`] returns.
//!
//! Encoding is canonical: the maps are `BTreeMap`s, so two replicas with
//! identical state produce identical bytes and the majority comparison
//! can run on decoded snapshots' digests exactly as it does in process.

use crate::core::{BbSnapshot, RowOpenings, RowZkResponses};
use ddemos_crypto::field::Scalar;
use ddemos_crypto::zkp::OrResponse;
use ddemos_protocol::codec::{
    get_scalar, get_vote_code, get_vote_set, put_scalar, put_vote_code, put_vote_set,
};
use ddemos_protocol::posts::ElectionResult;
use ddemos_protocol::wire::{Reader, WireError, Writer};
use ddemos_protocol::SerialNo;

/// Sanity bound on decoded vector lengths (mirrors the protocol codec).
const MAX_VEC: u32 = 1 << 24;

fn get_len(r: &mut Reader<'_>) -> Result<usize, WireError> {
    let len = r.get_u32()?;
    if len > MAX_VEC {
        return Err(WireError::BadLength);
    }
    Ok(len as usize)
}

fn put_scalar_pairs(w: &mut Writer, pairs: &[(Scalar, Scalar)]) {
    w.put_u32(pairs.len() as u32);
    for (a, b) in pairs {
        put_scalar(w, a);
        put_scalar(w, b);
    }
}

fn get_scalar_pairs(r: &mut Reader<'_>) -> Result<Vec<(Scalar, Scalar)>, WireError> {
    let n = get_len(r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((get_scalar(r)?, get_scalar(r)?));
    }
    Ok(out)
}

fn put_key(w: &mut Writer, key: &(SerialNo, u8)) {
    w.put_u64(key.0 .0).put_u8(key.1);
}

fn get_key(r: &mut Reader<'_>) -> Result<(SerialNo, u8), WireError> {
    Ok((SerialNo(r.get_u64()?), r.get_u8()?))
}

/// Encodes a snapshot.
pub fn encode_snapshot(snapshot: &BbSnapshot) -> Vec<u8> {
    let mut w = Writer::tagged("ddemos/bb-snapshot-wire/v1");
    match &snapshot.vote_set {
        Some(set) => {
            w.put_u8(1);
            put_vote_set(&mut w, set);
        }
        None => {
            w.put_u8(0);
        }
    }
    w.put_u32(snapshot.decrypted_codes.len() as u32);
    for (key, codes) in &snapshot.decrypted_codes {
        put_key(&mut w, key);
        w.put_u32(codes.len() as u32);
        for code in codes {
            put_vote_code(&mut w, code);
        }
    }
    w.put_u32(snapshot.openings.len() as u32);
    for (key, rows) in &snapshot.openings {
        put_key(&mut w, key);
        w.put_u32(rows.len() as u32);
        for row in rows {
            put_scalar_pairs(&mut w, row);
        }
    }
    w.put_u32(snapshot.zk_responses.len() as u32);
    for (key, rows) in &snapshot.zk_responses {
        put_key(&mut w, key);
        w.put_u32(rows.len() as u32);
        for (responses, sum) in rows {
            w.put_u32(responses.len() as u32);
            for resp in responses {
                put_scalar(&mut w, &resp.c0);
                put_scalar(&mut w, &resp.c1);
                put_scalar(&mut w, &resp.z0);
                put_scalar(&mut w, &resp.z1);
            }
            put_scalar(&mut w, sum);
        }
    }
    match &snapshot.challenge {
        Some(c) => {
            w.put_u8(1);
            put_scalar(&mut w, c);
        }
        None => {
            w.put_u8(0);
        }
    }
    match &snapshot.tally_opening {
        Some(opening) => {
            w.put_u8(1);
            put_scalar_pairs(&mut w, opening);
        }
        None => {
            w.put_u8(0);
        }
    }
    match &snapshot.result {
        Some(result) => {
            w.put_u8(1).put_u32(result.tally.len() as u32);
            for v in &result.tally {
                w.put_u64(*v);
            }
            w.put_u64(result.ballots_counted);
        }
        None => {
            w.put_u8(0);
        }
    }
    w.into_bytes()
}

fn get_flag(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::BadValue),
    }
}

/// Decodes a snapshot produced by [`encode_snapshot`].
///
/// # Errors
/// [`WireError`] on malformed bytes — never a panic (this is what a
/// Byzantine replica's read response goes through before the majority
/// comparison).
pub fn decode_snapshot(bytes: &[u8]) -> Result<BbSnapshot, WireError> {
    let mut r = Reader::new(bytes);
    if r.get_bytes()? != b"ddemos/bb-snapshot-wire/v1" {
        return Err(WireError::BadValue);
    }
    let mut snapshot = BbSnapshot::default();
    if get_flag(&mut r)? {
        snapshot.vote_set = Some(get_vote_set(&mut r)?);
    }
    let n = get_len(&mut r)?;
    for _ in 0..n {
        let key = get_key(&mut r)?;
        let count = get_len(&mut r)?;
        let mut codes = Vec::with_capacity(count);
        for _ in 0..count {
            codes.push(get_vote_code(&mut r)?);
        }
        snapshot.decrypted_codes.insert(key, codes);
    }
    let n = get_len(&mut r)?;
    for _ in 0..n {
        let key = get_key(&mut r)?;
        let count = get_len(&mut r)?;
        let mut rows: RowOpenings = Vec::with_capacity(count);
        for _ in 0..count {
            rows.push(get_scalar_pairs(&mut r)?);
        }
        snapshot.openings.insert(key, rows);
    }
    let n = get_len(&mut r)?;
    for _ in 0..n {
        let key = get_key(&mut r)?;
        let count = get_len(&mut r)?;
        let mut rows: RowZkResponses = Vec::with_capacity(count);
        for _ in 0..count {
            let resp_count = get_len(&mut r)?;
            let mut responses = Vec::with_capacity(resp_count);
            for _ in 0..resp_count {
                responses.push(OrResponse {
                    c0: get_scalar(&mut r)?,
                    c1: get_scalar(&mut r)?,
                    z0: get_scalar(&mut r)?,
                    z1: get_scalar(&mut r)?,
                });
            }
            let sum = get_scalar(&mut r)?;
            rows.push((responses, sum));
        }
        snapshot.zk_responses.insert(key, rows);
    }
    if get_flag(&mut r)? {
        snapshot.challenge = Some(get_scalar(&mut r)?);
    }
    if get_flag(&mut r)? {
        snapshot.tally_opening = Some(get_scalar_pairs(&mut r)?);
    }
    if get_flag(&mut r)? {
        let count = get_len(&mut r)?;
        let mut tally = Vec::with_capacity(count);
        for _ in 0..count {
            tally.push(r.get_u64()?);
        }
        snapshot.result = Some(ElectionResult {
            tally,
            ballots_counted: r.get_u64()?,
        });
    }
    if r.remaining() != 0 {
        return Err(WireError::BadValue);
    }
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddemos_crypto::votecode::VoteCode;
    use std::collections::BTreeMap;

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = BbSnapshot::default();
        let bytes = encode_snapshot(&snap);
        let got = decode_snapshot(&bytes).unwrap();
        assert_eq!(got.digest(), snap.digest());
        assert!(got.vote_set.is_none() && got.result.is_none());
    }

    #[test]
    fn populated_snapshot_roundtrips_digest_identical() {
        let mut snap = BbSnapshot::default();
        let mut set = ddemos_protocol::posts::VoteSet::default();
        set.entries.insert(SerialNo(3), VoteCode([9; 20]));
        snap.vote_set = Some(set);
        let mut codes = BTreeMap::new();
        codes.insert(
            (SerialNo(3), 0u8),
            vec![VoteCode([1; 20]), VoteCode([2; 20])],
        );
        snap.decrypted_codes = codes;
        snap.result = Some(ElectionResult {
            tally: vec![1, 2, 0],
            ballots_counted: 3,
        });
        let bytes = encode_snapshot(&snap);
        let got = decode_snapshot(&bytes).unwrap();
        assert_eq!(got.digest(), snap.digest());
        assert_eq!(got.result.unwrap().tally, vec![1, 2, 0]);
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        let snap = BbSnapshot::default();
        let bytes = encode_snapshot(&snap);
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_snapshot(&extended).is_err());
    }
}
