//! The sans-I/O Bulletin Board core.
//!
//! [`BbCore`] mirrors the shape of `ddemos_vc`'s `VcCore`: the whole
//! write-verification state machine of §III-G as
//! `step(input) -> Vec<output>`, owning no lock, no journal, and no
//! socket. Inputs are the three authenticated write kinds; outputs are
//! the reply plus (for novel accepted writes) a journal append and its
//! commit barrier — the reply always comes *after* the commit, so a
//! driver that executes outputs in order never acknowledges a write it
//! could forget.
//!
//! The node wrapper (`crate::node::BbNode`) adds the lock and the
//! journal; the multi-process replica loop (`ddemos_harness::tcp`) adds
//! the socket. Both drive this same core, as does journal replay — which
//! re-applies the accepted-write history through the same verified write
//! path, so a rebuilt node is byte-identical to one that never crashed.

use ddemos_crypto::elgamal::{self, Ciphertext};
use ddemos_crypto::field::Scalar;
use ddemos_crypto::mverify::{MsgVerifier, DEFAULT_CACHE_CAPACITY};
use ddemos_crypto::schnorr::{Signature, VerifyingKey};
use ddemos_crypto::shamir::{self, Share};
use ddemos_crypto::votecode::{self, VoteCode};
use ddemos_crypto::vss::{DealerVss, SignedShare};
use ddemos_crypto::zkp;
use ddemos_protocol::codec;
use ddemos_protocol::initdata::{
    msk_share_context, opening_bundle_message, voteset_message, BbInit,
};
use ddemos_protocol::messages::{BbWriteMsg, BbWriteOutcome};
use ddemos_protocol::posts::{ElectionResult, TrusteePost, VoteSet};
use ddemos_protocol::wire::{Reader, WireError, Writer};
use ddemos_protocol::{PartId, SerialNo};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-row, per-ciphertext `(bit, randomness)` openings of one ballot
/// part (`rows x ciphertexts`).
pub type RowOpenings = Vec<Vec<(Scalar, Scalar)>>;

/// Per-row reconstructed ZK final moves of one used ballot part:
/// `(per-ciphertext OR responses, sum response)`.
pub type RowZkResponses = Vec<(Vec<zkp::OrResponse>, Scalar)>;

/// Errors returned on rejected writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteError {
    /// The writer's signature (or the EA's, on relayed data) is invalid.
    BadSignature,
    /// The writer index is unknown.
    UnknownWriter,
    /// The submitted data contradicts already-verified state.
    Inconsistent,
    /// The node is not yet in the phase this write belongs to.
    WrongPhase,
    /// The replica could not be reached (remote replicas only — a local
    /// node never returns this).
    Unavailable,
    /// The replica's journal device is full: it refuses new writes
    /// rather than acknowledge them non-durably (read-only degradation;
    /// reads still serve everything already accepted).
    ReadOnly,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            WriteError::BadSignature => "signature verification failed",
            WriteError::UnknownWriter => "unknown writer",
            WriteError::Inconsistent => "data inconsistent with verified state",
            WriteError::WrongPhase => "write arrived in the wrong phase",
            WriteError::Unavailable => "replica unreachable",
            WriteError::ReadOnly => "replica degraded (journal device full): read-only",
        };
        write!(f, "{msg}")
    }
}
impl std::error::Error for WriteError {}

/// Maps a write result to its wire outcome code.
pub fn result_to_outcome(result: Result<(), WriteError>) -> BbWriteOutcome {
    match result {
        Ok(()) => BbWriteOutcome::Accepted,
        Err(WriteError::BadSignature) => BbWriteOutcome::BadSignature,
        Err(WriteError::UnknownWriter) => BbWriteOutcome::UnknownWriter,
        Err(WriteError::Inconsistent) => BbWriteOutcome::Inconsistent,
        // `Unavailable` never originates replica-side; collapse it to
        // the closest wire code defensively.
        Err(WriteError::WrongPhase) | Err(WriteError::Unavailable) => BbWriteOutcome::WrongPhase,
        Err(WriteError::ReadOnly) => BbWriteOutcome::ReadOnly,
    }
}

/// The wire outcome mapped back to the typed error (remote client side).
pub fn outcome_to_result(outcome: BbWriteOutcome) -> Result<(), WriteError> {
    match outcome {
        BbWriteOutcome::Accepted => Ok(()),
        BbWriteOutcome::BadSignature => Err(WriteError::BadSignature),
        BbWriteOutcome::UnknownWriter => Err(WriteError::UnknownWriter),
        BbWriteOutcome::Inconsistent => Err(WriteError::Inconsistent),
        BbWriteOutcome::WrongPhase => Err(WriteError::WrongPhase),
        BbWriteOutcome::ReadOnly => Err(WriteError::ReadOnly),
    }
}

/// Everything a BB node currently publishes (public read snapshot).
#[derive(Clone, Debug, Default)]
pub struct BbSnapshot {
    /// The accepted final vote set (after `fv+1` identical submissions).
    pub vote_set: Option<VoteSet>,
    /// Decrypted vote codes per ballot part row, once `msk` reconstructed:
    /// `(serial, part) → codes in row order`.
    pub decrypted_codes: BTreeMap<(SerialNo, u8), Vec<VoteCode>>,
    /// Openings of unused/unvoted part rows that verified:
    /// `(serial, part) → per-row per-ciphertext (bit, randomness)`.
    pub openings: BTreeMap<(SerialNo, u8), RowOpenings>,
    /// Reconstructed-and-verified ZK final moves for used parts:
    /// `(serial, part) → per-row (per-ciphertext OR responses, sum
    /// response)`. Publishing the responses lets auditors re-verify the
    /// proofs independently.
    pub zk_responses: BTreeMap<(SerialNo, u8), RowZkResponses>,
    /// The voter-coin challenge, once derivable.
    pub challenge: Option<Scalar>,
    /// The reconstructed opening of the homomorphic tally total, one
    /// `(message, randomness)` pair per option (lets auditors verify the
    /// result against the summed commitments).
    pub tally_opening: Option<Vec<(Scalar, Scalar)>>,
    /// The published result.
    pub result: Option<ElectionResult>,
}

impl BbSnapshot {
    /// A digest readers can majority-compare.
    pub fn digest(&self) -> [u8; 32] {
        let mut w = Writer::tagged("ddemos/bb-snapshot/v1");
        match &self.vote_set {
            Some(vs) => w.put_u8(1).put_array(&vs.digest()),
            None => w.put_u8(0),
        };
        w.put_u64(self.decrypted_codes.len() as u64);
        for ((serial, part), codes) in &self.decrypted_codes {
            w.put_u64(serial.0).put_u8(*part);
            for code in codes {
                w.put_array(&code.0);
            }
        }
        w.put_u64(self.openings.len() as u64);
        for ((serial, part), rows) in &self.openings {
            w.put_u64(serial.0).put_u8(*part).put_u32(rows.len() as u32);
        }
        match &self.result {
            Some(r) => w.put_u8(1).put_array(&r.digest()),
            None => w.put_u8(0),
        };
        w.digest()
    }
}

/// One input: an authenticated write. The three kinds mirror
/// [`BbWriteMsg`] (its typed, unpacked form).
#[derive(Clone, Debug)]
pub enum BbInput {
    /// A VC node's final vote set.
    VoteSet {
        /// Submitting VC node index.
        from_vc: u32,
        /// The submitted set.
        set: VoteSet,
        /// The VC node's signature over the set digest.
        sig: Signature,
    },
    /// A VC node's `msk` share.
    MskShare {
        /// The EA-signed share.
        share: SignedShare,
    },
    /// A trustee's post.
    TrusteePost {
        /// The post.
        post: Arc<TrusteePost>,
        /// The trustee's signature over the post digest.
        sig: Signature,
    },
}

impl BbInput {
    /// A static label naming the input variant (metrics coordinates).
    pub fn kind(&self) -> &'static str {
        match self {
            BbInput::VoteSet { .. } => "VoteSet",
            BbInput::MskShare { .. } => "MskShare",
            BbInput::TrusteePost { .. } => "TrusteePost",
        }
    }
}

impl From<BbWriteMsg> for BbInput {
    fn from(write: BbWriteMsg) -> BbInput {
        match write {
            BbWriteMsg::VoteSet { from_vc, set, sig } => BbInput::VoteSet { from_vc, set, sig },
            BbWriteMsg::MskShare { share } => BbInput::MskShare { share },
            BbWriteMsg::TrusteePost { post, sig } => BbInput::TrusteePost { post, sig },
        }
    }
}

/// One effect of a step, in execution order: journal appends and their
/// commit barrier precede the reply, so an acknowledged write is durable.
#[derive(Clone, Debug)]
pub enum BbOutput {
    /// Append one encoded [`BbRecord`] to the node's journal.
    Journal(Vec<u8>),
    /// Force the journal commit before the reply below is released.
    Commit,
    /// The write outcome to report to the submitter.
    Reply(Result<(), WriteError>),
}

/// One accepted (verified) BB write, as journaled and replayed. Cheap to
/// clone (the trustee post — the heavy payload — is shared by `Arc`).
#[derive(Clone)]
pub(crate) enum BbRecord {
    VoteSet {
        from_vc: u32,
        set: VoteSet,
        sig: Signature,
    },
    MskShare {
        share: SignedShare,
    },
    TrusteePost {
        post: Arc<TrusteePost>,
        sig: Signature,
    },
}

const TAG_VOTE_SET: u8 = 1;
const TAG_MSK_SHARE: u8 = 2;
const TAG_TRUSTEE_POST: u8 = 3;

impl BbRecord {
    pub(crate) fn encode_into(&self, w: &mut Writer) {
        match self {
            BbRecord::VoteSet { from_vc, set, sig } => {
                w.put_u8(TAG_VOTE_SET).put_u32(*from_vc);
                codec::put_vote_set(w, set);
                codec::put_signature(w, sig);
            }
            BbRecord::MskShare { share } => {
                w.put_u8(TAG_MSK_SHARE);
                codec::put_signed_share(w, share);
            }
            BbRecord::TrusteePost { post, sig } => {
                w.put_u8(TAG_TRUSTEE_POST);
                codec::put_trustee_post(w, post);
                codec::put_signature(w, sig);
            }
        }
    }

    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<BbRecord, WireError> {
        Ok(match r.get_u8()? {
            TAG_VOTE_SET => BbRecord::VoteSet {
                from_vc: r.get_u32()?,
                set: codec::get_vote_set(r)?,
                sig: codec::get_signature(r)?,
            },
            TAG_MSK_SHARE => BbRecord::MskShare {
                share: codec::get_signed_share(r)?,
            },
            TAG_TRUSTEE_POST => BbRecord::TrusteePost {
                post: Arc::new(codec::get_trustee_post(r)?),
                sig: codec::get_signature(r)?,
            },
            _ => return Err(WireError::BadValue),
        })
    }

    fn into_input(self) -> BbInput {
        match self {
            BbRecord::VoteSet { from_vc, set, sig } => BbInput::VoteSet { from_vc, set, sig },
            BbRecord::MskShare { share } => BbInput::MskShare { share },
            BbRecord::TrusteePost { post, sig } => BbInput::TrusteePost { post, sig },
        }
    }
}

/// Digest of a trustee post, for write authentication.
pub fn trustee_post_digest(post: &TrusteePost) -> [u8; 32] {
    let mut w = Writer::tagged("ddemos/trustee-post/v1");
    w.put_u32(post.trustee_index);
    w.put_u64(post.openings.len() as u64);
    for o in &post.openings {
        w.put_u64(o.serial.0).put_u8(o.part.index() as u8);
        for row in &o.rows {
            for (b, r) in row {
                w.put_array(&b.to_bytes()).put_array(&r.to_bytes());
            }
        }
        w.put_array(&o.opening_sig.to_bytes());
    }
    w.put_u64(post.zk.len() as u64);
    for z in &post.zk {
        w.put_u64(z.serial.0).put_u8(z.part.index() as u8);
        for row in &z.rows {
            for ct in row {
                for s in ct {
                    w.put_array(&s.to_bytes());
                }
            }
        }
        for s in &z.sum_responses {
            w.put_array(&s.to_bytes());
        }
    }
    for (m, r) in &post.tally.per_option {
        w.put_array(&m.to_bytes()).put_array(&r.to_bytes());
    }
    w.digest()
}

/// The sans-I/O Bulletin Board state machine. See the module docs.
pub struct BbCore {
    init: BbInit,
    /// Batch-first signature verification front end: prepared tables for
    /// the static writer keys (VC/trustee/EA) plus the bounded
    /// verified-envelope memo. Volatile — it only memoizes results, so
    /// journal replay reproduces the same accept/reject outcomes.
    mverify: MsgVerifier,
    vote_set_submissions: BTreeMap<[u8; 32], Vec<u32>>, // digest -> vc nodes
    vote_sets: BTreeMap<[u8; 32], VoteSet>,
    msk_shares: Vec<SignedShare>,
    msk: Option<[u8; 16]>,
    trustee_posts: BTreeMap<u32, Arc<TrusteePost>>,
    /// Every accepted (verified, novel) write in **acceptance order** —
    /// the node's durable history. Snapshots re-encode this list
    /// verbatim, so replay reproduces the exact original write order
    /// (quorum thresholds cross for the same digest, phase gates open at
    /// the same points) and the rebuilt node is byte-identical to the
    /// never-crashed one.
    accepted: Vec<BbRecord>,
    snapshot: BbSnapshot,
}

impl BbCore {
    /// Creates a core from its initialization data (which it publishes
    /// immediately, per §III-D).
    pub fn new(init: BbInit) -> BbCore {
        let mut mverify = MsgVerifier::new(DEFAULT_CACHE_CAPACITY);
        for vk in &init.vc_keys {
            mverify.prepare(vk);
        }
        for vk in &init.trustee_keys {
            mverify.prepare(vk);
        }
        mverify.prepare(&init.ea_key);
        BbCore {
            init,
            mverify,
            vote_set_submissions: BTreeMap::new(),
            vote_sets: BTreeMap::new(),
            msk_shares: Vec::new(),
            msk: None,
            trustee_posts: BTreeMap::new(),
            accepted: Vec::new(),
            snapshot: BbSnapshot::default(),
        }
    }

    /// The published initialization data (public).
    pub fn init_data(&self) -> &BbInit {
        &self.init
    }

    /// The current public snapshot.
    pub fn snapshot(&self) -> &BbSnapshot {
        &self.snapshot
    }

    /// Advances the state machine by one write. Outputs are in execution
    /// order: journal append + commit (novel accepted writes only), then
    /// the reply.
    pub fn step(&mut self, input: BbInput) -> Vec<BbOutput> {
        let (outcome, record) = self.apply(input);
        let mut outputs = Vec::with_capacity(3);
        if let Some(record) = record {
            outputs.push(BbOutput::Journal(record.encode()));
            outputs.push(BbOutput::Commit);
        }
        outputs.push(BbOutput::Reply(outcome));
        outputs
    }

    /// Replays one journaled record through the same verified write path
    /// (no journal outputs — the record is already on disk).
    pub(crate) fn replay(&mut self, record: BbRecord) {
        let (outcome, _) = self.apply(record.into_input());
        if let Err(e) = outcome {
            // `Inconsistent` from the msk path replays the original
            // mismatched-commitment outcome (shares accepted, then
            // cleared) — not storage damage. Anything else means a
            // journaled write no longer verifies: tampered storage; skip
            // the record — write-side verification must hold even
            // against our own disk.
            if !matches!(e, WriteError::Inconsistent) {
                eprintln!("bb: replayed write rejected ({e}); skipping record");
            }
        }
    }

    /// Encodes the accepted-write history (the durable snapshot body).
    pub(crate) fn encode_history(&self, w: &mut Writer) {
        w.put_u64(self.accepted.len() as u64);
        for record in &self.accepted {
            record.encode_into(w);
        }
    }

    fn apply(&mut self, input: BbInput) -> (Result<(), WriteError>, Option<BbRecord>) {
        match input {
            BbInput::VoteSet { from_vc, set, sig } => self.on_vote_set(from_vc, &set, &sig),
            BbInput::MskShare { share } => self.on_msk_share(&share),
            BbInput::TrusteePost { post, sig } => self.on_trustee_post(post, &sig),
        }
    }

    fn on_vote_set(
        &mut self,
        from_vc: u32,
        set: &VoteSet,
        sig: &Signature,
    ) -> (Result<(), WriteError>, Option<BbRecord>) {
        let Some(vk) = self.init.vc_keys.get(from_vc as usize).copied() else {
            return (Err(WriteError::UnknownWriter), None);
        };
        let digest = set.digest();
        if !self.mverify.check(
            &vk,
            &voteset_message(&self.init.params.election_id, &digest),
            sig,
        ) {
            return (Err(WriteError::BadSignature), None);
        }
        let submitters = self.vote_set_submissions.entry(digest).or_default();
        let novel = !submitters.contains(&from_vc);
        if novel {
            submitters.push(from_vc);
        }
        let enough = submitters.len() > self.init.params.vc_faults();
        self.vote_sets.entry(digest).or_insert_with(|| set.clone());
        if enough && self.snapshot.vote_set.is_none() {
            self.snapshot.vote_set = Some(set.clone());
            self.after_phase_change();
        }
        if !novel {
            return (Ok(()), None);
        }
        let record = BbRecord::VoteSet {
            from_vc,
            set: set.clone(),
            sig: *sig,
        };
        self.accepted.push(record.clone());
        (Ok(()), Some(record))
    }

    fn on_msk_share(&mut self, share: &SignedShare) -> (Result<(), WriteError>, Option<BbRecord>) {
        let ctx = msk_share_context(&self.init.params.election_id);
        let ea_key = self.init.ea_key;
        if !self.mverify.check_share(&ea_key, &ctx, share) {
            return (Err(WriteError::BadSignature), None);
        }
        if self.msk.is_some() {
            return (Ok(()), None);
        }
        let novel = !self
            .msk_shares
            .iter()
            .any(|s| s.share.index == share.share.index);
        if !novel {
            return (Ok(()), None);
        }
        self.msk_shares.push(*share);
        // The share is accepted (EA-verified and novel) regardless of how
        // the reconstruction attempt below ends — record it first so the
        // journal history matches the in-memory share list even on the
        // mismatched-commitment path, where the shares are cleared (the
        // replay re-runs the same clear deterministically).
        let record = BbRecord::MskShare { share: *share };
        self.accepted.push(record.clone());
        let mut outcome = Ok(());
        let k = self.init.params.vc_quorum();
        if self.msk_shares.len() >= k {
            if let Ok(secret) = DealerVss::reconstruct(&self.msk_shares, k) {
                let bytes = secret.to_bytes();
                let mut msk = [0u8; 16];
                msk.copy_from_slice(&bytes[16..]);
                // Authenticate against H_msk before trusting it.
                if self.init.msk_commitment.matches(&msk) {
                    self.msk = Some(msk);
                    self.after_phase_change();
                } else {
                    self.msk_shares.clear();
                    outcome = Err(WriteError::Inconsistent);
                }
            }
        }
        (outcome, Some(record))
    }

    fn on_trustee_post(
        &mut self,
        post: Arc<TrusteePost>,
        sig: &Signature,
    ) -> (Result<(), WriteError>, Option<BbRecord>) {
        let Some(vk) = self
            .init
            .trustee_keys
            .get(post.trustee_index as usize)
            .copied()
        else {
            return (Err(WriteError::UnknownWriter), None);
        };
        // One batch over the whole post: the trustee's signature on the
        // post digest plus the EA signatures on every opening bundle.
        // Any invalid entry rejects the write, exactly like the old
        // signature-at-a-time loop — it just costs one MSM.
        let mut items: Vec<(VerifyingKey, Vec<u8>, Signature)> =
            Vec::with_capacity(1 + post.openings.len());
        items.push((vk, trustee_post_digest(&post).to_vec(), *sig));
        for opening in &post.openings {
            let msg = opening_bundle_message(
                &self.init.params.election_id,
                opening.serial,
                opening.part,
                post.trustee_index,
                &opening.rows,
            );
            items.push((self.init.ea_key, msg, opening.opening_sig));
        }
        if self.mverify.check_batch(&items).iter().any(|ok| !ok) {
            return (Err(WriteError::BadSignature), None);
        }
        if self.snapshot.vote_set.is_none() || self.msk.is_none() {
            return (Err(WriteError::WrongPhase), None);
        }
        if !self.trustee_post_shape_ok(&post) {
            return (Err(WriteError::Inconsistent), None);
        }
        // First post per trustee wins: the accepted history must match
        // the retained state exactly, so a resubmission (same or
        // different content) is ignored rather than overwriting a post
        // the journal already committed to.
        if self.trustee_posts.contains_key(&post.trustee_index) {
            return (Ok(()), None);
        }
        self.trustee_posts.insert(post.trustee_index, post.clone());
        if self.trustee_posts.len() >= self.init.params.trustee_threshold
            && self.snapshot.result.is_none()
        {
            self.try_publish_result();
        }
        let record = BbRecord::TrusteePost { post, sig: *sig };
        self.accepted.push(record.clone());
        (Ok(()), Some(record))
    }

    /// Structural admission check for a trustee post: every share vector
    /// the tally loops later index must match the ballot geometry (rows ×
    /// ciphertexts) and the option count. The openings are EA-signed so
    /// their shape is authenticated, but the ZK and tally shares are the
    /// trustee's own — without this gate a Byzantine trustee could post
    /// short vectors and panic the replica mid-tally.
    fn trustee_post_shape_ok(&self, post: &TrusteePost) -> bool {
        let m = self.init.params.num_options;
        if post.tally.per_option.len() != m {
            return false;
        }
        for o in &post.openings {
            let Some(ballot) = self.init.ballots.get(&o.serial) else {
                return false;
            };
            let rows = &ballot.parts[o.part.index()];
            if o.rows.len() != rows.len() {
                return false;
            }
            if o.rows
                .iter()
                .zip(rows)
                .any(|(share_row, row)| share_row.len() != row.commitment.len())
            {
                return false;
            }
        }
        for z in &post.zk {
            let Some(ballot) = self.init.ballots.get(&z.serial) else {
                return false;
            };
            let rows = &ballot.parts[z.part.index()];
            if z.rows.len() != rows.len() || z.sum_responses.len() != rows.len() {
                return false;
            }
            if z.rows
                .iter()
                .zip(rows)
                .any(|(share_row, row)| share_row.len() != row.commitment.len())
            {
                return false;
            }
        }
        true
    }

    /// Called whenever the vote set or msk lands: decrypt codes, compute
    /// the challenge.
    fn after_phase_change(&mut self) {
        let (Some(msk), Some(vote_set)) = (self.msk, self.snapshot.vote_set.clone()) else {
            return;
        };
        if !self.snapshot.decrypted_codes.is_empty() {
            return;
        }
        // Decrypt every stored vote code (§III-G: "decrypts all the
        // encrypted vote codes in its initialization data, and publishes
        // them").
        for (serial, ballot) in self.init.ballots.iter() {
            for part in PartId::BOTH {
                let codes: Vec<VoteCode> = ballot.parts[part.index()]
                    .iter()
                    .filter_map(|row| votecode::decrypt_vote_code(&msk, &row.enc_code).ok())
                    .collect();
                self.snapshot
                    .decrypted_codes
                    .insert((*serial, part.index() as u8), codes);
            }
        }
        // Voter coins: the A/B choice of every voted ballot, in serial
        // order (§III-B). A=0, B=1.
        let mut coins = Vec::with_capacity(vote_set.len());
        for (serial, code) in &vote_set.entries {
            if let Some((part, _row)) = self.locate_cast_row(*serial, code) {
                coins.push(part.coin());
            }
        }
        let mut ctx = Vec::new();
        ctx.extend_from_slice(&self.init.params.election_id.0);
        self.snapshot.challenge = Some(zkp::challenge_from_coins(&ctx, &coins));
    }

    /// Finds (part, row) of a cast vote code using the decrypted codes.
    fn locate_cast_row(&self, serial: SerialNo, code: &VoteCode) -> Option<(PartId, usize)> {
        for part in PartId::BOTH {
            if let Some(codes) = self
                .snapshot
                .decrypted_codes
                .get(&(serial, part.index() as u8))
            {
                if let Some(row) = codes.iter().position(|c| c == code) {
                    return Some((part, row));
                }
            }
        }
        None
    }

    /// With ≥ h_t trustee posts verified, reconstruct openings, verify ZK
    /// proofs, open the homomorphic tally, and publish the result (§III-H).
    fn try_publish_result(&mut self) {
        let ht = self.init.params.trustee_threshold;
        // The caller gates on both being present; losing either here
        // means corrupt state — skip publication rather than abort the
        // replica (readers outvote it).
        let Some(vote_set) = self.snapshot.vote_set.clone() else {
            return;
        };
        let Some(challenge) = self.snapshot.challenge else {
            return;
        };
        let posts: Vec<Arc<TrusteePost>> = self.trustee_posts.values().cloned().collect();
        let m = self.init.params.num_options;

        // --- unused/unvoted part openings -------------------------------
        // Group opening posts by (serial, part).
        let mut openings_by_key: BTreeMap<(SerialNo, PartId), Vec<(u32, &RowOpenings)>> =
            BTreeMap::new();
        for post in &posts {
            for o in &post.openings {
                openings_by_key
                    .entry((o.serial, o.part))
                    .or_default()
                    .push((post.trustee_index, &o.rows));
            }
        }
        let mut new_openings: Vec<((SerialNo, u8), RowOpenings)> = Vec::new();
        let mut opening_items: Vec<(Ciphertext, Scalar, Scalar)> = Vec::new();
        // Half-open item range per `new_openings` entry, for the per-part
        // fallback below.
        let mut opening_spans: Vec<(usize, usize)> = Vec::new();
        for ((serial, part), shares) in &openings_by_key {
            if shares.len() < ht {
                continue;
            }
            let Some(ballot) = self.init.ballots.get(serial) else {
                continue;
            };
            let rows = &ballot.parts[part.index()];
            let start = opening_items.len();
            let mut opened_rows: RowOpenings = Vec::with_capacity(rows.len());
            let mut all_ok = true;
            for (row_idx, row) in rows.iter().enumerate() {
                let mut opened_cts = Vec::with_capacity(row.commitment.len());
                for (ct_idx, ct) in row.commitment.iter().enumerate() {
                    let bit_shares: Vec<Share> = shares
                        .iter()
                        .take(ht)
                        .map(|(t, rows)| Share {
                            index: t + 1,
                            value: rows[row_idx][ct_idx].0,
                        })
                        .collect();
                    let rand_shares: Vec<Share> = shares
                        .iter()
                        .take(ht)
                        .map(|(t, rows)| Share {
                            index: t + 1,
                            value: rows[row_idx][ct_idx].1,
                        })
                        .collect();
                    let (Ok(bit), Ok(rand)) = (
                        shamir::reconstruct(&bit_shares, ht),
                        shamir::reconstruct(&rand_shares, ht),
                    ) else {
                        all_ok = false;
                        break;
                    };
                    opening_items.push((*ct, bit, rand));
                    opened_cts.push((bit, rand));
                }
                if !all_ok {
                    break;
                }
                opened_rows.push(opened_cts);
            }
            if all_ok {
                opening_spans.push((start, opening_items.len()));
                new_openings.push(((*serial, part.index() as u8), opened_rows));
            } else {
                opening_items.truncate(start);
            }
        }
        // Every candidate opening across every part in one MSM. On failure,
        // fall back per part: a part publishes iff all of its openings
        // verify — the same outcome the per-ciphertext loop produced.
        if !elgamal::batch_verify_openings(&self.init.elgamal_pk, &opening_items) {
            let mut keep = Vec::new();
            for (entry, (start, end)) in new_openings.into_iter().zip(&opening_spans) {
                let span = opening_items.get(*start..*end).unwrap_or(&[]);
                if elgamal::batch_verify_openings(&self.init.elgamal_pk, span) {
                    keep.push(entry);
                }
            }
            new_openings = keep;
        }
        for (key, rows) in new_openings {
            self.snapshot.openings.insert(key, rows);
        }

        // --- used-part ZK verification -----------------------------------
        let mut zk_by_key: BTreeMap<
            (SerialNo, PartId),
            Vec<(u32, &ddemos_protocol::posts::PartZkPost)>,
        > = BTreeMap::new();
        for post in &posts {
            for z in &post.zk {
                zk_by_key
                    .entry((z.serial, z.part))
                    .or_default()
                    .push((post.trustee_index, z));
            }
        }
        let mut new_zk: Vec<((SerialNo, u8), RowZkResponses)> = Vec::new();
        let mut zk_instances: Vec<zkp::CpInstance> = Vec::new();
        let mut zk_spans: Vec<(usize, usize)> = Vec::new();
        for ((serial, part), posts_for_part) in &zk_by_key {
            if posts_for_part.len() < ht {
                continue;
            }
            let Some(ballot) = self.init.ballots.get(serial) else {
                continue;
            };
            let rows = &ballot.parts[part.index()];
            let start = zk_instances.len();
            let mut ok = true;
            let mut verified_rows: Vec<(Vec<zkp::OrResponse>, Scalar)> = Vec::new();
            'rows: for (row_idx, row) in rows.iter().enumerate() {
                let mut row_responses = Vec::with_capacity(row.commitment.len());
                for (ct_idx, ct) in row.commitment.iter().enumerate() {
                    let mut comps = [Scalar::ZERO; 4];
                    for (slot, comp) in comps.iter_mut().enumerate() {
                        let shares: Vec<Share> = posts_for_part
                            .iter()
                            .take(ht)
                            .map(|(t, z)| Share {
                                index: t + 1,
                                value: z.rows[row_idx][ct_idx][slot],
                            })
                            .collect();
                        match shamir::reconstruct(&shares, ht) {
                            Ok(v) => *comp = v,
                            Err(_) => {
                                ok = false;
                                break 'rows;
                            }
                        }
                    }
                    let resp = zkp::OrResponse {
                        c0: comps[0],
                        z0: comps[1],
                        c1: comps[2],
                        z1: comps[3],
                    };
                    // `or_instances` performs the c0+c1 = c split check the
                    // scalar `or_verify` started with; the group equations
                    // join the batch below.
                    let Some(pair) =
                        zkp::or_instances(ct, &row.or_first[ct_idx], &resp, &challenge)
                    else {
                        ok = false;
                        break 'rows;
                    };
                    zk_instances.extend(pair);
                    row_responses.push(resp);
                }
                let sum_shares: Vec<Share> = posts_for_part
                    .iter()
                    .take(ht)
                    .map(|(t, z)| Share {
                        index: t + 1,
                        value: z.sum_responses[row_idx],
                    })
                    .collect();
                let Ok(z) = shamir::reconstruct(&sum_shares, ht) else {
                    ok = false;
                    break;
                };
                zk_instances.push(zkp::sum_instance(
                    &row.commitment,
                    &row.sum_first,
                    &challenge,
                    &z,
                ));
                verified_rows.push((row_responses, z));
            }
            if ok {
                zk_spans.push((start, zk_instances.len()));
                new_zk.push(((*serial, part.index() as u8), verified_rows));
            } else {
                zk_instances.truncate(start);
            }
        }
        // All OR-proof branches and sum proofs of every used part in one
        // MSM; per-part fallback attributes failures, so a part publishes
        // iff all of its proofs verify — as the per-proof loop did.
        if !zkp::cp_verify_batch(&self.init.elgamal_pk, &zk_instances) {
            let mut keep = Vec::new();
            for (entry, (start, end)) in new_zk.into_iter().zip(&zk_spans) {
                let span = zk_instances.get(*start..*end).unwrap_or(&[]);
                if zkp::cp_verify_batch(&self.init.elgamal_pk, span) {
                    keep.push(entry);
                }
            }
            new_zk = keep;
        }
        for (key, rows) in new_zk {
            self.snapshot.zk_responses.insert(key, rows);
        }

        // --- homomorphic tally --------------------------------------------
        // E_tally: the cast row's commitment vector of every voted ballot.
        let mut sums = vec![Ciphertext::IDENTITY; m];
        let mut counted = 0u64;
        for (serial, code) in &vote_set.entries {
            let Some((part, row_idx)) = self.locate_cast_row(*serial, code) else {
                continue;
            };
            let Some(ballot) = self.init.ballots.get(serial) else {
                continue;
            };
            let row = &ballot.parts[part.index()][row_idx];
            for (j, ct) in row.commitment.iter().enumerate() {
                sums[j] = sums[j].add(ct);
            }
            counted += 1;
        }
        // Reconstruct the opening of each option total from trustee tally
        // shares; identify bad shares by reconstruct-then-verify over
        // subsets (the commitments are perfectly binding, so a verified
        // opening is *the* opening).
        let tally_posts: Vec<(u32, &ddemos_protocol::posts::TallySharePost)> =
            posts.iter().map(|p| (p.trustee_index, &p.tally)).collect();
        let mut tally = Vec::with_capacity(m);
        let mut opening = Vec::with_capacity(m);
        // Fast path: the honest case reconstructs every option total from
        // the first trustee subset — verify all `m` candidate openings in
        // one MSM, and only fall back to the per-subset search (which
        // isolates a bad share) if that batch fails. The subset search
        // tries the same first subset first, so a passing batch selects
        // exactly the openings the search would have.
        let first_subset: Option<Vec<(Scalar, Scalar)>> = (|| {
            if tally_posts.len() < ht {
                return None;
            }
            let mut cand = Vec::with_capacity(m);
            let mut items = Vec::with_capacity(m);
            for (j, sum_ct) in sums.iter().enumerate() {
                let m_shares: Vec<Share> = tally_posts
                    .iter()
                    .take(ht)
                    .map(|(t, p)| Share {
                        index: t + 1,
                        value: p.per_option[j].0,
                    })
                    .collect();
                let r_shares: Vec<Share> = tally_posts
                    .iter()
                    .take(ht)
                    .map(|(t, p)| Share {
                        index: t + 1,
                        value: p.per_option[j].1,
                    })
                    .collect();
                let (Ok(msg), Ok(rand)) = (
                    shamir::reconstruct(&m_shares, ht),
                    shamir::reconstruct(&r_shares, ht),
                ) else {
                    return None;
                };
                items.push((*sum_ct, msg, rand));
                cand.push((msg, rand));
            }
            if elgamal::batch_verify_openings(&self.init.elgamal_pk, &items) {
                Some(cand)
            } else {
                None
            }
        })();
        if let Some(cand) = first_subset {
            for (msg, rand) in cand {
                match msg.to_u64() {
                    Some(v) => {
                        tally.push(v);
                        opening.push((msg, rand));
                    }
                    None => return, // need more trustee posts
                }
            }
            self.snapshot.tally_opening = Some(opening);
            self.snapshot.result = Some(ElectionResult {
                tally,
                ballots_counted: counted,
            });
            return;
        }
        for (j, sum_ct) in sums.iter().enumerate() {
            let mut found = None;
            for subset in subsets_of(&tally_posts, ht) {
                let m_shares: Vec<Share> = subset
                    .iter()
                    .map(|(t, p)| Share {
                        index: t + 1,
                        value: p.per_option[j].0,
                    })
                    .collect();
                let r_shares: Vec<Share> = subset
                    .iter()
                    .map(|(t, p)| Share {
                        index: t + 1,
                        value: p.per_option[j].1,
                    })
                    .collect();
                let (Ok(msg), Ok(rand)) = (
                    shamir::reconstruct(&m_shares, ht),
                    shamir::reconstruct(&r_shares, ht),
                ) else {
                    continue;
                };
                if elgamal::verify_opening(&self.init.elgamal_pk, sum_ct, &msg, &rand) {
                    found = msg.to_u64();
                    opening.push((msg, rand));
                    break;
                }
            }
            match found {
                Some(v) => tally.push(v),
                None => return, // need more trustee posts
            }
        }
        self.snapshot.tally_opening = Some(opening);
        self.snapshot.result = Some(ElectionResult {
            tally,
            ballots_counted: counted,
        });
    }
}

/// All `k`-subsets of `items` (small inputs only: `C(Nt, ht)`).
fn subsets_of<T>(items: &[T], k: usize) -> Vec<Vec<&T>> {
    let mut out = Vec::new();
    let n = items.len();
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| &items[i]).collect());
        // advance combination
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        if idx[i] == i + n - k {
            return out;
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_enumerate_combinations() {
        let items = [1, 2, 3, 4];
        let subs = subsets_of(&items, 2);
        assert_eq!(subs.len(), 6);
        let subs3 = subsets_of(&items, 3);
        assert_eq!(subs3.len(), 4);
        assert_eq!(subsets_of(&items, 5).len(), 0);
        assert_eq!(subsets_of(&items, 4).len(), 1);
    }
}
