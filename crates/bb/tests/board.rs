//! Bulletin Board subsystem tests: write verification thresholds, msk
//! authentication against `H_msk`, and majority reads over divergent
//! replicas.

use ddemos_bb::{BbNode, MajorityReader};
use ddemos_crypto::schnorr::SigningKey;
use ddemos_crypto::votecode::VoteCode;
use ddemos_ea::{ElectionAuthority, SetupProfile};
use ddemos_protocol::initdata::voteset_message;
use ddemos_protocol::posts::VoteSet;
use ddemos_protocol::{ElectionParams, SerialNo};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn setup() -> (ddemos_ea::SetupOutput, ElectionParams) {
    let params = ElectionParams::new("bb-test", 2, 2, 4, 3, 5, 3, 0, 1000).unwrap();
    let ea = ElectionAuthority::new(params.clone(), 31);
    (ea.setup(SetupProfile::Full), params)
}

fn signed_set(
    setup: &ddemos_ea::SetupOutput,
    node: usize,
    set: &VoteSet,
) -> ddemos_crypto::schnorr::Signature {
    let msg = voteset_message(&setup.params.election_id, &set.digest());
    setup.vc_inits[node].signing_key.sign(&msg)
}

#[test]
fn vote_set_needs_fv_plus_one_identical_copies() {
    let (out, params) = setup();
    let bb = BbNode::new(out.bb_init.clone());
    let mut set = VoteSet::default();
    set.entries
        .insert(SerialNo(0), out.ballots[0].parts[0].lines[0].vote_code);
    // fv = 1 → needs 2 identical submissions.
    bb.submit_vote_set(0, &set, &signed_set(&out, 0, &set))
        .unwrap();
    assert!(bb.read().vote_set.is_none(), "one copy is not enough");
    bb.submit_vote_set(1, &set, &signed_set(&out, 1, &set))
        .unwrap();
    assert_eq!(bb.read().vote_set, Some(set.clone()));
    let _ = params;
}

#[test]
fn duplicate_submitter_does_not_count_twice() {
    let (out, _) = setup();
    let bb = BbNode::new(out.bb_init.clone());
    let set = VoteSet::default();
    let sig = signed_set(&out, 0, &set);
    bb.submit_vote_set(0, &set, &sig).unwrap();
    bb.submit_vote_set(0, &set, &sig).unwrap();
    assert!(bb.read().vote_set.is_none(), "same node twice is one copy");
}

#[test]
fn forged_vote_set_signature_rejected() {
    let (out, _) = setup();
    let bb = BbNode::new(out.bb_init.clone());
    let set = VoteSet::default();
    let mut rng = StdRng::seed_from_u64(1);
    let forger = SigningKey::generate(&mut rng);
    let msg = voteset_message(&out.params.election_id, &set.digest());
    let bad = forger.sign(&msg);
    assert!(bb.submit_vote_set(0, &set, &bad).is_err());
    assert!(
        bb.submit_vote_set(99, &set, &bad).is_err(),
        "unknown writer"
    );
}

#[test]
fn msk_reconstruction_requires_quorum_and_matches_commitment() {
    let (out, params) = setup();
    let bb = BbNode::new(out.bb_init.clone());
    // First publish a vote set so decryption can proceed afterwards.
    let set = VoteSet::default();
    bb.submit_vote_set(0, &set, &signed_set(&out, 0, &set))
        .unwrap();
    bb.submit_vote_set(1, &set, &signed_set(&out, 1, &set))
        .unwrap();

    let quorum = params.vc_quorum();
    for (i, init) in out.vc_inits.iter().enumerate().take(quorum - 1) {
        bb.submit_msk_share(&init.msk_share).unwrap();
        let _ = i;
    }
    assert!(
        bb.read().decrypted_codes.is_empty(),
        "below quorum: no decryption"
    );
    bb.submit_msk_share(&out.vc_inits[quorum - 1].msk_share)
        .unwrap();
    let snap = bb.read();
    assert!(
        !snap.decrypted_codes.is_empty(),
        "codes decrypted after quorum"
    );
    assert!(snap.challenge.is_some());
    // Decrypted codes match the printed ballots.
    let printed: Vec<VoteCode> = out.ballots[0].parts[0]
        .lines
        .iter()
        .map(|l| l.vote_code)
        .collect();
    let published = &snap.decrypted_codes[&(SerialNo(0), 0)];
    for code in published {
        assert!(printed.contains(code));
    }
}

#[test]
fn tampered_msk_share_rejected() {
    let (out, _) = setup();
    let bb = BbNode::new(out.bb_init.clone());
    let mut share = out.vc_inits[0].msk_share;
    share.share.value += ddemos_crypto::field::Scalar::ONE;
    assert!(
        bb.submit_msk_share(&share).is_err(),
        "EA signature must fail"
    );
}

#[test]
fn majority_reader_outvotes_divergent_replica() {
    let (out, _) = setup();
    let nodes: Vec<Arc<BbNode>> = (0..3)
        .map(|_| Arc::new(BbNode::new(out.bb_init.clone())))
        .collect();
    let reader = MajorityReader::new(nodes.clone());
    // All empty: majority snapshot exists and is empty.
    let snap = reader.read_snapshot().expect("unanimous empty state");
    assert!(snap.vote_set.is_none());

    // Write the vote set to only two of three replicas — still a majority.
    let mut set = VoteSet::default();
    set.entries
        .insert(SerialNo(1), out.ballots[1].parts[1].lines[0].vote_code);
    for bb in nodes.iter().take(2) {
        bb.submit_vote_set(0, &set, &signed_set(&out, 0, &set))
            .unwrap();
        bb.submit_vote_set(1, &set, &signed_set(&out, 1, &set))
            .unwrap();
    }
    let snap = reader.read_snapshot().expect("2-of-3 majority");
    assert_eq!(snap.vote_set, Some(set));

    // A different set on the third node cannot win a majority read.
    let mut other = VoteSet::default();
    other
        .entries
        .insert(SerialNo(0), out.ballots[0].parts[0].lines[1].vote_code);
    nodes[2]
        .submit_vote_set(2, &other, &signed_set(&out, 2, &other))
        .unwrap();
    nodes[2]
        .submit_vote_set(3, &other, &signed_set(&out, 3, &other))
        .unwrap();
    let snap = reader.read_snapshot().expect("majority still holds");
    assert_ne!(snap.vote_set, Some(other));
}

#[test]
fn trustee_post_requires_phase_and_signature() {
    let (out, _) = setup();
    let bb = BbNode::new(out.bb_init.clone());
    let trustee = ddemos_trustee::Trustee::new(out.trustee_inits[0].clone());
    // Producing a post requires BB state; before the vote set, it errors.
    let empty = bb.read();
    assert!(trustee.produce_post(&empty).is_err());
}

#[test]
fn journaled_node_recovers_byte_identical_state_after_amnesia() {
    use ddemos_protocol::clock::GlobalClock;
    use ddemos_storage::{DiskProfile, Journal, JournalConfig, SimDisk};

    let (out, params) = setup();
    let bb = BbNode::new(out.bb_init.clone());
    let disk: ddemos_storage::DynDisk =
        Arc::new(SimDisk::new(GlobalClock::new(), DiskProfile::instant()));
    bb.attach_journal(Journal::new(disk, JournalConfig::default()))
        .unwrap();
    assert!(bb.is_durable());

    // Drive the node through the full write pipeline: vote set, msk
    // shares, trustee posts, result publication.
    let mut set = VoteSet::default();
    set.entries
        .insert(SerialNo(0), out.ballots[0].parts[0].lines[0].vote_code);
    bb.submit_vote_set(0, &set, &signed_set(&out, 0, &set))
        .unwrap();
    bb.submit_vote_set(1, &set, &signed_set(&out, 1, &set))
        .unwrap();
    for init in out.vc_inits.iter().take(params.vc_quorum()) {
        bb.submit_msk_share(&init.msk_share).unwrap();
    }
    let snapshot = bb.read();
    for init in out.trustee_inits.iter().take(params.trustee_threshold) {
        let trustee = ddemos_trustee::Trustee::new(init.clone());
        let (post, sig) = trustee.produce_post(&snapshot).unwrap();
        bb.submit_trustee_post(Arc::new(post), &sig).unwrap();
    }
    let before = bb.read();
    assert!(before.result.is_some(), "pipeline published a result");

    // Power cycle: all volatile state dropped, rebuilt from the journal
    // by replaying the accepted writes through the verified write path.
    bb.recover_amnesia();
    let after = bb.read();
    assert_eq!(before.digest(), after.digest(), "recovered state diverged");
    assert_eq!(before.result, after.result);
    assert_eq!(before.decrypted_codes, after.decrypted_codes);

    // Without a journal, amnesia really is amnesia.
    let volatile = BbNode::new(out.bb_init.clone());
    volatile
        .submit_vote_set(0, &set, &signed_set(&out, 0, &set))
        .unwrap();
    volatile.recover_amnesia();
    assert!(volatile.read().vote_set.is_none());
    assert!(!volatile.is_durable());
}

#[test]
fn required_majority_is_a_true_majority() {
    let (out, _) = setup();
    for (replicas, needed) in [(1usize, 1usize), (2, 1), (3, 2), (4, 2), (5, 3)] {
        let nodes: Vec<_> = (0..replicas)
            .map(|_| std::sync::Arc::new(BbNode::new(out.bb_init.clone())))
            .collect();
        let reader = MajorityReader::new(nodes);
        assert_eq!(
            reader.required_majority(),
            needed,
            "fb+1 for {replicas} replicas"
        );
    }
}
