//! The liveness bound of Theorem 1 and the clock-drift table (Table I).
//!
//! `Twait := (2Nv + 4)·Tcomp + 12Δ + 6δ` is the patience after which an
//! honest voter blacklists a VC node and resubmits elsewhere
//! (Definition 1). The functions here compute the bound and the per-step
//! upper bounds of Table I for concrete parameters; `tests/liveness.rs`
//! checks measured receipt times against them.

use std::time::Duration;

/// The model constants of §III-C2 and Theorem 1.
#[derive(Clone, Copy, Debug)]
pub struct LivenessParams {
    /// `Tcomp`: worst-case duration of any single protocol procedure.
    pub t_comp: Duration,
    /// `δ`: upper bound on message delivery delay between honest nodes.
    pub delta_msg: Duration,
    /// `Δ`: upper bound on internal-clock drift from the global clock.
    pub drift: Duration,
}

impl LivenessParams {
    /// Derives the model constants from a simulated-network profile: `δ`
    /// is the worst one-way delay the profile can inject (base + jitter,
    /// over both edge classes). Scenario harnesses use this so voter
    /// patience tracks the emulated network instead of a hard-coded guess.
    pub fn for_network(
        profile: &ddemos_net::NetworkProfile,
        t_comp: Duration,
        drift: Duration,
    ) -> LivenessParams {
        let delta_msg = profile.vc_to_vc.max(profile.client_to_vc) + profile.jitter;
        LivenessParams {
            t_comp,
            delta_msg,
            drift,
        }
    }

    /// `Twait = (2Nv + 4)·Tcomp + 12Δ + 6δ` (Theorem 1).
    pub fn t_wait(&self, num_vc: usize) -> Duration {
        self.t_comp * (2 * num_vc as u32 + 4) + self.drift * 12 + self.delta_msg * 6
    }

    /// Latest engagement time (before `Tend`) that still guarantees a
    /// receipt: `(fv + 1) · Twait` (Theorem 1, condition 1).
    pub fn guaranteed_engagement_margin(&self, num_vc: usize) -> Duration {
        let fv = (num_vc - 1) / 3;
        self.t_wait(num_vc) * (fv as u32 + 1)
    }

    /// Probability a `[Twait]`-patient voter engaged `y·Twait` before the
    /// end fails to obtain a receipt: `∏_{j=1}^{y} (fv−j+1)/(Nv−j+1) <
    /// 3^−y` (Theorem 1, condition 2).
    pub fn failure_probability(&self, num_vc: usize, y: usize) -> f64 {
        let fv = (num_vc - 1) / 3;
        let mut p = 1.0;
        for j in 1..=y {
            if j > fv {
                return 0.0;
            }
            p *= (fv - (j - 1)) as f64 / (num_vc - (j - 1)) as f64;
        }
        p
    }
}

/// One row of Table I: the symbolic upper bounds instantiated numerically.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Step description (as in Table I).
    pub step: &'static str,
    /// Upper bound on the global clock at this step.
    pub global: Duration,
}

/// Instantiates Table I's global-clock column for concrete parameters
/// (time origin at the voter's initialization).
pub fn table1(params: &LivenessParams, num_vc: usize) -> Vec<TableRow> {
    let tc = params.t_comp;
    let d = params.drift;
    let dm = params.delta_msg;
    let nv = num_vc as u32;
    vec![
        TableRow {
            step: "V initialized",
            global: Duration::ZERO,
        },
        TableRow {
            step: "V submits her vote",
            global: tc + d,
        },
        TableRow {
            step: "VC receives ballot",
            global: tc + d + dm,
        },
        TableRow {
            step: "VC broadcasts ENDORSE",
            global: tc * 2 + d * 3 + dm,
        },
        TableRow {
            step: "honest VCs receive ENDORSE",
            global: tc * 2 + d * 3 + dm * 2,
        },
        TableRow {
            step: "honest VCs send ENDORSEMENT",
            global: tc * 3 + d * 5 + dm * 2,
        },
        TableRow {
            step: "VC receives ENDORSEMENTs",
            global: tc * 3 + d * 5 + dm * 3,
        },
        TableRow {
            step: "VC verifies Nv−1 endorsements",
            global: tc * (nv + 2) + d * 7 + dm * 3,
        },
        TableRow {
            step: "VC broadcasts share + UCERT",
            global: tc * (nv + 3) + d * 7 + dm * 3,
        },
        TableRow {
            step: "honest VCs receive share",
            global: tc * (nv + 3) + d * 7 + dm * 4,
        },
        TableRow {
            step: "honest VCs broadcast shares",
            global: tc * (nv + 4) + d * 9 + dm * 4,
        },
        TableRow {
            step: "VC receives shares",
            global: tc * (nv + 4) + d * 9 + dm * 5,
        },
        TableRow {
            step: "VC verifies Nv−1 shares",
            global: tc * (2 * nv + 3) + d * 11 + dm * 5,
        },
        TableRow {
            step: "VC reconstructs receipt",
            global: tc * (2 * nv + 4) + d * 11 + dm * 5,
        },
        TableRow {
            step: "V obtains her receipt",
            global: tc * (2 * nv + 4) + d * 11 + dm * 6,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LivenessParams {
        LivenessParams {
            t_comp: Duration::from_millis(10),
            delta_msg: Duration::from_millis(25),
            drift: Duration::from_millis(5),
        }
    }

    #[test]
    fn t_wait_formula() {
        // (2·4+4)·10 + 12·5 + 6·25 = 120 + 60 + 150 = 330 ms
        assert_eq!(params().t_wait(4), Duration::from_millis(330));
    }

    #[test]
    fn table1_is_monotone_and_ends_below_t_wait() {
        let p = params();
        for nv in [4usize, 7, 10, 13, 16] {
            let rows = table1(&p, nv);
            for pair in rows.windows(2) {
                assert!(pair[1].global >= pair[0].global, "table must be monotone");
            }
            // The voter-side bound (12Δ+6δ variant) dominates the final
            // global-clock row.
            assert!(rows.last().unwrap().global <= p.t_wait(nv));
        }
    }

    #[test]
    fn failure_probability_bounds() {
        let p = params();
        // Nv=4, fv=1: first attempt hits the malicious node w.p. 1/4.
        assert!((p.failure_probability(4, 1) - 0.25).abs() < 1e-9);
        // Two failed attempts impossible with fv=1 (blacklisting).
        assert_eq!(p.failure_probability(4, 2), 0.0);
        // Theorem bound: < 3^-y.
        for nv in [7usize, 10, 13, 16] {
            let fv = (nv - 1) / 3;
            for y in 1..=fv {
                assert!(p.failure_probability(nv, y) < 3f64.powi(-(y as i32)));
            }
        }
    }

    #[test]
    fn engagement_margin() {
        let p = params();
        assert_eq!(p.guaranteed_engagement_margin(4), p.t_wait(4) * 2);
        assert_eq!(p.guaranteed_engagement_margin(16), p.t_wait(16) * 6);
    }
}
