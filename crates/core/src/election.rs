//! End-to-end election orchestration: EA setup, VC cluster + BB replicas,
//! the voting window, vote-set consensus, BB uploads, trustee posts, and
//! result publication — with per-phase timings (the Fig 5c breakdown).

use crossbeam_channel::{unbounded, Receiver};
use ddemos_bb::{BbNode, MajorityReader};
use ddemos_ea::{ElectionAuthority, SetupOutput, SetupProfile};
use ddemos_net::{Endpoint, NetworkProfile, SimNet};
use ddemos_protocol::clock::GlobalClock;
use ddemos_protocol::posts::ElectionResult;
use ddemos_protocol::{ElectionParams, NodeId};
use ddemos_trustee::Trustee;
use ddemos_vc::{FinalizedVoteSet, MemoryStore, VcBehavior, VcHandle, VcNode, VcNodeConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Orchestration errors.
#[derive(Debug)]
pub enum ElectionError {
    /// Not enough VC nodes finalized a vote set in time.
    VoteSetTimeout,
    /// The BB majority never published the expected artifact.
    BbTimeout(&'static str),
    /// A trustee failed to produce its post.
    Trustee(ddemos_trustee::TrusteeError),
}

impl std::fmt::Display for ElectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElectionError::VoteSetTimeout => write!(f, "vote-set consensus did not finish"),
            ElectionError::BbTimeout(what) => write!(f, "bulletin board never published {what}"),
            ElectionError::Trustee(e) => write!(f, "trustee failure: {e}"),
        }
    }
}
impl std::error::Error for ElectionError {}

/// Configuration of a running election.
#[derive(Clone)]
pub struct ElectionConfig {
    /// Election parameters.
    pub params: ElectionParams,
    /// Master seed for the EA.
    pub seed: u64,
    /// Setup profile (VC-only for vote-collection benchmarks).
    pub profile: SetupProfile,
    /// Network latency/loss profile.
    pub network: NetworkProfile,
    /// Per-VC-node behaviours (defaults to all honest; padded if short).
    pub vc_behaviors: Vec<VcBehavior>,
    /// Per-VC-node clock drifts in milliseconds (defaults to zero).
    pub clock_drifts_ms: Vec<i64>,
}

impl ElectionConfig {
    /// An all-honest configuration on a LAN profile.
    pub fn honest(params: ElectionParams, seed: u64, profile: SetupProfile) -> ElectionConfig {
        ElectionConfig {
            params,
            seed,
            profile,
            network: NetworkProfile::lan(),
            vc_behaviors: Vec::new(),
            clock_drifts_ms: Vec::new(),
        }
    }
}

/// Wall-clock durations of each post-setup phase (Fig 5c's series).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Casting all votes (driven by the caller's workload).
    pub vote_collection: Duration,
    /// ANNOUNCE + batched binary consensus + RECOVER.
    pub vote_set_consensus: Duration,
    /// VC→BB uploads, msk reconstruction, code decryption, encrypted tally.
    pub push_to_bb_and_tally: Duration,
    /// Trustee posts and result publication.
    pub publish_result: Duration,
}

/// A running election: spawned VC cluster, BB replicas, trustees-in-waiting.
pub struct Election {
    /// The EA's setup output (ballots retained for voters/auditors).
    pub setup: SetupOutput,
    /// The simulated network.
    pub net: SimNet,
    /// The global reference clock.
    pub clock: GlobalClock,
    /// BB replicas.
    pub bb_nodes: Vec<Arc<BbNode>>,
    /// Majority reader over the BB replicas.
    pub reader: MajorityReader,
    trustees: Vec<Trustee>,
    vc_handles: Vec<VcHandle>,
    result_rx: Receiver<FinalizedVoteSet>,
    next_client: std::sync::atomic::AtomicU32,
}

impl Election {
    /// Runs EA setup and starts all long-lived components.
    pub fn start(config: ElectionConfig) -> Election {
        let ea = ElectionAuthority::new(config.params.clone(), config.seed);
        let setup = ea.setup(config.profile);
        drop(ea); // the EA is destroyed after setup (§III-B)
        Election::start_with_setup(config, setup)
    }

    /// Starts all components from pre-generated setup data (lets
    /// adversarial tests corrupt the setup first).
    pub fn start_with_setup(config: ElectionConfig, setup: SetupOutput) -> Election {
        let net = SimNet::new(config.network.clone(), config.seed ^ 0x4E45_5457_4F52_4B21);
        let clock = GlobalClock::new();
        let (result_tx, result_rx) = unbounded();
        let mut vc_handles = Vec::new();
        for init in &setup.vc_inits {
            let i = init.node_index as usize;
            let behavior = config.vc_behaviors.get(i).copied().unwrap_or_default();
            let drift = config.clock_drifts_ms.get(i).copied().unwrap_or(0);
            let endpoint = net.register(NodeId::vc(init.node_index));
            let store = MemoryStore::new(init.ballots.clone(), setup.params.num_ballots);
            vc_handles.push(VcNode::spawn(
                init.clone(),
                store,
                endpoint,
                clock.node_clock(drift),
                setup.consensus_beacon,
                VcNodeConfig { behavior, ..VcNodeConfig::default() },
                result_tx.clone(),
            ));
        }
        let bb_nodes: Vec<Arc<BbNode>> = (0..setup.params.num_bb)
            .map(|_| Arc::new(BbNode::new(setup.bb_init.clone())))
            .collect();
        let reader = MajorityReader::new(bb_nodes.clone());
        let trustees = setup.trustee_inits.iter().cloned().map(Trustee::new).collect();
        Election {
            setup,
            net,
            clock,
            bb_nodes,
            reader,
            trustees,
            vc_handles,
            result_rx,
            next_client: std::sync::atomic::AtomicU32::new(0),
        }
    }

    /// Closes the polls on every VC node immediately (as if every clock
    /// passed `Tend`), triggering vote-set consensus.
    pub fn close_polls(&self) {
        for h in &self.vc_handles {
            h.close_polls();
        }
    }

    /// Registers a fresh client (voter terminal) endpoint.
    pub fn client_endpoint(&self) -> Endpoint {
        let id = self
            .next_client
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.net.register(NodeId::client(id))
    }

    /// Waits until at least `count` VC nodes deliver their finalized vote
    /// sets (they do so after their clocks pass `Tend`).
    ///
    /// # Errors
    /// [`ElectionError::VoteSetTimeout`] on expiry.
    pub fn await_vote_sets(
        &self,
        count: usize,
        timeout: Duration,
    ) -> Result<Vec<FinalizedVoteSet>, ElectionError> {
        let mut out = Vec::new();
        let deadline = Instant::now() + timeout;
        while out.len() < count {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(ElectionError::VoteSetTimeout)?;
            match self.result_rx.recv_timeout(remaining) {
                Ok(f) => out.push(f),
                Err(_) => return Err(ElectionError::VoteSetTimeout),
            }
        }
        Ok(out)
    }

    /// Pushes finalized vote sets and msk shares to every BB node (each VC
    /// node writes to all replicas, §III-G).
    pub fn push_to_bb(&self, finalized: &[FinalizedVoteSet]) {
        for f in finalized {
            for bb in &self.bb_nodes {
                let _ = bb.submit_vote_set(f.node_index, &f.vote_set, &f.signature);
                let _ = bb.submit_msk_share(&f.msk_share);
            }
        }
    }

    /// Runs every trustee against the BB majority and posts the results.
    ///
    /// # Errors
    /// Propagates trustee validation failures and BB timeouts.
    pub fn run_trustees(&self) -> Result<(), ElectionError> {
        let snapshot = self
            .reader
            .read_until(Duration::from_secs(30), |s| {
                s.vote_set.is_some() && s.challenge.is_some()
            })
            .ok_or(ElectionError::BbTimeout("vote set and challenge"))?;
        for trustee in &self.trustees {
            let (post, sig) = trustee
                .produce_post(&snapshot)
                .map_err(ElectionError::Trustee)?;
            let post = Arc::new(post);
            for bb in &self.bb_nodes {
                let _ = bb.submit_trustee_post(post.clone(), &sig);
            }
        }
        Ok(())
    }

    /// Majority-reads the published result.
    ///
    /// # Errors
    /// [`ElectionError::BbTimeout`] if no majority publishes in time.
    pub fn await_result(&self, timeout: Duration) -> Result<ElectionResult, ElectionError> {
        self.reader
            .read_until(timeout, |s| s.result.is_some())
            .and_then(|s| s.result)
            .ok_or(ElectionError::BbTimeout("result"))
    }

    /// Stops all node threads and the network.
    pub fn shutdown(self) {
        for handle in self.vc_handles {
            handle.stop();
        }
        self.net.shutdown();
    }
}

/// Runs the complete post-voting pipeline, timing each phase (Fig 5c).
///
/// The caller has already driven the voting workload; `vote_collection` is
/// passed through for reporting.
///
/// # Errors
/// Propagates orchestration failures from any phase.
pub fn finish_election(
    election: &Election,
    vote_collection: Duration,
) -> Result<(ElectionResult, PhaseTimings), ElectionError> {
    let quorum = election.setup.params.vc_quorum();
    let t0 = Instant::now();
    let finalized = election.await_vote_sets(quorum, Duration::from_secs(120))?;
    let vote_set_consensus = t0.elapsed();

    let t1 = Instant::now();
    election.push_to_bb(&finalized);
    // Wait until a BB majority has the vote set, codes and challenge (the
    // "push to BB and encrypted tally" phase).
    election
        .reader
        .read_until(Duration::from_secs(60), |s| s.challenge.is_some())
        .ok_or(ElectionError::BbTimeout("encrypted tally"))?;
    let push_to_bb_and_tally = t1.elapsed();

    let t2 = Instant::now();
    election.run_trustees()?;
    let result = election.await_result(Duration::from_secs(120))?;
    let publish_result = t2.elapsed();

    Ok((
        result,
        PhaseTimings {
            vote_collection,
            vote_set_consensus,
            push_to_bb_and_tally,
            publish_result,
        },
    ))
}
