//! The voter client (§III-F).
//!
//! The voter needs no cryptography and no trusted device: she picks one
//! ballot part at random (her "coin" for the ZK challenge), submits the
//! vote code for her chosen option to a random VC node, and compares the
//! returned receipt with the one printed next to that code. `[d]`-patience
//! (Definition 1) governs retries: if no valid receipt arrives within her
//! patience window she blacklists that VC node and resubmits to another.

use ddemos_net::TransportEndpoint;
use ddemos_protocol::ballot::{AuditInfo, Ballot};
use ddemos_protocol::messages::{Msg, RejectReason, VoteOutcome};
use ddemos_protocol::{NodeId, PartId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::time::Duration;

/// Why voting failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VoteError {
    /// Every VC node was tried and blacklisted without a valid receipt.
    AllNodesExhausted,
    /// A VC node returned a receipt that does not match the ballot — the
    /// human-verifiable failure the paper's receipt check is designed to
    /// expose.
    ReceiptMismatch,
    /// The submission was rejected.
    Rejected(RejectReason),
    /// The requested option does not exist on the ballot.
    NoSuchOption,
}

impl std::fmt::Display for VoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VoteError::AllNodesExhausted => write!(f, "no vc node produced a receipt in time"),
            VoteError::ReceiptMismatch => write!(f, "receipt did not match the printed ballot"),
            VoteError::Rejected(r) => write!(f, "vote rejected: {r}"),
            VoteError::NoSuchOption => write!(f, "option not present on ballot"),
        }
    }
}
impl std::error::Error for VoteError {}

/// The record a successful voter keeps.
#[derive(Clone, Debug)]
pub struct VoteRecord {
    /// Everything needed for (delegable) auditing.
    pub audit: AuditInfo,
    /// How many VC nodes were tried before success.
    pub attempts: u32,
    /// End-to-end latency of the successful attempt.
    pub latency: Duration,
}

/// A voter with her printed ballot and a network endpoint (an untrusted
/// terminal: the endpoint carries no keys). The endpoint is any
/// [`TransportEndpoint`] — the in-process simulated network or a real
/// TCP socket to a multi-process cluster.
pub struct Voter<'a, R: Rng> {
    ballot: &'a Ballot,
    endpoint: &'a dyn TransportEndpoint,
    num_vc: usize,
    patience: Duration,
    rng: R,
}

impl<'a, R: Rng> Voter<'a, R> {
    /// Creates a voter. `patience` is the `[d]` of Definition 1 (use
    /// [`crate::liveness::LivenessParams::t_wait`] for the theorem-backed
    /// value).
    pub fn new(
        ballot: &'a Ballot,
        endpoint: &'a dyn TransportEndpoint,
        num_vc: usize,
        patience: Duration,
        rng: R,
    ) -> Voter<'a, R> {
        Voter {
            ballot,
            endpoint,
            num_vc,
            patience,
            rng,
        }
    }

    /// Casts a vote for `option_index`, choosing a ballot part at random.
    ///
    /// # Errors
    /// See [`VoteError`]; notably `ReceiptMismatch` means the voter must
    /// not trust the collection.
    pub fn vote(&mut self, option_index: usize) -> Result<VoteRecord, VoteError> {
        let part = if self.rng.gen::<bool>() {
            PartId::B
        } else {
            PartId::A
        };
        self.vote_with_part(option_index, part)
    }

    /// Casts a vote using a specific part (tests and adversarial scenarios
    /// fix the coin).
    ///
    /// # Errors
    /// See [`VoteError`].
    pub fn vote_with_part(
        &mut self,
        option_index: usize,
        part: PartId,
    ) -> Result<VoteRecord, VoteError> {
        let line = self
            .ballot
            .part(part)
            .line_for_option(option_index)
            .ok_or(VoteError::NoSuchOption)?;
        let code = line.vote_code;
        let expected_receipt = line.receipt;

        let mut order: Vec<u32> = (0..self.num_vc as u32).collect();
        order.shuffle(&mut self.rng);
        let mut attempts = 0u32;
        // Patience and latency are measured in the network's time base —
        // virtual milliseconds under a virtual clock — so `[d]`-patience
        // semantics survive when emulated latency costs no wall time.
        let patience_ns = self.patience.as_nanos() as u64;
        for vc in order {
            attempts = attempts.wrapping_add(1);
            let request_id = self.rng.gen::<u64>();
            let started_ns = self.endpoint.now_ns();
            self.endpoint.send(
                NodeId::vc(vc),
                Msg::Vote {
                    request_id,
                    serial: self.ballot.serial,
                    vote_code: code,
                },
            );
            // Wait out our patience for *this* node, discarding stray or
            // stale replies.
            loop {
                let elapsed_ns = self.endpoint.now_ns().saturating_sub(started_ns);
                if elapsed_ns >= patience_ns {
                    break;
                }
                let remaining = Duration::from_nanos(patience_ns - elapsed_ns);
                let Ok(env) = self.endpoint.recv_timeout(remaining) else {
                    break;
                };
                let Msg::VoteReply {
                    request_id: rid,
                    serial,
                    outcome,
                } = env.msg
                else {
                    continue;
                };
                if rid != request_id || serial != self.ballot.serial {
                    continue;
                }
                match outcome {
                    VoteOutcome::Receipt(receipt) => {
                        if receipt == expected_receipt {
                            let latency_ns = self.endpoint.now_ns().saturating_sub(started_ns);
                            return Ok(VoteRecord {
                                audit: AuditInfo {
                                    serial: self.ballot.serial,
                                    used_part: part,
                                    cast_code: code,
                                    receipt,
                                    unused_part: self.ballot.part(part.other()).clone(),
                                },
                                attempts,
                                latency: Duration::from_nanos(latency_ns),
                            });
                        }
                        // An invalid receipt is treated like no receipt:
                        // blacklist and move on (the contract only honours
                        // *valid* receipts).
                        break;
                    }
                    VoteOutcome::Rejected(RejectReason::AlreadyVotedDifferentCode) => {
                        return Err(VoteError::Rejected(RejectReason::AlreadyVotedDifferentCode));
                    }
                    VoteOutcome::Rejected(RejectReason::ReplicaDegraded) => {
                        // A read-only (disk-full) replica is a faulty
                        // node, not a verdict on the ballot: blacklist it
                        // and try the next collector, like a timeout.
                        break;
                    }
                    VoteOutcome::Rejected(reason) => return Err(VoteError::Rejected(reason)),
                }
            }
            // Patience exhausted: blacklist this node (never retried) and
            // pick the next.
        }
        Err(VoteError::AllNodesExhausted)
    }
}
