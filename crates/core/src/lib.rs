//! # ddemos
//!
//! A from-scratch Rust reproduction of **D-DEMOS** (Chondros et al., ICDCS
//! 2016): a distributed, end-to-end verifiable internet voting system with
//! no single point of failure after setup.
//!
//! The system comprises:
//! * an **Election Authority** ([`ddemos_ea`]) that deals all
//!   initialization data and is destroyed;
//! * a Byzantine fault tolerant, fully asynchronous **Vote Collection**
//!   cluster ([`ddemos_vc`]) that hands voters human-verifiable
//!   recorded-as-cast receipts and agrees on the final vote set with
//!   batched binary consensus ([`ddemos_consensus`]);
//! * a replicated **Bulletin Board** ([`ddemos_bb`]) of isolated nodes with
//!   verified writes and majority reads;
//! * **trustees** ([`ddemos_trustee`]) that jointly open the homomorphic
//!   tally and complete the zero-knowledge ballot-correctness proofs
//!   ([`ddemos_crypto`]) without learning any vote.
//!
//! This crate adds the voter client, the auditor, the liveness bounds of
//! Theorem 1, and an end-to-end election orchestrator.
//!
//! ```no_run
//! use ddemos::election::{Election, ElectionConfig};
//! use ddemos::voter::Voter;
//! use ddemos_ea::SetupProfile;
//! use ddemos_protocol::ElectionParams;
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = ElectionParams::new("demo", 10, 2, 4, 3, 5, 3, 0, 2_000)?;
//! let election = Election::start(ElectionConfig::honest(params, 42, SetupProfile::Full));
//! let endpoint = election.client_endpoint();
//! let ballot = &election.setup.ballots[0];
//! let mut voter = Voter::new(ballot, &endpoint, 4, Duration::from_secs(2),
//!                            StdRng::seed_from_u64(1));
//! let record = voter.vote(1)?;
//! assert_eq!(record.audit.receipt,
//!            ballot.part(record.audit.used_part).line_for_option(1).unwrap().receipt);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod auditor;
pub mod election;
pub mod liveness;
pub mod voter;

pub use auditor::{Auditor, AuditReport};
pub use election::{Election, ElectionConfig, ElectionError, PhaseTimings};
pub use liveness::LivenessParams;
pub use voter::{VoteError, VoteRecord, Voter};

// Re-export the subsystem crates under one roof for downstream users.
pub use ddemos_bb as bb;
pub use ddemos_consensus as consensus;
pub use ddemos_crypto as crypto;
pub use ddemos_ea as ea;
pub use ddemos_net as net;
pub use ddemos_protocol as protocol;
pub use ddemos_trustee as trustee;
pub use ddemos_vc as vc;
