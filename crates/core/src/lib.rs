//! # ddemos
//!
//! A from-scratch Rust reproduction of **D-DEMOS** (Chondros et al., ICDCS
//! 2016): a distributed, end-to-end verifiable internet voting system with
//! no single point of failure after setup.
//!
//! The system comprises:
//! * an **Election Authority** ([`ddemos_ea`]) that deals all
//!   initialization data and is destroyed;
//! * a Byzantine fault tolerant, fully asynchronous **Vote Collection**
//!   cluster ([`ddemos_vc`]) that hands voters human-verifiable
//!   recorded-as-cast receipts and agrees on the final vote set with
//!   batched binary consensus ([`ddemos_consensus`]);
//! * a replicated **Bulletin Board** ([`ddemos_bb`]) of isolated nodes with
//!   verified writes and majority reads;
//! * **trustees** ([`ddemos_trustee`]) that jointly open the homomorphic
//!   tally and complete the zero-knowledge ballot-correctness proofs
//!   ([`ddemos_crypto`]) without learning any vote.
//!
//! This crate adds the client-side roles: the voter ([`voter`]), the
//! auditor ([`auditor`]), and the liveness bounds of Theorem 1
//! ([`liveness`]).
//!
//! End-to-end orchestration lives in the `ddemos-harness` crate, whose
//! `ElectionBuilder` stands up every component in one call and exposes
//! typed phase handles:
//!
//! ```text
//! let election = ElectionBuilder::new(params).seed(42).build()?;
//! let record = election.voting().cast(0, 1)?;   // receipt-checked
//! let report = election.finish()?;              // close → tally → audit
//! ```
//!
//! See `ddemos_harness`'s crate docs (and `examples/quickstart.rs` at the
//! workspace root) for the runnable version.

#![warn(missing_docs)]

pub mod auditor;
pub mod liveness;
pub mod voter;

pub use auditor::{AuditReport, Auditor};
pub use liveness::LivenessParams;
pub use voter::{VoteError, VoteRecord, Voter};

// Re-export the subsystem crates under one roof for downstream users.
pub use ddemos_bb as bb;
pub use ddemos_consensus as consensus;
pub use ddemos_crypto as crypto;
pub use ddemos_ea as ea;
pub use ddemos_net as net;
pub use ddemos_protocol as protocol;
pub use ddemos_trustee as trustee;
pub use ddemos_vc as vc;
