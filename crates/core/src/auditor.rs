//! Auditors (§III-I): anyone can verify the complete election process from
//! the Bulletin Board, and voters can delegate their private checks
//! without revealing how they voted.
//!
//! Checks implemented (lettered as in the paper):
//! (a) within each opened ballot no two vote codes are equal;
//! (b) at most one submitted vote code per ballot part;
//! (c) at most one part used per ballot;
//! (d) all published commitment openings are valid *and* encode unit
//!     vectors;
//! (e) the zero-knowledge proofs of the used ballot parts are complete and
//!     valid under the voter-coin challenge;
//! (f) [delegated] submitted vote codes match what voters report;
//! (g) [delegated] unused-part openings match the voters' printed ballots.
//!
//! Plus the global checks: challenge recomputation from the voters' coins
//! and verification of the homomorphic tally opening against the result.

use ddemos_bb::BbSnapshot;
use ddemos_crypto::elgamal::{self, Ciphertext};
use ddemos_crypto::field::Scalar;
use ddemos_crypto::zkp;
use ddemos_protocol::ballot::AuditInfo;
use ddemos_protocol::initdata::BbInit;
use ddemos_protocol::{PartId, SerialNo};

/// Outcome of an audit.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Human-readable failures; empty means the election verifies.
    pub failures: Vec<String>,
    /// Number of individual checks that ran.
    pub checks_run: usize,
}

impl AuditReport {
    /// True iff no check failed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks_run += 1;
        if !ok {
            self.failures.push(msg());
        }
    }
}

/// The public auditor.
pub struct Auditor<'a> {
    init: &'a BbInit,
    snapshot: &'a BbSnapshot,
}

impl<'a> Auditor<'a> {
    /// Creates an auditor over the published init data and a majority-read
    /// snapshot.
    pub fn new(init: &'a BbInit, snapshot: &'a BbSnapshot) -> Auditor<'a> {
        Auditor { init, snapshot }
    }

    fn locate_cast_row(
        &self,
        serial: SerialNo,
        code: &ddemos_crypto::votecode::VoteCode,
    ) -> Vec<(PartId, usize)> {
        let mut hits = Vec::new();
        for part in PartId::BOTH {
            if let Some(codes) = self
                .snapshot
                .decrypted_codes
                .get(&(serial, part.index() as u8))
            {
                for (row, c) in codes.iter().enumerate() {
                    if c == code {
                        hits.push((part, row));
                    }
                }
            }
        }
        hits
    }

    /// Runs the public checks (a)–(e) plus challenge and tally
    /// verification.
    pub fn verify_public(&self) -> AuditReport {
        let mut report = AuditReport::default();
        let Some(vote_set) = &self.snapshot.vote_set else {
            report.check(false, || "no final vote set published".into());
            return report;
        };

        // (a) opened codes unique within each ballot.
        for (serial, _) in self.init.ballots.iter() {
            let mut codes = Vec::new();
            for part in PartId::BOTH {
                if let Some(c) = self
                    .snapshot
                    .decrypted_codes
                    .get(&(*serial, part.index() as u8))
                {
                    codes.extend(c.iter().copied());
                }
            }
            let total = codes.len();
            codes.sort();
            codes.dedup();
            report.check(codes.len() == total, || {
                format!("(a) duplicate vote codes within ballot {serial}")
            });
        }

        // (b)/(c) every cast code appears in exactly one row of one part.
        for (serial, code) in &vote_set.entries {
            let hits = self.locate_cast_row(*serial, code);
            report.check(hits.len() == 1, || {
                format!("(b/c) cast code of {serial} located {} times", hits.len())
            });
        }

        // Challenge recomputation from the voters' coins.
        let mut coins = Vec::new();
        for (serial, code) in &vote_set.entries {
            if let Some((part, _)) = self.locate_cast_row(*serial, code).first() {
                coins.push(part.coin());
            }
        }
        let mut ctx = Vec::new();
        ctx.extend_from_slice(&self.init.params.election_id.0);
        let challenge = zkp::challenge_from_coins(&ctx, &coins);
        report.check(self.snapshot.challenge == Some(challenge), || {
            "challenge does not match the voters' coins".into()
        });

        // (d) openings valid and unit-vector shaped; coverage: unused part
        // of voted ballots, both parts of unvoted ballots.
        for (serial, ballot) in self.init.ballots.iter() {
            let voted_part = vote_set
                .entries
                .get(serial)
                .and_then(|code| self.locate_cast_row(*serial, code).first().copied())
                .map(|(p, _)| p);
            for part in PartId::BOTH {
                let must_open = match voted_part {
                    Some(used) => part == used.other(),
                    None => true,
                };
                if !must_open {
                    continue;
                }
                let Some(opened) = self.snapshot.openings.get(&(*serial, part.index() as u8))
                else {
                    report.check(false, || {
                        format!("(d) missing openings for {serial} part {part:?}")
                    });
                    continue;
                };
                let rows = &ballot.parts[part.index()];
                report.check(opened.len() == rows.len(), || {
                    format!("(d) row count mismatch for {serial} part {part:?}")
                });
                for (row_idx, (opened_row, row)) in opened.iter().zip(rows).enumerate() {
                    let mut ones = 0;
                    for (ct, (bit, rand)) in row.commitment.iter().zip(opened_row) {
                        report.check(
                            elgamal::verify_opening(&self.init.elgamal_pk, ct, bit, rand),
                            || format!("(d) invalid opening {serial} {part:?} row {row_idx}"),
                        );
                        match bit.to_u64() {
                            Some(0) => {}
                            Some(1) => ones += 1,
                            _ => report.check(false, || {
                                format!("(d) non-bit plaintext {serial} {part:?} row {row_idx}")
                            }),
                        }
                    }
                    report.check(ones == 1, || {
                        format!("(d) row is not a unit vector {serial} {part:?} row {row_idx}")
                    });
                }
            }
        }

        // (e) used-part ZK proofs complete and valid.
        for (serial, code) in &vote_set.entries {
            let Some((part, _)) = self.locate_cast_row(*serial, code).first().copied() else {
                continue;
            };
            let Some(rows) = self
                .snapshot
                .zk_responses
                .get(&(*serial, part.index() as u8))
            else {
                report.check(false, || {
                    format!("(e) missing ZK responses for {serial} used part {part:?}")
                });
                continue;
            };
            let Some(ballot) = self.init.ballots.get(serial) else {
                continue;
            };
            let bb_rows = &ballot.parts[part.index()];
            report.check(rows.len() == bb_rows.len(), || {
                format!("(e) ZK row count mismatch for {serial}")
            });
            for (row_idx, ((responses, sum_z), row)) in rows.iter().zip(bb_rows).enumerate() {
                for ((resp, ct), first) in responses.iter().zip(&row.commitment).zip(&row.or_first)
                {
                    report.check(
                        zkp::or_verify(&self.init.elgamal_pk, ct, first, resp, &challenge),
                        || format!("(e) OR proof failed {serial} {part:?} row {row_idx}"),
                    );
                }
                report.check(
                    zkp::sum_verify(
                        &self.init.elgamal_pk,
                        &row.commitment,
                        &row.sum_first,
                        &challenge,
                        sum_z,
                    ),
                    || format!("(e) sum proof failed {serial} {part:?} row {row_idx}"),
                );
            }
        }

        // Tally: recompute the homomorphic total and verify its opening.
        let m = self.init.params.num_options;
        let mut sums = vec![Ciphertext::IDENTITY; m];
        for (serial, code) in &vote_set.entries {
            let Some((part, row)) = self.locate_cast_row(*serial, code).first().copied() else {
                continue;
            };
            if let Some(ballot) = self.init.ballots.get(serial) {
                for (j, ct) in ballot.parts[part.index()][row]
                    .commitment
                    .iter()
                    .enumerate()
                {
                    sums[j] = sums[j].add(ct);
                }
            }
        }
        match (&self.snapshot.tally_opening, &self.snapshot.result) {
            (Some(opening), Some(result)) => {
                report.check(opening.len() == m && result.tally.len() == m, || {
                    "tally arity mismatch".into()
                });
                for (j, ((msg, rand), count)) in opening.iter().zip(&result.tally).enumerate() {
                    report.check(
                        elgamal::verify_opening(&self.init.elgamal_pk, &sums[j], msg, rand),
                        || format!("tally opening invalid for option {j}"),
                    );
                    report.check(msg.to_u64() == Some(*count), || {
                        format!("published count mismatch for option {j}")
                    });
                }
            }
            _ => report.check(false, || "tally opening or result missing".into()),
        }
        report
    }

    /// Runs the delegated checks (f)–(g) for voters who handed over their
    /// audit information, on top of the public checks.
    pub fn verify_delegated(&self, audits: &[AuditInfo]) -> AuditReport {
        let mut report = self.verify_public();
        let Some(vote_set) = &self.snapshot.vote_set else {
            return report;
        };
        for audit in audits {
            // (f) the submitted code matches the voter's record.
            report.check(
                vote_set.entries.get(&audit.serial) == Some(&audit.cast_code),
                || format!("(f) cast code of {} not in the tally set", audit.serial),
            );
            // (g) the opened unused part matches the printed ballot.
            let unused = audit.used_part.other();
            let Some(codes) = self
                .snapshot
                .decrypted_codes
                .get(&(audit.serial, unused.index() as u8))
            else {
                report.check(false, || {
                    format!("(g) no decrypted codes for {} unused part", audit.serial)
                });
                continue;
            };
            let Some(opened) = self
                .snapshot
                .openings
                .get(&(audit.serial, unused.index() as u8))
            else {
                report.check(false, || {
                    format!("(g) no openings for {} unused part", audit.serial)
                });
                continue;
            };
            for line in &audit.unused_part.lines {
                let Some(row) = codes.iter().position(|c| *c == line.vote_code) else {
                    report.check(false, || {
                        format!(
                            "(g) printed code for option {} of {} missing from BB",
                            line.option_index, audit.serial
                        )
                    });
                    continue;
                };
                // The opened row must encode exactly this option.
                let opened_row = &opened[row];
                let encoded = opened_row
                    .iter()
                    .position(|(bit, _)| bit.to_u64() == Some(1));
                report.check(encoded == Some(line.option_index), || {
                    format!(
                        "(g) ballot {} option {} maps to {:?} on the BB",
                        audit.serial, line.option_index, encoded
                    )
                });
            }
        }
        report
    }
}

/// Verifies a single voter's vote was recorded (check a voter can run
/// herself from any terminal): her code is in the tally set.
pub fn verify_vote_included(snapshot: &BbSnapshot, audit: &AuditInfo) -> bool {
    snapshot
        .vote_set
        .as_ref()
        .map(|vs| vs.entries.get(&audit.serial) == Some(&audit.cast_code))
        .unwrap_or(false)
}

/// The Scalar type re-exported for doc-link convenience.
pub type TallyOpening = Vec<(Scalar, Scalar)>;
