//! Auditors (§III-I): anyone can verify the complete election process from
//! the Bulletin Board, and voters can delegate their private checks
//! without revealing how they voted.
//!
//! Checks implemented (lettered as in the paper):
//! (a) within each opened ballot no two vote codes are equal;
//! (b) at most one submitted vote code per ballot part;
//! (c) at most one part used per ballot;
//! (d) all published commitment openings are valid *and* encode unit
//!     vectors;
//! (e) the zero-knowledge proofs of the used ballot parts are complete and
//!     valid under the voter-coin challenge;
//! (f) [delegated] submitted vote codes match what voters report;
//! (g) [delegated] unused-part openings match the voters' printed ballots.
//!
//! Plus the global checks: challenge recomputation from the voters' coins
//! and verification of the homomorphic tally opening against the result.
//!
//! The curve-heavy checks (d) and (e) take the **batch verification
//! path**: every opening and every Chaum–Pedersen equation is folded into
//! one multi-scalar multiplication
//! ([`elgamal::batch_verify_openings`] / [`zkp::cp_verify_batch`]); only
//! when a batch fails does the auditor fall back to per-item verification
//! — parallelized over the [`Pool`] — to name the culprits. The delegated
//! per-voter sweep is likewise spread over the pool; sub-reports merge in
//! voter order, so the report is deterministic for any thread count.

use ddemos_bb::BbSnapshot;
use ddemos_crypto::elgamal::{self, Ciphertext};
use ddemos_crypto::field::Scalar;
use ddemos_crypto::zkp;
use ddemos_protocol::ballot::AuditInfo;
use ddemos_protocol::exec::Pool;
use ddemos_protocol::initdata::BbInit;
use ddemos_protocol::{PartId, SerialNo};

/// Outcome of an audit.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Human-readable failures; empty means the election verifies.
    pub failures: Vec<String>,
    /// Number of individual checks that ran.
    pub checks_run: usize,
}

impl AuditReport {
    /// True iff no check failed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks_run += 1;
        if !ok {
            self.failures.push(msg());
        }
    }

    fn merge(&mut self, other: AuditReport) {
        self.checks_run += other.checks_run;
        self.failures.extend(other.failures);
    }
}

/// A pending curve-side opening check collected by pass (d):
/// the claim that `(bit, rand)` opens `ct`, plus where it came from.
struct OpeningInstance {
    serial: SerialNo,
    part: PartId,
    row: usize,
    ct: Ciphertext,
    bit: Scalar,
    rand: Scalar,
}

/// A pending curve-side proof check collected by pass (e).
struct ProofInstance {
    serial: SerialNo,
    part: PartId,
    row: usize,
    /// `"OR"` or `"sum"` — only used in failure messages.
    kind: &'static str,
    /// One CP equation pair per OR branch, one for a sum proof.
    instances: Vec<zkp::CpInstance>,
}

/// Verifies `items` with one random-combination sub-batch per pool worker
/// (the whole set is valid iff every sub-batch check passes, so the happy
/// path scales with the pool). Returns `None` when everything verified;
/// otherwise the per-item outcomes from `item_fn`, computed in parallel,
/// so the caller can name the culprits.
fn batched_verify<T: Sync>(
    pool: &Pool,
    items: &[T],
    batch_fn: impl Fn(&[T]) -> bool + Sync,
    item_fn: impl Fn(&T) -> bool + Sync,
) -> Option<Vec<bool>> {
    let sub_batches: Vec<&[T]> = items
        .chunks(items.len().div_ceil(pool.threads()).max(1))
        .collect();
    if pool
        .map(&sub_batches, |sub| batch_fn(sub))
        .into_iter()
        .all(|ok| ok)
    {
        return None;
    }
    Some(pool.map(items, item_fn))
}

/// The public auditor.
pub struct Auditor<'a> {
    init: &'a BbInit,
    snapshot: &'a BbSnapshot,
    pool: Pool,
}

impl<'a> Auditor<'a> {
    /// Creates an auditor over the published init data and a majority-read
    /// snapshot, on the default executor (`DDEMOS_THREADS` / available
    /// parallelism).
    pub fn new(init: &'a BbInit, snapshot: &'a BbSnapshot) -> Auditor<'a> {
        Auditor {
            init,
            snapshot,
            pool: Pool::from_env(),
        }
    }

    /// Sets the worker count for the fallback and delegated sweeps.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Auditor<'a> {
        self.pool = Pool::new(threads);
        self
    }

    fn locate_cast_row(
        &self,
        serial: SerialNo,
        code: &ddemos_crypto::votecode::VoteCode,
    ) -> Vec<(PartId, usize)> {
        let mut hits = Vec::new();
        for part in PartId::BOTH {
            if let Some(codes) = self
                .snapshot
                .decrypted_codes
                .get(&(serial, part.index() as u8))
            {
                for (row, c) in codes.iter().enumerate() {
                    if c == code {
                        hits.push((part, row));
                    }
                }
            }
        }
        hits
    }

    /// The init ballots' serials in ascending order (the underlying map is
    /// unordered; sorting keeps reports and parallel chunking
    /// deterministic).
    fn sorted_serials(&self) -> Vec<SerialNo> {
        let mut serials: Vec<SerialNo> = self.init.ballots.keys().copied().collect();
        serials.sort();
        serials
    }

    /// Runs the public checks (a)–(e) plus challenge and tally
    /// verification.
    pub fn verify_public(&self) -> AuditReport {
        let mut report = AuditReport::default();
        let Some(vote_set) = &self.snapshot.vote_set else {
            report.check(false, || "no final vote set published".into());
            return report;
        };
        let serials = self.sorted_serials();

        // (a) opened codes unique within each ballot (parallel over
        // ballots; one check per ballot).
        let duplicate_failures = self.pool.map(&serials, |&serial| {
            let mut codes = Vec::new();
            for part in PartId::BOTH {
                if let Some(c) = self
                    .snapshot
                    .decrypted_codes
                    .get(&(serial, part.index() as u8))
                {
                    codes.extend(c.iter().copied());
                }
            }
            let total = codes.len();
            codes.sort();
            codes.dedup();
            (codes.len() == total)
                .then_some(())
                .ok_or_else(|| format!("(a) duplicate vote codes within ballot {serial}"))
        });
        for outcome in duplicate_failures {
            report.check(outcome.is_ok(), || outcome.unwrap_err());
        }

        // (b)/(c) every cast code appears in exactly one row of one part.
        for (serial, code) in &vote_set.entries {
            let hits = self.locate_cast_row(*serial, code);
            report.check(hits.len() == 1, || {
                format!("(b/c) cast code of {serial} located {} times", hits.len())
            });
        }

        // Challenge recomputation from the voters' coins.
        let mut coins = Vec::new();
        for (serial, code) in &vote_set.entries {
            if let Some((part, _)) = self.locate_cast_row(*serial, code).first() {
                coins.push(part.coin());
            }
        }
        let mut ctx = Vec::new();
        ctx.extend_from_slice(&self.init.params.election_id.0);
        let challenge = zkp::challenge_from_coins(&ctx, &coins);
        report.check(self.snapshot.challenge == Some(challenge), || {
            "challenge does not match the voters' coins".into()
        });

        self.verify_openings(&mut report, vote_set, &serials);
        self.verify_proofs(&mut report, vote_set, &challenge);

        // Tally: recompute the homomorphic total and verify its opening.
        let m = self.init.params.num_options;
        let mut sums = vec![Ciphertext::IDENTITY; m];
        for (serial, code) in &vote_set.entries {
            let Some((part, row)) = self.locate_cast_row(*serial, code).first().copied() else {
                continue;
            };
            if let Some(ballot) = self.init.ballots.get(serial) {
                for (j, ct) in ballot.parts[part.index()][row]
                    .commitment
                    .iter()
                    .enumerate()
                {
                    sums[j] = sums[j].add(ct);
                }
            }
        }
        match (&self.snapshot.tally_opening, &self.snapshot.result) {
            (Some(opening), Some(result)) => {
                report.check(opening.len() == m && result.tally.len() == m, || {
                    "tally arity mismatch".into()
                });
                for (j, ((msg, rand), count)) in opening.iter().zip(&result.tally).enumerate() {
                    report.check(
                        elgamal::verify_opening(&self.init.elgamal_pk, &sums[j], msg, rand),
                        || format!("tally opening invalid for option {j}"),
                    );
                    report.check(msg.to_u64() == Some(*count), || {
                        format!("published count mismatch for option {j}")
                    });
                }
            }
            _ => report.check(false, || "tally opening or result missing".into()),
        }
        report
    }

    /// Check (d): openings valid and unit-vector shaped; coverage is the
    /// unused part of voted ballots and both parts of unvoted ballots.
    /// Structural and scalar-side checks run inline while the curve-side
    /// opening equations are collected, then one batched MSM replaces the
    /// per-opening verification (with a parallel per-item fallback that
    /// names the culprits when the batch fails).
    fn verify_openings(
        &self,
        report: &mut AuditReport,
        vote_set: &ddemos_protocol::posts::VoteSet,
        serials: &[SerialNo],
    ) {
        let mut instances: Vec<OpeningInstance> = Vec::new();
        for serial in serials {
            let ballot = &self.init.ballots[serial];
            let voted_part = vote_set
                .entries
                .get(serial)
                .and_then(|code| self.locate_cast_row(*serial, code).first().copied())
                .map(|(p, _)| p);
            for part in PartId::BOTH {
                let must_open = match voted_part {
                    Some(used) => part == used.other(),
                    None => true,
                };
                if !must_open {
                    continue;
                }
                let Some(opened) = self.snapshot.openings.get(&(*serial, part.index() as u8))
                else {
                    report.check(false, || {
                        format!("(d) missing openings for {serial} part {part:?}")
                    });
                    continue;
                };
                let rows = &ballot.parts[part.index()];
                report.check(opened.len() == rows.len(), || {
                    format!("(d) row count mismatch for {serial} part {part:?}")
                });
                for (row_idx, (opened_row, row)) in opened.iter().zip(rows).enumerate() {
                    // An opened row shorter than the commitment would let
                    // the zip below silently drop the tail unverified.
                    report.check(opened_row.len() == row.commitment.len(), || {
                        format!("(d) opening arity mismatch {serial} {part:?} row {row_idx}")
                    });
                    let mut ones = 0;
                    for (ct, (bit, rand)) in row.commitment.iter().zip(opened_row) {
                        instances.push(OpeningInstance {
                            serial: *serial,
                            part,
                            row: row_idx,
                            ct: *ct,
                            bit: *bit,
                            rand: *rand,
                        });
                        match bit.to_u64() {
                            Some(0) => {}
                            Some(1) => ones += 1,
                            _ => report.check(false, || {
                                format!("(d) non-bit plaintext {serial} {part:?} row {row_idx}")
                            }),
                        }
                    }
                    report.check(ones == 1, || {
                        format!("(d) row is not a unit vector {serial} {part:?} row {row_idx}")
                    });
                }
            }
        }
        let outcomes = batched_verify(
            &self.pool,
            &instances,
            |sub| {
                let items: Vec<(Ciphertext, Scalar, Scalar)> =
                    sub.iter().map(|i| (i.ct, i.bit, i.rand)).collect();
                elgamal::batch_verify_openings(&self.init.elgamal_pk, &items)
            },
            |inst| elgamal::verify_opening(&self.init.elgamal_pk, &inst.ct, &inst.bit, &inst.rand),
        );
        let Some(outcomes) = outcomes else {
            report.checks_run += instances.len();
            return;
        };
        for (inst, ok) in instances.iter().zip(outcomes) {
            report.check(ok, || {
                format!(
                    "(d) invalid opening {} {:?} row {}",
                    inst.serial, inst.part, inst.row
                )
            });
        }
    }

    /// Check (e): used-part ZK proofs complete and valid. Every OR branch
    /// and sum proof becomes a Chaum–Pedersen instance; one
    /// [`zkp::cp_verify_batch`] MSM verifies them all, with a parallel
    /// per-proof fallback on failure.
    fn verify_proofs(
        &self,
        report: &mut AuditReport,
        vote_set: &ddemos_protocol::posts::VoteSet,
        challenge: &Scalar,
    ) {
        let mut proofs: Vec<ProofInstance> = Vec::new();
        for (serial, code) in &vote_set.entries {
            let Some((part, _)) = self.locate_cast_row(*serial, code).first().copied() else {
                continue;
            };
            let Some(rows) = self
                .snapshot
                .zk_responses
                .get(&(*serial, part.index() as u8))
            else {
                report.check(false, || {
                    format!("(e) missing ZK responses for {serial} used part {part:?}")
                });
                continue;
            };
            let Some(ballot) = self.init.ballots.get(serial) else {
                continue;
            };
            let bb_rows = &ballot.parts[part.index()];
            report.check(rows.len() == bb_rows.len(), || {
                format!("(e) ZK row count mismatch for {serial}")
            });
            for (row_idx, ((responses, sum_z), row)) in rows.iter().zip(bb_rows).enumerate() {
                // A response or first-move list shorter than the commitment
                // would let the zip below silently drop the tail's OR
                // proofs (e.g. a malicious EA publishing short `or_first`).
                report.check(responses.len() == row.commitment.len(), || {
                    format!("(e) ZK response arity mismatch {serial} {part:?} row {row_idx}")
                });
                report.check(row.or_first.len() == row.commitment.len(), || {
                    format!("(e) proof first-move arity mismatch {serial} {part:?} row {row_idx}")
                });
                for ((resp, ct), first) in responses.iter().zip(&row.commitment).zip(&row.or_first)
                {
                    match zkp::or_instances(ct, first, resp, challenge) {
                        Some(pair) => proofs.push(ProofInstance {
                            serial: *serial,
                            part,
                            row: row_idx,
                            kind: "OR",
                            instances: pair.to_vec(),
                        }),
                        // Split challenges that do not recombine fail the
                        // proof outright; nothing to batch.
                        None => report.check(false, || {
                            format!("(e) OR proof failed {serial} {part:?} row {row_idx}")
                        }),
                    }
                }
                proofs.push(ProofInstance {
                    serial: *serial,
                    part,
                    row: row_idx,
                    kind: "sum",
                    instances: vec![zkp::sum_instance(
                        &row.commitment,
                        &row.sum_first,
                        challenge,
                        sum_z,
                    )],
                });
            }
        }
        let outcomes = batched_verify(
            &self.pool,
            &proofs,
            |sub| {
                let instances: Vec<zkp::CpInstance> = sub
                    .iter()
                    .flat_map(|p| p.instances.iter().copied())
                    .collect();
                zkp::cp_verify_batch(&self.init.elgamal_pk, &instances)
            },
            |proof| {
                proof.instances.iter().all(|i| {
                    zkp::cp_verify(&self.init.elgamal_pk, &i.a, &i.b, &i.first, &i.c, &i.z)
                })
            },
        );
        let Some(outcomes) = outcomes else {
            report.checks_run += proofs.len();
            return;
        };
        for (proof, ok) in proofs.iter().zip(outcomes) {
            report.check(ok, || {
                format!(
                    "(e) {} proof failed {} {:?} row {}",
                    proof.kind, proof.serial, proof.part, proof.row
                )
            });
        }
    }

    /// Runs the delegated checks (f)–(g) for voters who handed over their
    /// audit information, on top of the public checks. The per-voter sweep
    /// is spread over the pool; sub-reports merge in voter order.
    pub fn verify_delegated(&self, audits: &[AuditInfo]) -> AuditReport {
        let mut report = self.verify_public();
        let Some(vote_set) = &self.snapshot.vote_set else {
            return report;
        };
        let sub_reports = self.pool.map(audits, |audit| {
            let mut sub = AuditReport::default();
            // (f) the submitted code matches the voter's record.
            sub.check(
                vote_set.entries.get(&audit.serial) == Some(&audit.cast_code),
                || format!("(f) cast code of {} not in the tally set", audit.serial),
            );
            // (g) the opened unused part matches the printed ballot.
            let unused = audit.used_part.other();
            let Some(codes) = self
                .snapshot
                .decrypted_codes
                .get(&(audit.serial, unused.index() as u8))
            else {
                sub.check(false, || {
                    format!("(g) no decrypted codes for {} unused part", audit.serial)
                });
                return sub;
            };
            let Some(opened) = self
                .snapshot
                .openings
                .get(&(audit.serial, unused.index() as u8))
            else {
                sub.check(false, || {
                    format!("(g) no openings for {} unused part", audit.serial)
                });
                return sub;
            };
            for line in &audit.unused_part.lines {
                let Some(row) = codes.iter().position(|c| *c == line.vote_code) else {
                    sub.check(false, || {
                        format!(
                            "(g) printed code for option {} of {} missing from BB",
                            line.option_index, audit.serial
                        )
                    });
                    continue;
                };
                // The opened row must encode exactly this option.
                let opened_row = &opened[row];
                let encoded = opened_row
                    .iter()
                    .position(|(bit, _)| bit.to_u64() == Some(1));
                sub.check(encoded == Some(line.option_index), || {
                    format!(
                        "(g) ballot {} option {} maps to {:?} on the BB",
                        audit.serial, line.option_index, encoded
                    )
                });
            }
            sub
        });
        for sub in sub_reports {
            report.merge(sub);
        }
        report
    }
}

/// Verifies a single voter's vote was recorded (check a voter can run
/// herself from any terminal): her code is in the tally set.
pub fn verify_vote_included(snapshot: &BbSnapshot, audit: &AuditInfo) -> bool {
    snapshot
        .vote_set
        .as_ref()
        .map(|vs| vs.entries.get(&audit.serial) == Some(&audit.cast_code))
        .unwrap_or(false)
}

/// The Scalar type re-exported for doc-link convenience.
pub type TallyOpening = Vec<(Scalar, Scalar)>;
