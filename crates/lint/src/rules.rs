//! The five rule classes.
//!
//! Each rule is a pure function over one or two lexed [`SourceFile`]s and
//! returns violations; scoping (which crates a rule applies to) lives in
//! the workspace walker, not here, so fixture tests can drive each rule
//! directly.

use crate::lexer::{skip_balanced, SourceFile, Tok};

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Violation {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
    /// Raw text of the flagged line, used for allowlist matching.
    pub line_text: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

pub const RULE_HASH_ITER: &str = "hash-iter";
pub const RULE_WALL_CLOCK: &str = "wall-clock";
pub const RULE_METRICS_CLOCK: &str = "metrics-clock";
pub const RULE_PANIC: &str = "panic";
pub const RULE_CODEC: &str = "codec-exhaustive";
pub const RULE_COMMIT_ORDER: &str = "commit-order";
pub const RULE_BLOCKING_RECV: &str = "blocking-recv";
pub const RULE_SCALAR_VERIFY: &str = "scalar-verify";

fn violation(sf: &SourceFile, line: u32, rule: &'static str, msg: String) -> Violation {
    Violation {
        path: sf.path.clone(),
        line,
        rule,
        msg,
        line_text: sf.line_text(line).to_string(),
    }
}

// ---------------------------------------------------------------------
// Rule 1: determinism — no HashMap/HashSet iteration in state crates.
// ---------------------------------------------------------------------

/// Methods whose results observe hash iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Collects identifiers bound to a `HashMap`/`HashSet` type in this file:
/// `name: HashMap<…>` (fields, params, annotated lets — including through
/// wrappers like `Arc<HashMap<…>>`) and `let [mut] name = HashMap::…`.
fn hash_names(sf: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    let toks = &sf.toks;
    for i in 0..toks.len() {
        let Some(name) = sf.ident(i) else { continue };
        // `name : … HashMap` within a short lookahead window that stops at
        // tokens which end a type ascription.
        if sf.punct(i + 1, ':') && !sf.punct(i + 2, ':') {
            let mut j = i + 2;
            let limit = (i + 12).min(toks.len());
            while j < limit {
                match &toks[j].kind {
                    Tok::Ident(s) if s == "HashMap" || s == "HashSet" => {
                        names.push(name.to_string());
                        break;
                    }
                    Tok::Punct(',' | ';' | '=' | '{' | '}' | ')') => break,
                    _ => j += 1,
                }
            }
        }
        // `let [mut] name = HashMap::…`
        if name == "let" {
            let mut j = i + 1;
            if sf.ident(j) == Some("mut") {
                j += 1;
            }
            if let Some(bound) = sf.ident(j) {
                if sf.punct(j + 1, '=')
                    && matches!(sf.ident(j + 2), Some("HashMap") | Some("HashSet"))
                {
                    names.push(bound.to_string());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

pub fn check_hash_iter(sf: &SourceFile) -> Vec<Violation> {
    let names = hash_names(sf);
    let mut out = Vec::new();
    let toks = &sf.toks;
    let is_hash = |i: usize| sf.ident(i).is_some_and(|s| names.iter().any(|n| n == s));
    for (i, tok) in toks.iter().enumerate() {
        if sf.test_mask[i] {
            continue;
        }
        let line = tok.line;
        // `name.iter()` / `self.name.keys()` …
        if let Some(m) = sf.ident(i) {
            if ITER_METHODS.contains(&m)
                && sf.punct(i + 1, '(')
                && i >= 2
                && sf.punct(i - 1, '.')
                && is_hash(i - 2)
            {
                if !sf.allowed(RULE_HASH_ITER, line) {
                    out.push(violation(
                        sf,
                        line,
                        RULE_HASH_ITER,
                        format!(
                            "`{}.{}()` iterates a HashMap/HashSet in a protocol-state crate; \
                             order is nondeterministic — use BTreeMap/BTreeSet or justify with \
                             `// lint:allow(hash-iter, reason)`",
                            sf.ident(i - 2).unwrap_or("?"),
                            m
                        ),
                    ));
                }
                continue;
            }
        }
        // `for pat in [&mut] name {` — scan from `for` to `in`, then look
        // at the iterated expression up to the body `{`.
        if sf.ident(i) == Some("for") {
            let mut j = i + 1;
            // Skip the pattern: advance to the matching `in`, stepping over
            // balanced parens/brackets used in tuple/slice patterns.
            while j < toks.len() {
                match &toks[j].kind {
                    Tok::Ident(s) if s == "in" => break,
                    Tok::Punct('(') => match skip_balanced(toks, j, '(', ')') {
                        Some(e) => j = e + 1,
                        None => break,
                    },
                    Tok::Punct('{') => break, // not a for-in after all
                    _ => j += 1,
                }
            }
            if sf.ident(j) != Some("in") {
                continue;
            }
            let mut k = j + 1;
            while k < toks.len() && !sf.punct(k, '{') {
                if is_hash(k) && !(k >= 1 && sf.punct(k - 1, '.')) {
                    let line = toks[k].line;
                    if !sf.allowed(RULE_HASH_ITER, line) {
                        out.push(violation(
                            sf,
                            line,
                            RULE_HASH_ITER,
                            format!(
                                "`for … in {}` iterates a HashMap/HashSet in a protocol-state \
                                 crate; order is nondeterministic — use BTreeMap/BTreeSet or \
                                 justify with `// lint:allow(hash-iter, reason)`",
                                sf.ident(k).unwrap_or("?")
                            ),
                        ));
                    }
                    break;
                }
                k += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 2: clock containment.
// ---------------------------------------------------------------------

pub fn check_wall_clock(sf: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &sf.toks;
    for (i, tok) in toks.iter().enumerate() {
        if sf.test_mask[i] {
            continue;
        }
        let line = tok.line;
        let flagged = match sf.ident(i) {
            // `Instant::now` — `Instant` followed by `::now`.
            Some("Instant")
                if sf.punct(i + 1, ':')
                    && sf.punct(i + 2, ':')
                    && sf.ident(i + 3) == Some("now") =>
            {
                Some("Instant::now()")
            }
            // Any value-position `SystemTime::…` path.
            Some("SystemTime") if sf.punct(i + 1, ':') && sf.punct(i + 2, ':') => {
                Some("SystemTime")
            }
            // `thread::sleep` / `std::thread::sleep`.
            Some("sleep")
                if i >= 3
                    && sf.punct(i - 1, ':')
                    && sf.punct(i - 2, ':')
                    && sf.ident(i - 3) == Some("thread") =>
            {
                Some("thread::sleep")
            }
            _ => None,
        };
        if let Some(what) = flagged {
            if !sf.allowed(RULE_WALL_CLOCK, line) {
                out.push(violation(
                    sf,
                    line,
                    RULE_WALL_CLOCK,
                    format!(
                        "{what} outside protocol/src/clock.rs, the net crate, benches, or \
                         #[cfg(test)] code; cores must see time only via the `now_ms` step \
                         input — route through GlobalClock or justify with \
                         `// lint:allow(wall-clock, reason)`"
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 2b: metrics clock hygiene.
// ---------------------------------------------------------------------

/// Identifiers that mark a wall-clock reading inside a recorder call.
const METRICS_WALL_TOKENS: &[&str] = &["Instant", "SystemTime", "elapsed"];

/// Flags `.observe(…)` / `.observe_since(…)` calls whose arguments carry
/// a wall-clock reading (`Instant`, `SystemTime`, `.elapsed()`). Metric
/// durations must come from the recorder's own time source
/// ([`Recorder::now_ns`] start stamps or `scoped_ns` guards): a recorder
/// attached to the virtual clock charges modelled time, and one raw
/// `Instant` delta fed into it silently breaks the seed-deterministic
/// snapshot the fingerprint sweep asserts on.
pub fn check_metrics_clock(sf: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &sf.toks;
    for i in 0..toks.len() {
        if sf.test_mask[i] {
            continue;
        }
        let Some(m) = sf.ident(i) else { continue };
        if (m != "observe" && m != "observe_since")
            || i == 0
            || !sf.punct(i - 1, '.')
            || !sf.punct(i + 1, '(')
        {
            continue;
        }
        let Some(end) = skip_balanced(toks, i + 1, '(', ')') else {
            continue;
        };
        for j in (i + 2)..end {
            let Some(id) = sf.ident(j) else { continue };
            if METRICS_WALL_TOKENS.contains(&id) {
                let line = toks[i].line;
                if !sf.allowed(RULE_METRICS_CLOCK, line) {
                    out.push(violation(
                        sf,
                        line,
                        RULE_METRICS_CLOCK,
                        format!(
                            "`.{m}(…{id}…)` feeds a wall-clock reading into a recorder; metric \
                             durations must come from the recorder's own time source \
                             (`Recorder::now_ns` / `observe_since` / `scoped_ns`) so \
                             virtual-domain snapshots replay byte-identically — or justify with \
                             `// lint:allow(metrics-clock, reason)`"
                        ),
                    ));
                }
                break;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 3: panic-freedom.
// ---------------------------------------------------------------------

/// Keywords that may directly precede `[` without it being an index
/// expression (`let [a, b] = …`, `for [x] in …`, `return [..]`).
const NON_RECEIVER_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "match", "if", "else", "move", "box", "dyn", "as",
    "break", "continue", "unsafe", "loop", "while", "for", "where", "impl", "fn", "pub", "use",
    "mod", "struct", "enum", "const", "static", "type", "trait",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check_panic(sf: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &sf.toks;
    let mut flag = |i: usize, what: &str| {
        let line = toks[i].line;
        if !sf.allowed(RULE_PANIC, line) {
            out.push(violation(
                sf,
                line,
                RULE_PANIC,
                format!(
                    "{what} on a core/message-path crate; return an error or record the \
                     justified exception in crates/lint/allow.list"
                ),
            ));
        }
    };
    for i in 0..toks.len() {
        if sf.test_mask[i] {
            continue;
        }
        match &toks[i].kind {
            Tok::Ident(s)
                if (s == "unwrap" || s == "expect")
                    && i >= 1
                    && sf.punct(i - 1, '.')
                    && sf.punct(i + 1, '(') =>
            {
                flag(i, &format!("`.{s}(…)`"));
            }
            Tok::Ident(s) if PANIC_MACROS.contains(&s.as_str()) && sf.punct(i + 1, '!') => {
                flag(i, &format!("`{s}!`"));
            }
            Tok::Punct('[') if i >= 1 => {
                let receiver = match &toks[i - 1].kind {
                    Tok::Ident(s) => !NON_RECEIVER_KEYWORDS.contains(&s.as_str()),
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('?') => true,
                    _ => false,
                };
                if receiver {
                    flag(i, "`[…]` indexing (can panic out of bounds)");
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 4: codec exhaustiveness.
// ---------------------------------------------------------------------

/// Parses the variant names of `pub enum <name>` from `sf`.
pub fn enum_variants(sf: &SourceFile, name: &str) -> Option<(u32, Vec<String>)> {
    let toks = &sf.toks;
    for i in 0..toks.len() {
        if sf.ident(i) == Some("enum") && sf.ident(i + 1) == Some(name) && sf.punct(i + 2, '{') {
            let end = skip_balanced(toks, i + 2, '{', '}')?;
            let mut variants = Vec::new();
            let mut j = i + 3;
            while j < end {
                match &toks[j].kind {
                    // Skip attributes and doc comments on variants.
                    Tok::Punct('#') if sf.punct(j + 1, '[') => {
                        j = skip_balanced(toks, j + 1, '[', ']').unwrap_or(end) + 1;
                    }
                    Tok::Ident(_) => {
                        variants.push(sf.ident(j).unwrap_or("").to_string());
                        // Skip the variant's payload to the next `,` at
                        // this depth.
                        let mut k = j + 1;
                        while k < end {
                            match &toks[k].kind {
                                Tok::Punct('{') => {
                                    k = skip_balanced(toks, k, '{', '}').unwrap_or(end) + 1
                                }
                                Tok::Punct('(') => {
                                    k = skip_balanced(toks, k, '(', ')').unwrap_or(end) + 1
                                }
                                Tok::Punct(',') => break,
                                _ => k += 1,
                            }
                        }
                        j = k + 1;
                    }
                    _ => j += 1,
                }
            }
            return Some((toks[i].line, variants));
        }
    }
    None
}

/// Returns the token range (exclusive of braces) of `fn <name>`'s body.
fn fn_body(sf: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let toks = &sf.toks;
    for i in 0..toks.len() {
        if sf.ident(i) == Some("fn") && sf.ident(i + 1) == Some(name) {
            let mut j = i + 2;
            while j < toks.len() && !sf.punct(j, '{') {
                j += 1;
            }
            let end = skip_balanced(toks, j, '{', '}')?;
            return Some((j + 1, end));
        }
    }
    None
}

/// Whether `Enum::Variant` appears within token range `[start, end)`.
fn path_used(sf: &SourceFile, start: usize, end: usize, enum_name: &str, variant: &str) -> bool {
    for i in start..end.min(sf.toks.len()) {
        if sf.ident(i) == Some(enum_name)
            && sf.punct(i + 1, ':')
            && sf.punct(i + 2, ':')
            && sf.ident(i + 3) == Some(variant)
        {
            return true;
        }
    }
    false
}

/// Checks that every variant of `enum_name` (in `messages`) appears in
/// each of `fns` (in `codec`), and that `count_const` (if present in
/// `codec`) equals the variant count — so the variant-indexed roundtrip
/// test actually samples every variant.
pub fn check_codec(
    messages: &SourceFile,
    codec: &SourceFile,
    enum_name: &str,
    fns: &[&str],
    count_const: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some((enum_line, variants)) = enum_variants(messages, enum_name) else {
        out.push(violation(
            messages,
            1,
            RULE_CODEC,
            format!("enum `{enum_name}` not found"),
        ));
        return out;
    };
    for f in fns {
        let Some((start, end)) = fn_body(codec, f) else {
            out.push(violation(
                codec,
                1,
                RULE_CODEC,
                format!("fn `{f}` not found (needed for `{enum_name}` coverage)"),
            ));
            continue;
        };
        for v in &variants {
            if !path_used(codec, start, end, enum_name, v) {
                out.push(violation(
                    messages,
                    enum_line,
                    RULE_CODEC,
                    format!(
                        "`{enum_name}::{v}` is not handled in `{f}` — a new message variant \
                         must get wire codec + roundtrip coverage before it ships"
                    ),
                ));
            }
        }
    }
    // `const MSG_VARIANTS: u32 = N;` must track the enum.
    for i in 0..codec.toks.len() {
        if codec.ident(i) == Some(count_const) {
            let mut j = i + 1;
            while j < codec.toks.len() && !codec.punct(j, '=') && !codec.punct(j, ';') {
                j += 1;
            }
            if let Some(Tok::Num(n)) = codec.toks.get(j + 1).map(|t| &t.kind) {
                let declared: u32 = n.parse().unwrap_or(0);
                if declared != variants.len() as u32 {
                    out.push(violation(
                        codec,
                        codec.toks[i].line,
                        RULE_CODEC,
                        format!(
                            "`{count_const}` is {declared} but `{enum_name}` has {} variants; \
                             the roundtrip sweep is not exhaustive",
                            variants.len()
                        ),
                    ));
                }
            }
            break;
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 5: durable-before-visible.
// ---------------------------------------------------------------------

/// Within each function body: once a `Journal` output has been pushed
/// (`self.jlog(…)` or a literal `…::Journal(…)`), no visible output
/// (`self.send/multicast/reply(…)` or `…::Send/Reply/Deliver`) may follow
/// until a commit (`self.persist(…)` or `…::Commit`).
pub fn check_commit_order(sf: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &sf.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if sf.ident(i) == Some("fn") && sf.ident(i + 1).is_some() {
            if let Some((start, end)) = {
                let mut j = i + 2;
                while j < toks.len() && !sf.punct(j, '{') && !sf.punct(j, ';') {
                    j += 1;
                }
                if sf.punct(j, '{') {
                    skip_balanced(toks, j, '{', '}').map(|e| (j + 1, e))
                } else {
                    None
                }
            } {
                if !sf.test_mask[i] {
                    scan_commit_order(sf, i + 1, start, end, &mut out);
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn scan_commit_order(
    sf: &SourceFile,
    fn_name_idx: usize,
    start: usize,
    end: usize,
    out: &mut Vec<Violation>,
) {
    let fn_name = sf.ident(fn_name_idx).unwrap_or("?").to_string();
    let mut pending: Option<u32> = None; // line of the un-committed Journal
    for i in start..end {
        let Some(id) = sf.ident(i) else { continue };
        let after_path = i >= 2 && sf.punct(i - 1, ':') && sf.punct(i - 2, ':');
        let method_call = i >= 1 && sf.punct(i - 1, '.') && sf.punct(i + 1, '(');
        match id {
            "jlog" if method_call => pending = Some(sf.toks[i].line),
            "Journal" if after_path => pending = Some(sf.toks[i].line),
            "persist" if method_call => pending = None,
            "Commit" if after_path => pending = None,
            "send" | "multicast" | "reply" if method_call => {
                emit_commit_violation(sf, i, &fn_name, &mut pending, out, id);
            }
            "Send" | "Reply" | "Deliver" if after_path => {
                emit_commit_violation(sf, i, &fn_name, &mut pending, out, id);
            }
            _ => {}
        }
    }
}

fn emit_commit_violation(
    sf: &SourceFile,
    i: usize,
    fn_name: &str,
    pending: &mut Option<u32>,
    out: &mut Vec<Violation>,
    what: &str,
) {
    if let Some(jline) = *pending {
        let line = sf.toks[i].line;
        if !sf.allowed(RULE_COMMIT_ORDER, line) {
            out.push(violation(
                sf,
                line,
                RULE_COMMIT_ORDER,
                format!(
                    "`{fn_name}` emits visible output `{what}` after the Journal pushed on \
                     line {jline} without an intervening Commit; a crash here would show \
                     peers state the replica never durably logged"
                ),
            ));
        }
        *pending = None; // one diagnostic per journal record is enough
    }
}

// ---------------------------------------------------------------------
// Rule 6: the event loop never blocks on a channel.
// ---------------------------------------------------------------------

/// Flags `.recv(…)` / `.recv_timeout(…)` method calls. Scoped (by the
/// workspace walker) to the event-loop module: the readiness loop owns
/// every connection in its process, so one blocking channel receive
/// there stalls all of them — waits must go through `Poller::wait`.
pub fn check_blocking_recv(sf: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in sf.toks.iter().enumerate() {
        if sf.test_mask[i] {
            continue;
        }
        let Some(name) = sf.ident(i) else { continue };
        if (name == "recv" || name == "recv_timeout") && i >= 1 && sf.punct(i - 1, '.') {
            let line = tok.line;
            if !sf.allowed(RULE_BLOCKING_RECV, line) {
                out.push(violation(
                    sf,
                    line,
                    RULE_BLOCKING_RECV,
                    format!(
                        "`.{name}(…)` inside the event-loop module blocks the readiness \
                         loop and every connection it owns; all waiting must go through \
                         the poller — move the blocking call behind an endpoint adapter \
                         or justify with `// lint:allow(blocking-recv, reason)`"
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 7: replica message paths verify signatures batch-first.
// ---------------------------------------------------------------------

/// Flags one-at-a-time signature verification — `.verify(…)` /
/// `::verify(…)` calls — on the VC/BB message-path crates. Those paths
/// must go through `ddemos_crypto::mverify::MsgVerifier` (cache + per-peer
/// tables + one-MSM batches); a scalar `verify` there silently reverts a
/// replica's hot path to one group ladder per signature. Setup and audit
/// paths justify themselves with `// lint:allow(scalar-verify, reason)`.
pub fn check_scalar_verify(sf: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in sf.toks.iter().enumerate() {
        if sf.test_mask[i] {
            continue;
        }
        let Some(name) = sf.ident(i) else { continue };
        // `x.verify(…)` or `Type::verify(…)` — the exact `verify` ident in
        // call position. Batch entry points (`verify_batch`,
        // `cp_verify_batch`, `batch_verify_openings`, `or_verify`, …) are
        // different identifiers and pass.
        if name != "verify" || !sf.punct(i + 1, '(') {
            continue;
        }
        let method = i >= 1 && sf.punct(i - 1, '.');
        let assoc = i >= 2 && sf.punct(i - 1, ':') && sf.punct(i - 2, ':');
        if !(method || assoc) {
            continue;
        }
        let line = tok.line;
        if !sf.allowed(RULE_SCALAR_VERIFY, line) {
            out.push(violation(
                sf,
                line,
                RULE_SCALAR_VERIFY,
                "scalar signature verification on a replica message path; route it \
                 through `mverify::MsgVerifier` (check/check_share/check_batch) so it \
                 hits the verified cache and the one-MSM batch, or justify a setup/audit \
                 call with `// lint:allow(scalar-verify, reason)`"
                    .to_string(),
            ));
        }
    }
    out
}
