//! `ddemos-lint` CLI: scan the workspace, print `file:line` diagnostics,
//! exit non-zero on any violation. Run from the workspace root (or pass
//! the root as the first argument), e.g. `cargo run -p ddemos-lint --release`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let report = match ddemos_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "ddemos-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.msg);
        if !v.line_text.is_empty() {
            println!("    {}", v.line_text.trim());
        }
    }
    if report.clean() {
        println!(
            "ddemos-lint: {} files scanned, no violations",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "ddemos-lint: {} violation(s) across {} files scanned",
            report.violations.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
