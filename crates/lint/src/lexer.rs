//! A comment/string/raw-string-aware Rust lexer.
//!
//! The container has no registry access, so this crate cannot use `syn`;
//! the rules instead run over a flat token stream that is exact about the
//! only things that matter for them: what is code versus comment/literal
//! text, which line each token sits on, which tokens live inside
//! `#[cfg(test)]`/`#[test]` items, and which lines carry a
//! `// lint:allow(rule, reason)` annotation.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`foo`, `let`, `HashMap`).
    Ident(String),
    /// A single punctuation byte (`.`, `:`, `[`, ...).
    Punct(char),
    /// A numeric literal; the raw text is kept so rules can read counts.
    Num(String),
    /// Any string literal (`"…"`, `r#"…"#`, `b"…"`); contents dropped.
    Str,
    /// A character literal (`'x'`, `'\n'`).
    Char,
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

/// An inline suppression: `// lint:allow(rule, reason)`. The annotation
/// covers violations on its own line and on the line directly below it,
/// so it can trail the flagged expression or sit on its own line above.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: u32,
    pub rule: String,
}

/// A fully lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (used in diagnostics and allowlist match).
    pub path: String,
    pub toks: Vec<Token>,
    pub allows: Vec<Allow>,
    /// `test_mask[i]` is true when token `i` is inside a `#[cfg(test)]`
    /// or `#[test]`-attributed item.
    pub test_mask: Vec<bool>,
    /// Raw source lines, for allowlist substring matching.
    pub lines: Vec<String>,
}

impl SourceFile {
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let (toks, allows) = lex(src);
        let test_mask = test_mask(&toks);
        SourceFile {
            path: path.to_string(),
            toks,
            allows,
            test_mask,
            lines: src.lines().map(|l| l.to_string()).collect(),
        }
    }

    /// Whether a `lint:allow(rule, …)` annotation covers `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }

    /// The raw text of 1-indexed `line` (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    /// The identifier text of token `i`, if it is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.kind) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether token `i` is the punctuation `c`.
    pub fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.toks.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into tokens and allow-annotations.
fn lex(src: &str) -> (Vec<Token>, Vec<Allow>) {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                if let Some(pos) = text.find("lint:allow(") {
                    let rest = &text[pos + "lint:allow(".len()..];
                    let end = rest.find([',', ')']).unwrap_or(rest.len());
                    allows.push(Allow {
                        line,
                        rule: rest[..end].trim().to_string(),
                    });
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment; Rust block comments nest.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let tline = line;
                i = skip_string(b, i, &mut line);
                toks.push(Token {
                    kind: Tok::Str,
                    line: tline,
                });
            }
            b'\'' => {
                // Char literal or lifetime.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    // Escaped char literal: skip to the closing quote.
                    let tline = line;
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    toks.push(Token {
                        kind: Tok::Char,
                        line: tline,
                    });
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    toks.push(Token {
                        kind: Tok::Char,
                        line,
                    });
                    i += 3;
                } else {
                    // Lifetime: consume the tick and the identifier.
                    i += 1;
                    while i < b.len() && is_ident_cont(b[i]) {
                        i += 1;
                    }
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (is_ident_cont(b[i])) {
                    i += 1;
                }
                toks.push(Token {
                    kind: Tok::Num(src[start..i].to_string()),
                    line,
                });
            }
            _ if is_ident_start(c) => {
                // Raw / byte string prefixes take priority over identifiers.
                if let Some(next) = raw_string_start(b, i) {
                    let tline = line;
                    i = next(b, i, &mut line);
                    toks.push(Token {
                        kind: Tok::Str,
                        line: tline,
                    });
                    continue;
                }
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                toks.push(Token {
                    kind: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                toks.push(Token {
                    kind: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    (toks, allows)
}

type StringSkipper = fn(&[u8], usize, &mut u32) -> usize;

/// If position `i` begins a raw or byte string (`r"`, `r#`, `b"`, `br"`,
/// `br#`), returns the skipper for it.
fn raw_string_start(b: &[u8], i: usize) -> Option<StringSkipper> {
    let rest = &b[i..];
    if rest.starts_with(b"r\"") || rest.starts_with(b"r#\"") || rest.starts_with(b"r##") {
        return Some(skip_raw_string);
    }
    if rest.starts_with(b"br\"") || rest.starts_with(b"br#") {
        return Some(skip_raw_string);
    }
    if rest.starts_with(b"b\"") {
        return Some(|b, i, line| skip_string(b, i + 1, line));
    }
    None
}

/// Skips a normal (escaped) string starting at the opening quote at `i`;
/// returns the index just past the closing quote.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut i = i + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string (`r#"…"#`, `br"…"`) starting at the `r`/`b`.
fn skip_raw_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut i = i;
    if b[i] == b'b' {
        i += 1;
    }
    i += 1; // the 'r'
    let mut hashes = 0;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // the opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Marks token ranges covered by `#[cfg(test)]` / `#[test]` / `#[bench]`
/// attributed items (the attribute, any stacked attributes after it, and
/// the item's balanced `{…}` body or trailing `;`).
fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if matches!(toks[i].kind, Tok::Punct('#'))
            && matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('[')))
        {
            let attr_end = match skip_balanced(toks, i + 1, '[', ']') {
                Some(e) => e,
                None => break,
            };
            if attr_is_test(&toks[i..=attr_end]) {
                let item_end = item_extent(toks, attr_end + 1).unwrap_or(toks.len() - 1);
                for m in mask.iter_mut().take(item_end + 1).skip(i) {
                    *m = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Whether an attribute token slice (`#[…]`) gates on test/bench builds.
/// `#[cfg(not(test))]` gates the other way and is NOT treated as test.
fn attr_is_test(attr: &[Token]) -> bool {
    let mut saw_test = false;
    let mut saw_not = false;
    for t in attr {
        if let Tok::Ident(s) = &t.kind {
            match s.as_str() {
                "test" | "bench" => saw_test = true,
                "not" => saw_not = true,
                _ => {}
            }
        }
    }
    saw_test && !saw_not
}

/// Given the token index just past an attribute, returns the index of the
/// last token of the annotated item: further attributes are skipped, then
/// everything through the first balanced `{…}` block or a top-level `;`.
fn item_extent(toks: &[Token], mut i: usize) -> Option<usize> {
    // Skip stacked attributes.
    while i + 1 < toks.len()
        && matches!(toks[i].kind, Tok::Punct('#'))
        && matches!(toks[i + 1].kind, Tok::Punct('['))
    {
        i = skip_balanced(toks, i + 1, '[', ']')? + 1;
    }
    let mut j = i;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Punct('{') => return skip_balanced(toks, j, '{', '}'),
            Tok::Punct(';') => return Some(j),
            _ => j += 1,
        }
    }
    Some(toks.len().saturating_sub(1))
}

/// With `toks[start]` being the `open` delimiter, returns the index of the
/// matching `close` delimiter.
pub fn skip_balanced(toks: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(start) {
        if let Tok::Punct(p) = t.kind {
            if p == open {
                depth += 1;
            } else if p == close {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_strings_and_lifetimes_are_skipped() {
        let src = r##"
// HashMap in a comment
/* HashMap /* nested */ still comment */
fn f<'a>(x: &'a str) -> char {
    let _s = "HashMap .iter()";
    let _r = r#"Instant::now()"#;
    let _b = b"bytes";
    'x'
}
"##;
        let sf = SourceFile::parse("t.rs", src);
        let idents: Vec<&str> = sf
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(!idents.contains(&"HashMap"));
        assert!(!idents.contains(&"Instant"));
        assert!(idents.contains(&"str"));
        // The lifetime 'a produced no Char token; 'x' did.
        assert_eq!(sf.toks.iter().filter(|t| t.kind == Tok::Char).count(), 1);
    }

    #[test]
    fn allow_annotations_are_collected() {
        let src = "fn f() {\n    // lint:allow(hash-iter, fixed scan order is fine here)\n    x.iter();\n}\n";
        let sf = SourceFile::parse("t.rs", src);
        assert!(sf.allowed("hash-iter", 2));
        assert!(sf.allowed("hash-iter", 3));
        assert!(!sf.allowed("hash-iter", 4));
        assert!(!sf.allowed("wall-clock", 3));
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn live2() {}\n";
        let sf = SourceFile::parse("t.rs", src);
        for (i, t) in sf.toks.iter().enumerate() {
            if let Tok::Ident(s) = &t.kind {
                if s == "b" || s == "tests" {
                    assert!(sf.test_mask[i], "token {s} should be masked");
                }
                if s == "live" || s == "live2" || s == "a" {
                    assert!(!sf.test_mask[i], "token {s} should not be masked");
                }
            }
        }
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn live() { a.unwrap(); }\n";
        let sf = SourceFile::parse("t.rs", src);
        assert!(sf.test_mask.iter().all(|&m| !m));
    }
}
