//! `ddemos-lint` — the workspace invariant checker.
//!
//! The determinism proofs this repo leans on (byte-identical fingerprint
//! sweeps, replay-identical recovery, the cross-driver step-trace
//! equivalence) silently assume three things no test asserts directly:
//! protocol state is never iterated in hash order, wall-clock time never
//! reaches a core except through the `now_ms` step input, and no panic
//! ever unwinds a replica on a message path. This crate makes those
//! conventions (plus codec exhaustiveness and the durable-before-visible
//! output order) mechanically checked artifacts: a std-only binary that
//! lexes every workspace source file (no `syn` — the build environment
//! has no registry access) and fails CI with `file:line` diagnostics on
//! any violation.
//!
//! Rule classes and their scopes (see [`rules`] for the checks and
//! DESIGN.md §8 for the rationale):
//!
//! | rule              | scope                                          |
//! |-------------------|------------------------------------------------|
//! | `hash-iter`       | protocol-state crates (vc, bb, consensus, protocol, storage, ea, trustee) |
//! | `wall-clock`      | everything except `protocol/src/clock.rs` and the transport/bench/metrics crates |
//! | `metrics-clock`   | everything except `crates/obs` (no `Instant`/`elapsed` readings fed into recorder metrics) |
//! | `panic`           | core/message-path crates (vc, bb, consensus, protocol, storage) |
//! | `codec-exhaustive`| `Msg` enum vs `put_msg`/`get_msg`/`sample_msg` |
//! | `commit-order`    | `vc/src/core.rs`, `bb/src/core.rs`             |
//! | `blocking-recv`   | `net/src/evloop.rs` (the readiness loop must never block on a channel) |
//! | `scalar-verify`   | `crates/vc`, `crates/bb` (message paths verify through the batch/cache layer, never one signature at a time) |
//!
//! Suppression is always *recorded*: inline
//! `// lint:allow(rule, reason)` for sites justified where they stand,
//! or an entry in `crates/lint/allow.list` for exceptions reviewed in
//! one place. Stale allowlist entries are themselves errors, so the
//! exception file can only shrink as code is cleaned up.

pub mod lexer;
pub mod rules;

use lexer::SourceFile;
use rules::Violation;
use std::path::{Path, PathBuf};

/// Crates whose state feeds protocol decisions: hash-ordered iteration
/// here is a determinism bug waiting for the seed that samples it.
const STATE_CRATES: &[&str] = &[
    "crates/vc",
    "crates/bb",
    "crates/consensus",
    "crates/protocol",
    "crates/storage",
    "crates/ea",
    "crates/trustee",
];

/// Crates on the replica/message path: a panic here aborts a node a
/// malformed peer message should only be able to make shrug.
const PANIC_CRATES: &[&str] = &[
    "crates/vc",
    "crates/bb",
    "crates/consensus",
    "crates/protocol",
    "crates/storage",
];

/// The one file allowed to read real time: everything else goes through
/// `GlobalClock` / the `now_ms` step input.
const CLOCK_HOME: &str = "crates/protocol/src/clock.rs";

/// Crates exempt from the wall-clock rule wholesale: transports talk to
/// real sockets (`crates/net`), benches measure real time
/// (`crates/bench`), and the metrics crate implements the wall-clock
/// profiling time source (`WallSource`) everything else must go through.
const CLOCK_EXEMPT_CRATES: &[&str] = &["crates/net", "crates/bench", "crates/obs"];

/// The metrics crate is exempt from the metrics-clock rule: it defines
/// the recorder and its wall time source, so it is the one place a raw
/// `Instant` may legitimately meet an `observe` call.
const METRICS_HOME_CRATE: &[&str] = &["crates/obs"];

/// Files exempt from the wall-clock rule: the load harness measures
/// real round-trip latency over real sockets — wall-clock reads are its
/// deliverable, and nothing in it feeds a core's `now_ms`.
const CLOCK_EXEMPT_FILES: &[&str] = &["src/load.rs"];

/// Files checked by the codec-exhaustiveness rule.
const MSG_ENUM_FILE: &str = "crates/protocol/src/messages.rs";
const MSG_CODEC_FILE: &str = "crates/protocol/src/codec.rs";

/// Files checked by the durable-before-visible rule.
const CORE_FILES: &[&str] = &["crates/vc/src/core.rs", "crates/bb/src/core.rs"];

/// The readiness-driven event loop: one blocking channel receive here
/// stalls every connection the loop owns, so `.recv`/`.recv_timeout`
/// are denied (waits go through the poller).
const EVLOOP_FILE: &str = "crates/net/src/evloop.rs";
const EVLOOP_DIR: &str = "crates/net/src/evloop/";

/// Replica message-path crates where one-at-a-time `verify` calls are
/// denied: every signature check must route through the batch/cache
/// layer (`ddemos_crypto::mverify`), or the hot path silently falls back
/// to one group ladder per signature.
const VERIFY_SCOPE_CRATES: &[&str] = &["crates/vc", "crates/bb"];

/// One allowlist entry: `rule | path | line-substring | reason`.
/// Matching is by rule, exact workspace-relative path, and a substring of
/// the flagged line's text — robust to line-number drift, broken by any
/// edit that changes what the line does.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub needle: String,
    pub reason: String,
    /// The allowlist's own line (for stale-entry diagnostics).
    pub line: u32,
}

/// Parses `allow.list` text. Lines are `rule | path | substring | reason`;
/// `#` starts a comment; blank lines are skipped.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, '|').map(str::trim);
        let (Some(rule), Some(path), Some(needle), Some(reason)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            // A malformed entry suppresses nothing; surface it as stale.
            out.push(AllowEntry {
                rule: String::new(),
                path: line.to_string(),
                needle: String::new(),
                reason: String::new(),
                line: idx as u32 + 1,
            });
            continue;
        };
        out.push(AllowEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            needle: needle.to_string(),
            reason: reason.to_string(),
            line: idx as u32 + 1,
        });
    }
    out
}

/// The result of a full workspace run.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn has_prefix(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(&format!("{p}/")))
}

/// Collects the workspace-relative paths of every `.rs` file the lint
/// scans: `crates/*/src/**` plus the root crate's `src/**`. Fixtures,
/// shims, tests, examples, benches, and build output are out of scope —
/// the invariants govern shipped library code (in-file `#[cfg(test)]`
/// items are excluded by the lexer's test mask instead).
pub fn scan_paths(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            // The lint's own sources would trip every rule (they *name*
            // the forbidden constructs); fixtures are violations by design.
            if dir.file_name().is_some_and(|n| n == "lint") {
                continue;
            }
            collect_rs(&dir.join("src"), root, &mut out);
        }
    }
    collect_rs(&root.join("src"), root, &mut out);
    out.sort();
    out
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Runs every rule over one lexed file, applying the scope table.
pub fn check_file(sf: &SourceFile) -> Vec<Violation> {
    let path = sf.path.as_str();
    let mut out = Vec::new();
    if has_prefix(path, STATE_CRATES) {
        out.extend(rules::check_hash_iter(sf));
    }
    if path != CLOCK_HOME
        && !has_prefix(path, CLOCK_EXEMPT_CRATES)
        && !CLOCK_EXEMPT_FILES.contains(&path)
    {
        out.extend(rules::check_wall_clock(sf));
    }
    if !has_prefix(path, METRICS_HOME_CRATE) {
        out.extend(rules::check_metrics_clock(sf));
    }
    if has_prefix(path, PANIC_CRATES) {
        out.extend(rules::check_panic(sf));
    }
    if CORE_FILES.contains(&path) {
        out.extend(rules::check_commit_order(sf));
    }
    if path == EVLOOP_FILE || path.starts_with(EVLOOP_DIR) {
        out.extend(rules::check_blocking_recv(sf));
    }
    if has_prefix(path, VERIFY_SCOPE_CRATES) {
        out.extend(rules::check_scalar_verify(sf));
    }
    out
}

/// Runs the full lint over the workspace at `root`.
///
/// # Errors
/// I/O errors reading source files (an unreadable workspace is a failed
/// run, not a clean one).
pub fn run(root: &Path) -> std::io::Result<Report> {
    let allow_path = root.join("crates/lint/allow.list");
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text),
        Err(_) => Vec::new(),
    };

    let mut report = Report::default();
    let mut messages_sf = None;
    let mut codec_sf = None;
    for rel in scan_paths(root) {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let sf = SourceFile::parse(&rel, &src);
        report.files_scanned += 1;
        report.violations.extend(check_file(&sf));
        if rel == MSG_ENUM_FILE {
            messages_sf = Some(sf);
        } else if rel == MSG_CODEC_FILE {
            codec_sf = Some(sf);
        }
    }
    match (&messages_sf, &codec_sf) {
        (Some(messages), Some(codec)) => {
            report.violations.extend(rules::check_codec(
                messages,
                codec,
                "Msg",
                &["put_msg", "get_msg", "sample_msg"],
                "MSG_VARIANTS",
            ));
        }
        _ => report.violations.push(Violation {
            path: MSG_ENUM_FILE.to_string(),
            line: 1,
            rule: rules::RULE_CODEC,
            msg: "message enum / codec files missing; cannot check exhaustiveness".to_string(),
            line_text: String::new(),
        }),
    }

    // Apply the allowlist; any entry that suppressed nothing is stale.
    let mut used = vec![false; allowlist.len()];
    report.violations.retain(|v| {
        let mut suppressed = false;
        for (i, entry) in allowlist.iter().enumerate() {
            if entry.rule == v.rule
                && entry.path == v.path
                && (!entry.needle.is_empty() && v.line_text.contains(&entry.needle))
            {
                used[i] = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    for (entry, used) in allowlist.iter().zip(&used) {
        if !used {
            report.violations.push(Violation {
                path: "crates/lint/allow.list".to_string(),
                line: entry.line,
                rule: "stale-allow",
                msg: format!(
                    "allowlist entry `{} | {} | {}` suppressed nothing — the code moved on; \
                     delete the entry",
                    entry.rule, entry.path, entry.needle
                ),
                line_text: String::new(),
            });
        }
    }

    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_flags_malformed() {
        let text =
            "# comment\n\npanic | crates/vc/src/core.rs | foo[0] | bounded above\nbroken line\n";
        let entries = parse_allowlist(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "panic");
        assert_eq!(entries[0].needle, "foo[0]");
        assert_eq!(entries[1].rule, ""); // malformed → stale marker
    }

    #[test]
    fn scope_table_routes_rules() {
        let hash_src = "fn f(m: &HashMap<u32, u32>) { for x in m { let _ = x; } }";
        let in_scope = SourceFile::parse("crates/vc/src/core.rs", hash_src);
        assert!(check_file(&in_scope)
            .iter()
            .any(|v| v.rule == rules::RULE_HASH_ITER));
        // The harness driver is not a protocol-state crate.
        let out_of_scope = SourceFile::parse("src/election.rs", hash_src);
        assert!(!check_file(&out_of_scope)
            .iter()
            .any(|v| v.rule == rules::RULE_HASH_ITER));

        let clock_src = "fn f() { let t = Instant::now(); }";
        assert!(!check_file(&SourceFile::parse(CLOCK_HOME, clock_src))
            .iter()
            .any(|v| v.rule == rules::RULE_WALL_CLOCK));
        assert!(
            !check_file(&SourceFile::parse("crates/net/src/tcp.rs", clock_src))
                .iter()
                .any(|v| v.rule == rules::RULE_WALL_CLOCK)
        );
        // The load harness measures real latency: clock-exempt by file.
        assert!(!check_file(&SourceFile::parse("src/load.rs", clock_src))
            .iter()
            .any(|v| v.rule == rules::RULE_WALL_CLOCK));
        assert!(check_file(&SourceFile::parse("src/election.rs", clock_src))
            .iter()
            .any(|v| v.rule == rules::RULE_WALL_CLOCK));

        // Wall readings into a recorder flag everywhere but the metrics
        // crate itself (which implements the wall source).
        let obs_src = r#"fn f(r: &Recorder, t: Instant) { r.observe("x", "", t.elapsed().as_nanos() as u64); }"#;
        assert!(check_file(&SourceFile::parse("src/election.rs", obs_src))
            .iter()
            .any(|v| v.rule == rules::RULE_METRICS_CLOCK));
        assert!(
            !check_file(&SourceFile::parse("crates/obs/src/recorder.rs", obs_src))
                .iter()
                .any(|v| v.rule == rules::RULE_METRICS_CLOCK)
        );

        let panic_src = "fn f(x: Option<u32>) { x.unwrap(); }";
        assert!(
            check_file(&SourceFile::parse("crates/bb/src/node.rs", panic_src))
                .iter()
                .any(|v| v.rule == rules::RULE_PANIC)
        );
        // EA setup is not a message path.
        assert!(
            !check_file(&SourceFile::parse("crates/ea/src/setup.rs", panic_src))
                .iter()
                .any(|v| v.rule == rules::RULE_PANIC)
        );

        // Scalar verification flags on replica message paths only; the
        // crypto crate itself (and setup/audit crates) stay exempt.
        let verify_src = "fn f(vk: &VerifyingKey, m: &[u8], s: &Signature) { vk.verify(m, s); }";
        assert!(
            check_file(&SourceFile::parse("crates/vc/src/core.rs", verify_src))
                .iter()
                .any(|v| v.rule == rules::RULE_SCALAR_VERIFY)
        );
        assert!(!check_file(&SourceFile::parse(
            "crates/crypto/src/schnorr.rs",
            verify_src
        ))
        .iter()
        .any(|v| v.rule == rules::RULE_SCALAR_VERIFY));
    }
}
