// Seeded violations: wall-clock reads outside the permitted zones.
pub fn sample_wall_ms() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}

pub fn epoch_secs() -> u64 {
    match std::time::SystemTime::UNIX_EPOCH.elapsed() {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

pub fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}
