// Clean counterpart: time arrives as a step input; wall reads only in
// #[cfg(test)] code (masked by the lexer).
pub fn deadline_reached(now_ms: u64, deadline_ms: u64) -> bool {
    now_ms >= deadline_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_time_is_fine_in_tests() {
        let t = std::time::Instant::now();
        assert!(deadline_reached(1, 1));
        let _ = t.elapsed();
    }
}
