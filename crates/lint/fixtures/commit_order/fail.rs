// Seeded violation: a Send escapes between the Journal push and the
// Commit barrier — a crash in that window shows peers state the replica
// never durably logged.
impl Core {
    fn step_handle_vote(&mut self, msg: Msg) {
        self.jlog(Record::Used { msg });
        self.send(self.leader, Msg::Ack);
        self.persist();
    }

    fn step_outputs(&mut self, out: &mut Vec<Output>) {
        out.push(Output::Journal(Record::Voted));
        out.push(Output::Send { to: 1, msg: Msg::Ack });
        out.push(Output::Commit);
    }
}
