// Clean counterpart: every Journal is committed before anything visible
// leaves the core.
impl Core {
    fn step_handle_vote(&mut self, msg: Msg) {
        self.jlog(Record::Used { msg });
        self.persist();
        self.send(self.leader, Msg::Ack);
    }

    fn step_outputs(&mut self, out: &mut Vec<Output>) {
        out.push(Output::Journal(Record::Voted));
        out.push(Output::Commit);
        out.push(Output::Send { to: 1, msg: Msg::Ack });
        out.push(Output::Deliver { result: () });
    }
}
