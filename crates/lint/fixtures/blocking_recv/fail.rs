//! Seeded violations: blocking channel receives inside the event loop.

use std::sync::mpsc::Receiver;
use std::time::Duration;

fn drain(rx: &Receiver<u32>) -> Option<u32> {
    rx.recv().ok()
}

fn wait(rx: &Receiver<u32>) -> Option<u32> {
    rx.recv_timeout(Duration::from_millis(5)).ok()
}
