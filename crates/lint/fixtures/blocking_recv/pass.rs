//! Non-blocking receives and justified exceptions are fine.

use std::sync::mpsc::Receiver;

fn drain(rx: &Receiver<u32>) -> Option<u32> {
    rx.try_recv().ok()
}

fn startup(rx: &Receiver<u32>) -> Option<u32> {
    // lint:allow(blocking-recv, startup handoff before the loop runs)
    rx.recv().ok()
}
