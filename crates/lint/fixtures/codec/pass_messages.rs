// Minimal message enum: every variant has codec + sweep coverage in
// pass_codec.rs.
pub enum Msg {
    Ping,
    Pong,
}
