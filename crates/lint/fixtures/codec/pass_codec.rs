// Clean counterpart: put/get/sample all cover every `Msg` variant, and
// the sweep constant tracks the enum.
use super::Msg;

pub const MSG_VARIANTS: u32 = 2;

pub fn put_msg(msg: &Msg) -> u8 {
    match msg {
        Msg::Ping => 1,
        Msg::Pong => 2,
    }
}

pub fn get_msg(tag: u8) -> Option<Msg> {
    match tag {
        1 => Some(Msg::Ping),
        2 => Some(Msg::Pong),
        _ => None,
    }
}

pub fn sample_msg(variant: u32) -> Msg {
    match variant % MSG_VARIANTS {
        0 => Msg::Ping,
        _ => Msg::Pong,
    }
}
