// Seeded violation: `Msg::Gone` has no codec or sweep coverage in
// fail_codec.rs (which also declares a stale MSG_VARIANTS of 2).
pub enum Msg {
    Ping,
    Pong,
    Gone,
}
