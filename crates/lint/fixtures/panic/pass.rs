// Clean counterpart: total functions; errors flow to the caller.
pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn must(x: Option<u32>) -> Result<u32, &'static str> {
    x.ok_or("missing")
}

pub fn get(xs: &[u32], i: usize) -> Option<u32> {
    xs.get(i).copied()
}
