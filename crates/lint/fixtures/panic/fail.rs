// Seeded violations: panicking constructs on a message-path crate.
pub fn first(xs: &[u32]) -> u32 {
    xs[0]
}

pub fn must(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn demand(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn boom(flag: bool) {
    if flag {
        panic!("boom");
    }
}
