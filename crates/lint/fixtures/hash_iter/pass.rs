// Clean counterpart: BTree iteration, hash lookups, annotated folds.
use std::collections::{BTreeMap, HashMap};

// Note: hash-name tracking is per file by identifier, so a BTree map
// sharing a name with a HashMap elsewhere in the file would be flagged —
// distinct names keep the heuristic precise.
pub fn canonical(tree: &BTreeMap<u32, u32>) -> Vec<u32> {
    tree.keys().copied().collect()
}

pub fn lookup_only(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}

pub fn commutative_fold(m: &HashMap<u32, u32>) -> u64 {
    let mut total = 0u64;
    // lint:allow(hash-iter, order-insensitive fold: addition commutes)
    for v in m.values() {
        total += u64::from(*v);
    }
    total
}
