// Seeded violation: hash-ordered iteration in a protocol-state crate.
use std::collections::{HashMap, HashSet};

pub fn order_reaching(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in m.iter() {
        out.push(*k);
    }
    out
}

pub fn keys_leak_order(s: &HashSet<u32>) -> Vec<u32> {
    s.iter().copied().collect()
}
