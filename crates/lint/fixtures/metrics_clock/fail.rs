// Seeded violations: wall-clock readings fed into recorder metrics.
pub fn encode_frame(recorder: &Recorder, begin: std::time::Instant, frame: &[u8]) {
    write_frame(frame);
    recorder.observe("net.frame_encode_ns", "", begin.elapsed().as_nanos() as u64);
}

pub fn commit_batch(recorder: &Recorder) {
    fsync();
    recorder.observe_since("storage.fsync_ns", "", epoch_ns(std::time::SystemTime::now()));
}
