// Clean counterpart: durations come from the recorder's own time
// source, so a virtual-domain recorder charges modelled time.
pub fn commit_batch(recorder: &Recorder, pending: u64) {
    let start = recorder.now_ns();
    fsync();
    recorder.observe("storage.wal_batch", "", pending);
    recorder.observe_since("storage.fsync_ns", "", start);
}
