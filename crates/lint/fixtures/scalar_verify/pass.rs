//! Batched / cached verification and justified exceptions are fine.

use ddemos_crypto::mverify::MsgVerifier;
use ddemos_crypto::schnorr::{self, Signature, VerifyingKey};

fn check_sig(mv: &mut MsgVerifier, vk: &VerifyingKey, msg: &[u8], sig: &Signature) -> bool {
    mv.check(vk, msg, sig)
}

fn check_many(mv: &mut MsgVerifier, items: &[(VerifyingKey, Vec<u8>, Signature)]) -> Vec<bool> {
    mv.check_batch(items)
}

fn check_batch_direct(items: &[schnorr::BatchEntry<'_>]) -> bool {
    schnorr::verify_batch(items).is_ok()
}

fn audit_sig(vk: &VerifyingKey, msg: &[u8], sig: &Signature) -> bool {
    // lint:allow(scalar-verify, one-shot audit check outside the replica hot path)
    vk.verify(msg, sig)
}
