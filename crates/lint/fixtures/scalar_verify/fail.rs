//! Seeded violations: one-at-a-time signature verification on a
//! replica message path.

use ddemos_crypto::schnorr::{Signature, VerifyingKey};
use ddemos_crypto::vss::DealerVss;

fn check_sig(vk: &VerifyingKey, msg: &[u8], sig: &Signature) -> bool {
    vk.verify(msg, sig)
}

fn check_share(dealer: &VerifyingKey, ctx: &[u8], share: &SignedShare) -> bool {
    DealerVss::verify(dealer, ctx, share)
}
