//! Fixture-driven coverage of every rule class, at two levels:
//!
//! * in-process: each `fixtures/<rule>/fail.rs` produces violations of
//!   exactly that rule when lexed under an in-scope path, and each
//!   `pass.rs` produces none;
//! * binary: the `ddemos-lint` executable exits non-zero (with file:line
//!   diagnostics) on a scratch workspace seeded with each fail fixture,
//!   and exits zero on the real, migrated workspace.

use ddemos_lint::lexer::SourceFile;
use ddemos_lint::{check_file, rules};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lexes a fixture as if it lived at `as_path` and runs the scoped rules.
fn check_as(rel: &str, as_path: &str) -> Vec<rules::Violation> {
    let sf = SourceFile::parse(as_path, &fixture(rel));
    check_file(&sf)
}

fn rules_hit(violations: &[rules::Violation]) -> Vec<&'static str> {
    let mut hit: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    hit.sort_unstable();
    hit.dedup();
    hit
}

#[test]
fn hash_iter_fixtures() {
    let fail = check_as("hash_iter/fail.rs", "crates/vc/src/fixture.rs");
    assert_eq!(rules_hit(&fail), vec![rules::RULE_HASH_ITER]);
    assert!(fail.len() >= 2, "both iteration sites should be flagged");
    let pass = check_as("hash_iter/pass.rs", "crates/vc/src/fixture.rs");
    assert!(pass.is_empty(), "unexpected: {pass:?}");
}

#[test]
fn clock_fixtures() {
    let fail = check_as("clock/fail.rs", "crates/vc/src/fixture.rs");
    assert_eq!(rules_hit(&fail), vec![rules::RULE_WALL_CLOCK]);
    assert!(
        fail.len() >= 3,
        "Instant, SystemTime, and sleep should all flag"
    );
    let pass = check_as("clock/pass.rs", "crates/vc/src/fixture.rs");
    assert!(pass.is_empty(), "unexpected: {pass:?}");
    // The same wall-clock reads are legal inside the clock's home file
    // and the transport crate.
    assert!(check_as("clock/fail.rs", "crates/protocol/src/clock.rs")
        .iter()
        .all(|v| v.rule != rules::RULE_WALL_CLOCK));
    assert!(check_as("clock/fail.rs", "crates/net/src/fixture.rs").is_empty());
}

#[test]
fn metrics_clock_fixtures() {
    // The net crate is wall-clock exempt (real sockets), which is
    // exactly why the narrower metrics rule must still apply there.
    let fail = check_as("metrics_clock/fail.rs", "crates/net/src/fixture.rs");
    assert_eq!(rules_hit(&fail), vec![rules::RULE_METRICS_CLOCK]);
    assert!(
        fail.len() >= 2,
        "observe and observe_since should both flag"
    );
    let pass = check_as("metrics_clock/pass.rs", "crates/net/src/fixture.rs");
    assert!(pass.is_empty(), "unexpected: {pass:?}");
    // The metrics crate implements the wall source: exempt.
    assert!(check_as("metrics_clock/fail.rs", "crates/obs/src/fixture.rs").is_empty());
}

#[test]
fn panic_fixtures() {
    let fail = check_as("panic/fail.rs", "crates/bb/src/fixture.rs");
    assert_eq!(rules_hit(&fail), vec![rules::RULE_PANIC]);
    assert!(
        fail.len() >= 4,
        "indexing, unwrap, expect, panic! should all flag"
    );
    let pass = check_as("panic/pass.rs", "crates/bb/src/fixture.rs");
    assert!(pass.is_empty(), "unexpected: {pass:?}");
    // The same constructs are out of scope for a non-message-path crate.
    assert!(check_as("panic/fail.rs", "crates/ea/src/fixture.rs").is_empty());
}

#[test]
fn commit_order_fixtures() {
    let fail = check_as("commit_order/fail.rs", "crates/vc/src/core.rs");
    assert_eq!(rules_hit(&fail), vec![rules::RULE_COMMIT_ORDER]);
    assert_eq!(
        fail.len(),
        2,
        "one violation per un-committed journal: {fail:?}"
    );
    let pass = check_as("commit_order/pass.rs", "crates/bb/src/core.rs");
    assert!(pass.is_empty(), "unexpected: {pass:?}");
}

#[test]
fn blocking_recv_fixtures() {
    let fail = check_as("blocking_recv/fail.rs", "crates/net/src/evloop.rs");
    assert_eq!(rules_hit(&fail), vec![rules::RULE_BLOCKING_RECV]);
    assert_eq!(fail.len(), 2, "recv and recv_timeout should both flag");
    let pass = check_as("blocking_recv/pass.rs", "crates/net/src/evloop.rs");
    assert!(pass.is_empty(), "unexpected: {pass:?}");
    // The blocking transport is allowed to block: the rule is scoped to
    // the event-loop module, not the whole net crate.
    assert!(check_as("blocking_recv/fail.rs", "crates/net/src/dialer.rs").is_empty());
}

#[test]
fn scalar_verify_fixtures() {
    let fail = check_as("scalar_verify/fail.rs", "crates/vc/src/fixture.rs");
    assert_eq!(rules_hit(&fail), vec![rules::RULE_SCALAR_VERIFY]);
    assert_eq!(
        fail.len(),
        2,
        "method-call and path-call verify should both flag: {fail:?}"
    );
    let pass = check_as("scalar_verify/pass.rs", "crates/bb/src/fixture.rs");
    assert!(pass.is_empty(), "unexpected: {pass:?}");
    // Setup, audit, and transport crates stay free to verify one by one.
    assert!(check_as("scalar_verify/fail.rs", "crates/ea/src/fixture.rs").is_empty());
    assert!(check_as("scalar_verify/fail.rs", "crates/crypto/src/fixture.rs").is_empty());
}

#[test]
fn codec_fixtures() {
    let fns = ["put_msg", "get_msg", "sample_msg"];
    let messages = SourceFile::parse(
        "crates/protocol/src/messages.rs",
        &fixture("codec/fail_messages.rs"),
    );
    let codec = SourceFile::parse(
        "crates/protocol/src/codec.rs",
        &fixture("codec/fail_codec.rs"),
    );
    let fail = rules::check_codec(&messages, &codec, "Msg", &fns, "MSG_VARIANTS");
    // `Gone` missing from all three fns + the stale count constant.
    assert_eq!(fail.len(), 4, "unexpected: {fail:?}");
    assert!(fail.iter().all(|v| v.rule == rules::RULE_CODEC));

    let messages = SourceFile::parse(
        "crates/protocol/src/messages.rs",
        &fixture("codec/pass_messages.rs"),
    );
    let codec = SourceFile::parse(
        "crates/protocol/src/codec.rs",
        &fixture("codec/pass_codec.rs"),
    );
    let pass = rules::check_codec(&messages, &codec, "Msg", &fns, "MSG_VARIANTS");
    assert!(pass.is_empty(), "unexpected: {pass:?}");
}

// ---------------------------------------------------------------------------
// Binary-level: exit codes and diagnostics
// ---------------------------------------------------------------------------

/// Builds a throwaway workspace containing the clean codec pair plus one
/// seeded file, returns its root.
fn scratch_workspace(tag: &str, seed_rel_path: &str, seed_fixture: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("ddemos-lint-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, fixture_rel) in [
        ("crates/protocol/src/messages.rs", "codec/pass_messages.rs"),
        ("crates/protocol/src/codec.rs", "codec/pass_codec.rs"),
    ] {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, fixture(fixture_rel)).unwrap();
    }
    let seed = root.join(seed_rel_path);
    std::fs::create_dir_all(seed.parent().unwrap()).unwrap();
    std::fs::write(&seed, fixture(seed_fixture)).unwrap();
    root
}

fn run_lint(root: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ddemos-lint"))
        .arg(root)
        .output()
        .expect("run ddemos-lint");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_fails_on_each_seeded_violation() {
    let cases = [
        ("hash-iter", "crates/vc/src/seeded.rs", "hash_iter/fail.rs"),
        ("wall-clock", "crates/vc/src/seeded.rs", "clock/fail.rs"),
        ("panic", "crates/bb/src/seeded.rs", "panic/fail.rs"),
        (
            "metrics-clock",
            "crates/net/src/seeded.rs",
            "metrics_clock/fail.rs",
        ),
        (
            "commit-order",
            "crates/vc/src/core.rs",
            "commit_order/fail.rs",
        ),
        (
            "blocking-recv",
            "crates/net/src/evloop.rs",
            "blocking_recv/fail.rs",
        ),
        (
            "scalar-verify",
            "crates/bb/src/seeded.rs",
            "scalar_verify/fail.rs",
        ),
    ];
    for (rule, rel, fix) in cases {
        let root = scratch_workspace(rule, rel, fix);
        let (ok, stdout) = run_lint(&root);
        assert!(!ok, "{rule}: seeded workspace must fail");
        assert!(
            stdout.contains(&format!("[{rule}]")) && stdout.contains(&format!("{rel}:")),
            "{rule}: diagnostics must carry file:line and the rule tag:\n{stdout}"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
    // Codec: seed by replacing the messages file with the uncovered enum.
    let root = scratch_workspace(
        "codec",
        "crates/protocol/src/messages.rs",
        "codec/fail_messages.rs",
    );
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "codec: seeded workspace must fail");
    assert!(
        stdout.contains("[codec-exhaustive]"),
        "missing tag:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn binary_passes_on_the_real_workspace() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root");
    let (ok, stdout) = run_lint(repo_root);
    assert!(ok, "the migrated workspace must be lint-clean:\n{stdout}");
}
