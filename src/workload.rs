//! Concurrent voting workload generator — the library form of the paper's
//! multi-threaded voting client (§V): each client thread repeatedly picks
//! an unused ballot, a random vote code (option and part), a random VC
//! node, submits, and waits for the receipt; this measures vote-collection
//! latency and throughput under a configurable concurrency level.
//!
//! Workloads are normally driven through
//! [`VotingPhase::run`](crate::VotingPhase::run), which allocates client
//! identities and folds the statistics into the election's
//! [`ElectionReport`](crate::ElectionReport).

use ddemos::voter::Voter;
use ddemos_net::SimNet;
use ddemos_protocol::ballot::Ballot;
use ddemos_protocol::clock::{ActorReservation, VirtualClock};
use ddemos_protocol::{ElectionParams, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency/throughput statistics from one workload run.
#[derive(Clone, Debug)]
pub struct WorkloadStats {
    /// Votes successfully cast (receipt obtained and verified).
    pub votes_cast: u64,
    /// Votes that failed (patience exhausted on every node).
    pub failures: u64,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Mean end-to-end latency per successful vote.
    pub mean_latency: Duration,
    /// Median latency.
    pub p50_latency: Duration,
    /// 95th-percentile latency.
    pub p95_latency: Duration,
    /// 99th-percentile latency.
    pub p99_latency: Duration,
}

impl WorkloadStats {
    /// Successful votes per second.
    pub fn throughput(&self) -> f64 {
        self.votes_cast as f64 / self.duration.as_secs_f64().max(1e-9)
    }
}

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Number of concurrent client threads (the paper's "cc").
    pub concurrency: usize,
    /// Total ballots to cast across all clients.
    pub total_votes: u64,
    /// First ballot serial to use (lets successive runs use fresh ballots).
    pub first_ballot: u64,
    /// Per-attempt patience before blacklisting a VC node.
    pub patience: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            concurrency: 4,
            total_votes: 0,
            first_ballot: 0,
            patience: Duration::from_secs(30),
            seed: 0x57_4C,
        }
    }
}

impl Workload {
    /// Runs the workload against a running VC cluster.
    ///
    /// `ballots` must contain the voter ballots for serials
    /// `first_ballot..first_ballot + total_votes` (indexed by serial), and
    /// `first_client` a client-id range of `concurrency` ids not registered
    /// with `net` yet ([`VotingPhase::run`](crate::VotingPhase::run)
    /// allocates one automatically).
    pub fn run(
        &self,
        net: &SimNet,
        params: &ElectionParams,
        ballots: &[Ballot],
        first_client: u32,
    ) -> WorkloadStats {
        let next = Arc::new(AtomicU64::new(self.first_ballot));
        let end = self.first_ballot + self.total_votes;
        let latencies_ns = Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
        let failures = Arc::new(AtomicU64::new(0));
        // lint:allow(wall-clock, benchmark wall-latency measurement; never reaches a core)
        let started = Instant::now();
        let started_sim_ns = net.now_ns();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.concurrency);
            for client in 0..self.concurrency {
                let next = next.clone();
                let latencies_ns = latencies_ns.clone();
                let failures = failures.clone();
                let endpoint = net.register(NodeId::client(first_client + client as u32));
                // Reserve the client's actor slot *before* the spawn: the
                // clock must not free-run through thread start-up at a
                // wall-clock-dependent rate.
                let reservation = net.virtual_clock().map(VirtualClock::reserve_actor);
                handles.push(scope.spawn(move || {
                    // Under a virtual clock each client is an actor, so
                    // its waits drive the clock like any node's.
                    let _actor = reservation.map(ActorReservation::activate);
                    let mut rng = StdRng::seed_from_u64(self.seed ^ (client as u64) << 32);
                    loop {
                        let serial = next.fetch_add(1, Ordering::SeqCst);
                        if serial >= end {
                            return;
                        }
                        let ballot = &ballots[serial as usize];
                        debug_assert_eq!(ballot.serial.0, serial);
                        let option = rng.gen_range(0..params.num_options);
                        let mut voter = Voter::new(
                            ballot,
                            &endpoint,
                            params.num_vc,
                            self.patience,
                            StdRng::seed_from_u64(rng.gen()),
                        );
                        match voter.vote(option) {
                            Ok(record) => {
                                latencies_ns.lock().push(record.latency.as_nanos() as u64);
                            }
                            Err(_) => {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }));
            }
            // The joins are a wall-clock wait on work the clients do in
            // simulation time: under a virtual clock, run them suspended
            // so the clients (whose slots are already reserved above) can
            // drive the clock.
            if let Some(vclock) = net.virtual_clock() {
                vclock.suspend(|| {
                    for handle in handles {
                        let _ = handle.join();
                    }
                });
            }
            // Real mode: the scope's implicit join collects the clients.
        });
        let duration = match net.virtual_clock() {
            Some(_) => Duration::from_nanos(net.now_ns().saturating_sub(started_sim_ns)),
            None => started.elapsed(),
        };
        let mut lat = Arc::try_unwrap(latencies_ns)
            .map(|m| m.into_inner())
            .unwrap_or_default();
        lat.sort_unstable();
        let votes_cast = lat.len() as u64;
        let mean = if lat.is_empty() {
            Duration::ZERO
        } else {
            Duration::from_nanos(lat.iter().sum::<u64>() / votes_cast)
        };
        let pct = |p: usize| {
            if lat.is_empty() {
                Duration::ZERO
            } else {
                Duration::from_nanos(lat[(lat.len() * p / 100).min(lat.len() - 1)])
            }
        };
        WorkloadStats {
            votes_cast,
            failures: failures.load(Ordering::Relaxed),
            duration,
            mean_latency: mean,
            p50_latency: pct(50),
            p95_latency: pct(95),
            p99_latency: pct(99),
        }
    }
}
