//! The running [`Election`] facade and its typed phase handles.

use crate::builder::StoreKind;
use crate::report::{ElectionReport, NetReport};
use crate::tcp::TcpBackend;
use crate::workload::{Workload, WorkloadStats};
use crossbeam_channel::Receiver;
use ddemos::auditor::{AuditReport, Auditor};
use ddemos::voter::{VoteError, VoteRecord, Voter};
use ddemos_bb::{BbApi, BbNode, BbSnapshot, MajorityReader};
use ddemos_ea::{ElectionAuthority, SetupOutput};
use ddemos_net::{DynEndpoint, NetStats, SimNet, Transport};
use ddemos_obs::{MetricsSnapshot, Recorder, TimeDomain};
use ddemos_protocol::ballot::AuditInfo;
use ddemos_protocol::clock::{ActorGuard, GlobalClock};
use ddemos_protocol::posts::ElectionResult;
use ddemos_protocol::{NodeId, PartId, SerialNo};
use ddemos_trustee::Trustee;
use ddemos_vc::{FinalizedVoteSet, VcHandle};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The transport behind a running election: the in-process simulated
/// network, or the coordinator side of a multi-process TCP cluster.
///
/// One instance exists per election, so the size skew between the two
/// variants is irrelevant.
#[allow(clippy::large_enum_variant)]
pub(crate) enum NetBackend {
    /// In-process simulation (latency emulation, faults, virtual time).
    Sim(SimNet),
    /// Coordinator of remote replicas over TCP sockets.
    Tcp(TcpBackend),
}

impl NetBackend {
    fn stats(&self) -> &NetStats {
        match self {
            NetBackend::Sim(net) => net.stats(),
            NetBackend::Tcp(backend) => backend.transport.stats(),
        }
    }

    fn register(&self, id: NodeId) -> DynEndpoint {
        match self {
            NetBackend::Sim(net) => Transport::register(net, id),
            NetBackend::Tcp(backend) => backend.transport.register(id),
        }
    }

    /// Connection counters of an authenticated-channel transport
    /// (`None` on the simulated network and the threaded TCP driver).
    fn conn_counters(&self) -> Option<ddemos_net::ConnSnapshot> {
        match self {
            NetBackend::Sim(_) => None,
            NetBackend::Tcp(backend) => backend.transport.conn_counters(),
        }
    }

    fn shutdown(&self) {
        match self {
            NetBackend::Sim(net) => net.shutdown(),
            NetBackend::Tcp(backend) => backend.shutdown(),
        }
    }
}

/// How long [`Election::close`] waits for a BB majority to hold the
/// encrypted tally challenge after the VC→BB push.
const BB_PUBLISH_TIMEOUT: Duration = Duration::from_secs(60);
/// How long [`Election::tally`] waits for the trustee-input snapshot.
const SNAPSHOT_TIMEOUT: Duration = Duration::from_secs(30);
/// How long [`Election::tally`] waits for the published result.
const RESULT_TIMEOUT: Duration = Duration::from_secs(120);

/// Orchestration errors surfaced by the phase handles.
#[derive(Debug)]
pub enum ElectionError {
    /// Not enough VC nodes finalized a vote set in time.
    VoteSetTimeout,
    /// The BB majority never published the expected artifact.
    BbTimeout(&'static str),
    /// A trustee failed to produce its post.
    Trustee(ddemos_trustee::TrusteeError),
    /// The phase needs state an earlier phase produces (e.g. `tally`
    /// before `close`), or setup data a [`crate::ElectionBuilder::vc_only`]
    /// election never materialized.
    PhaseUnavailable(&'static str),
}

impl std::fmt::Display for ElectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElectionError::VoteSetTimeout => write!(f, "vote-set consensus did not finish"),
            ElectionError::BbTimeout(what) => {
                write!(f, "bulletin board never published {what}")
            }
            ElectionError::Trustee(e) => write!(f, "trustee failure: {e}"),
            ElectionError::PhaseUnavailable(why) => write!(f, "phase unavailable: {why}"),
        }
    }
}
impl std::error::Error for ElectionError {}

/// Durations of each phase (Fig 5c's series), measured on the election's
/// clock: wall time by default, **virtual milliseconds** under
/// [`crate::ElectionBuilder::virtual_time`] — so Fig 5c numbers keep
/// matching the paper's emulated latencies however fast the run.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// EA setup inside [`crate::ElectionBuilder::build`] (key generation
    /// plus ballot materialization on the configured thread count).
    pub setup: Duration,
    /// Casting votes (accumulated over every [`VotingPhase`] call).
    pub vote_collection: Duration,
    /// ANNOUNCE + batched binary consensus + RECOVER.
    pub vote_set_consensus: Duration,
    /// VC→BB uploads, msk reconstruction, code decryption, encrypted tally.
    pub push_to_bb_and_tally: Duration,
    /// Trustee posts and result publication.
    pub publish_result: Duration,
}

/// Mutable run state accumulated across the phases.
#[derive(Default)]
pub(crate) struct RunState {
    pub(crate) audits: Vec<AuditInfo>,
    pub(crate) receipts: Vec<(SerialNo, u64)>,
    pub(crate) workload: Option<WorkloadStats>,
    pub(crate) timings: PhaseTimings,
    /// Vote sets collected by a timed-out `close()`, preserved for retry
    /// (each node releases its finalized set exactly once).
    pub(crate) drained: Vec<FinalizedVoteSet>,
    pub(crate) finalized: Option<Vec<FinalizedVoteSet>>,
    /// Whether the VC→BB publication (push + challenge) has completed.
    pub(crate) published: bool,
    pub(crate) result: Option<ElectionResult>,
    pub(crate) audit_report: Option<AuditReport>,
}

/// A running election: the EA's setup output plus every long-lived
/// component — simulated network, global clock, VC cluster, BB replicas,
/// and trustees-in-waiting. Built by [`crate::ElectionBuilder`]; driven
/// through the typed phase handles ([`Election::voting`],
/// [`Election::close`], [`Election::tally`], [`Election::audit`]) or all
/// at once via [`Election::finish`].
pub struct Election {
    /// The EA's setup output (printed ballots retained for voters and
    /// auditors, exactly as the paper distributes them out of band).
    pub setup: SetupOutput,
    pub(crate) net: NetBackend,
    pub(crate) clock: GlobalClock,
    /// Local BB replicas (empty for a TCP coordinator — the replicas
    /// live in other processes, reachable through [`Election::bb_apis`]).
    pub(crate) bb_nodes: Vec<Arc<BbNode>>,
    /// Every BB replica as a write/read client, local or remote.
    pub(crate) bb_apis: Vec<Arc<dyn BbApi>>,
    pub(crate) reader: MajorityReader,
    pub(crate) trustees: Vec<Trustee>,
    pub(crate) vc_handles: Vec<VcHandle>,
    pub(crate) result_rx: Receiver<FinalizedVoteSet>,
    pub(crate) seed: u64,
    pub(crate) store: StoreKind,
    pub(crate) profile: ddemos_ea::SetupProfile,
    pub(crate) threads: usize,
    /// Wall-clock bound on the [`Election::close`] vote-set drain.
    pub(crate) close_timeout: Duration,
    pub(crate) next_client: AtomicU32,
    pub(crate) cast_seq: AtomicU64,
    pub(crate) run: Mutex<RunState>,
    /// Serializes [`Election::close`] (the per-node deliveries it drains
    /// are one-shot).
    pub(crate) close_lock: Mutex<()>,
    /// BB indices flagged by a `CrashAmnesia` fault (BB replicas have no
    /// network inbox, so the network hook records them here); serviced —
    /// state reset + journal replay — before the next BB interaction.
    pub(crate) bb_amnesia: Arc<parking_lot::Mutex<std::collections::BTreeSet<u32>>>,
    /// Per-node metrics recorders in fixed merge order (vc-0…, bb-0…,
    /// then the profiling hook if installed). Empty when metrics are off
    /// or the nodes live in other processes (TCP coordinator).
    pub(crate) recorders: Vec<Recorder>,
    /// Domain the merged report snapshot starts in (virtual elections
    /// stay [`TimeDomain::Virtual`] unless a wall recorder taints them).
    pub(crate) metrics_domain: TimeDomain,
    /// Whether this election installed the process-global profiling
    /// hook (cleared again on drop).
    pub(crate) profiling: bool,
    /// Virtual-time driver registration of the building thread (`None`
    /// for real-time elections). Held so virtual time freezes while the
    /// driver is doing work between waits.
    pub(crate) _driver: Option<ActorGuard>,
    /// Retained only for [`StoreKind::Virtual`] stores (the stand-in for
    /// each node's pre-populated database); `None` otherwise — the EA is
    /// destroyed after setup (§III-B).
    pub(crate) _ea: Option<Arc<ElectionAuthority>>,
}

impl Drop for Election {
    fn drop(&mut self) {
        // An unjoined drop must still release every node: under a virtual
        // clock the nodes are blocked in virtual waits and only wake when
        // the network (and with it the clock) shuts down.
        for handle in &self.vc_handles {
            handle.request_stop();
        }
        self.net.shutdown();
        if self.profiling {
            ddemos_obs::clear_global();
        }
    }
}

impl std::fmt::Debug for Election {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Election")
            .field("election_id", &self.setup.params.election_id)
            .field("num_vc", &self.setup.params.num_vc)
            .field("num_bb", &self.setup.params.num_bb)
            .field("num_trustees", &self.setup.params.num_trustees)
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

impl Election {
    // ------------------------------------------------------------------
    // Phase handles
    // ------------------------------------------------------------------

    /// The voting phase: cast individual votes or drive bulk workloads.
    /// Receipts and audit data accumulate inside the election for the
    /// audit phase and the final report.
    pub fn voting(&self) -> VotingPhase<'_> {
        VotingPhase {
            election: self,
            patience: Duration::from_secs(5),
        }
    }

    /// Closes the polls on every VC node and drives the post-voting
    /// pipeline up to the Bulletin Board: vote-set consensus to a quorum of
    /// [`FinalizedVoteSet`]s, the VC→BB upload, and (for full setups) the
    /// appearance of the encrypted tally challenge on a BB majority.
    ///
    /// Idempotent: once the pipeline has completed, later calls (e.g. a
    /// `finish()` after a manual `close()`) return the cached vote sets;
    /// after a failure, retrying resumes from whatever had already been
    /// collected (each VC node releases its finalized set exactly once).
    ///
    /// # Errors
    /// [`ElectionError::VoteSetTimeout`] or [`ElectionError::BbTimeout`].
    pub fn close(&self) -> Result<Vec<FinalizedVoteSet>, ElectionError> {
        // Serialized: concurrent closers must not split the one-shot
        // per-node deliveries between them.
        let _phase = self.close_lock.lock();
        self.service_bb_amnesia();
        let cached = self.run.lock().finalized.clone();
        let finalized = match cached {
            Some(finalized) => finalized,
            None => {
                self.close_polls();
                let quorum = self.setup.params.vc_quorum();
                // Drain inline (not via await_vote_sets) so a timeout
                // preserves the partially collected sets for a retry. The
                // channel drain is a wall-clock wait on work the nodes do
                // in simulation time, so it runs suspended: virtual time
                // keeps advancing underneath until the sets arrive.
                let mut pending = std::mem::take(&mut self.run.lock().drained);
                // lint:allow(wall-clock, operator-facing close-polls deadline over a real transport)
                let deadline = Instant::now() + self.close_timeout;
                while pending.len() < quorum {
                    let received = match &self.net {
                        NetBackend::Sim(_) => self.suspended(|| {
                            deadline
                                // lint:allow(wall-clock, operator-facing deadline arithmetic; cores still step on now_ms)
                                .checked_duration_since(Instant::now())
                                .ok_or(())
                                .and_then(|left| self.result_rx.recv_timeout(left).map_err(|_| ()))
                        }),
                        // Remote VC replicas deliver their finalized sets
                        // as Msg::Finalized envelopes on the control
                        // endpoint.
                        NetBackend::Tcp(backend) => {
                            backend.recv_finalized(deadline).map_err(|_| ())
                        }
                    };
                    match received {
                        // The in-process channel delivers once per node;
                        // a real transport can duplicate (reconnect
                        // re-sends, a restarted volatile replica). The
                        // quorum must count distinct nodes.
                        Ok(finalized) => {
                            if !pending.iter().any(|f| f.node_index == finalized.node_index) {
                                pending.push(finalized);
                            }
                        }
                        Err(()) => {
                            self.run.lock().drained = pending;
                            return Err(ElectionError::VoteSetTimeout);
                        }
                    }
                }
                // Cache before the fallible BB wait below: consensus has
                // completed, and the sets can never be re-read from the
                // channel. Consensus timing comes from the node-stamped
                // announce/finalize times — values produced inside the
                // simulation, so they replay identically under a virtual
                // clock (a driver-side clock sample here would race with
                // nodes still draining their last events).
                let announce = pending.iter().map(|f| f.announce_at_ms).min().unwrap_or(0);
                let finalized_at = pending
                    .iter()
                    .map(|f| f.finalized_at_ms)
                    .max()
                    .unwrap_or(announce);
                let mut state = self.run.lock();
                state.timings.vote_set_consensus +=
                    Duration::from_millis(finalized_at.saturating_sub(announce));
                state.finalized = Some(pending.clone());
                pending
            }
        };
        if self.is_full_setup() && !self.run.lock().published {
            // Unlike the consensus span above, this delta is safe to
            // sample driver-side even under a virtual clock: between the
            // two samples the driver only does synchronous BB writes, and
            // the read predicate is a pure function of those writes — so
            // the delta is 0 (first-try read) or the whole wait errors,
            // independent of the racy absolute base.
            let t1 = self.clock.now_ns();
            self.push_to_bb(&finalized);
            self.reader
                .read_until(BB_PUBLISH_TIMEOUT, |s| s.challenge.is_some())
                .ok_or(ElectionError::BbTimeout("encrypted tally"))?;
            let mut state = self.run.lock();
            state.timings.push_to_bb_and_tally +=
                Duration::from_nanos(self.clock.now_ns().saturating_sub(t1));
            state.published = true;
        }
        Ok(finalized)
    }

    /// Runs every trustee against the BB majority and majority-reads the
    /// published result. Requires [`Election::close`] to have completed.
    ///
    /// Idempotent: once a result has been published, later calls (e.g. a
    /// `finish()` after a manual `tally()`) return it without re-running
    /// the trustees or double-counting the publish timing.
    ///
    /// # Errors
    /// [`ElectionError::PhaseUnavailable`] before `close` or on a
    /// VC-only setup; otherwise trustee and BB failures.
    pub fn tally(&self) -> Result<ElectionResult, ElectionError> {
        self.service_bb_amnesia();
        if !self.is_full_setup() {
            return Err(ElectionError::PhaseUnavailable(
                "tally requires SetupProfile::Full (not a vc_only election)",
            ));
        }
        {
            let state = self.run.lock();
            if let Some(result) = state.result.clone() {
                return Ok(result);
            }
            if state.finalized.is_none() {
                return Err(ElectionError::PhaseUnavailable(
                    "tally requires close() first",
                ));
            }
        }
        let t0 = self.clock.now_ns();
        let snapshot = self
            .reader
            .read_until(SNAPSHOT_TIMEOUT, |s| {
                s.vote_set.is_some() && s.challenge.is_some()
            })
            .ok_or(ElectionError::BbTimeout("vote set and challenge"))?;
        for trustee in &self.trustees {
            let (post, sig) = trustee
                .produce_post(&snapshot)
                .map_err(ElectionError::Trustee)?;
            let post = Arc::new(post);
            for bb in &self.bb_apis {
                let _ = bb.submit_trustee_post(post.clone(), &sig);
            }
        }
        let result = self
            .reader
            .read_until(RESULT_TIMEOUT, |s| s.result.is_some())
            .and_then(|s| s.result)
            .ok_or(ElectionError::BbTimeout("result"))?;
        let mut state = self.run.lock();
        state.timings.publish_result +=
            Duration::from_nanos(self.clock.now_ns().saturating_sub(t0));
        state.result = Some(result.clone());
        Ok(result)
    }

    /// Runs the audit: a majority read of the Bulletin Board, the public
    /// consistency checks, and — when votes were cast through the facade —
    /// the delegated per-voter checks over every collected
    /// [`AuditInfo`].
    ///
    /// # Errors
    /// [`ElectionError::BbTimeout`] when no BB majority agrees on a
    /// snapshot.
    pub fn audit(&self) -> Result<AuditReport, ElectionError> {
        self.service_bb_amnesia();
        let snapshot = self
            .reader
            .read_snapshot()
            .ok_or(ElectionError::BbTimeout("majority snapshot"))?;
        let mut state = self.run.lock();
        let auditor = Auditor::new(&self.setup.bb_init, &snapshot).with_threads(self.threads);
        let report = if state.audits.is_empty() {
            auditor.verify_public()
        } else {
            auditor.verify_delegated(&state.audits)
        };
        state.audit_report = Some(report.clone());
        Ok(report)
    }

    /// Convenience: `close` → `tally` → `audit` → [`Election::report`]
    /// (the tally and audit are skipped for VC-only setups).
    ///
    /// # Errors
    /// Propagates the first failing phase.
    pub fn finish(&self) -> Result<ElectionReport, ElectionError> {
        self.close()?;
        if self.is_full_setup() {
            self.tally()?;
            self.audit()?;
        }
        Ok(self.report())
    }

    /// Assembles the [`ElectionReport`] from everything accumulated so
    /// far: result, receipts, audit outcome, per-phase timings, and
    /// network/workload statistics.
    pub fn report(&self) -> ElectionReport {
        // Under a virtual clock, run the simulation dry — every
        // in-flight envelope delivered and processed, every node parked —
        // before freezing anything. Quiescing alone stops at a step
        // boundary, but which one depends on how far the free-running
        // clock got before this thread re-registered (a wall-clock race):
        // the straggler nodes beyond the close quorum would be cut off
        // mid-cascade at a nondeterministic event index, and the stable
        // step metrics would count a varying number of their deliveries.
        if let Some(vclock) = self.clock.virtual_clock() {
            vclock.run_dry(Duration::from_secs(5));
            vclock.quiesce(Duration::from_secs(5));
        }
        let state = self.run.lock();
        ElectionReport {
            result: state.result.clone(),
            receipts: state.receipts.clone(),
            audit: state.audit_report.clone(),
            timings: state.timings,
            net: NetReport::capture(self.net.stats()),
            metrics: self.metrics_snapshot(),
            workload: state.workload.clone(),
            store: self.store,
            threads: self.threads,
        }
    }

    /// Merges every node recorder (fixed vc-0…, bb-0…, hook order) and
    /// folds the transport's connection counters in as `net.conn.*`.
    /// The merge is exact — counters add, histograms add per bucket — so
    /// the result is independent of how the per-node snapshots group.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut metrics = MetricsSnapshot::new(self.metrics_domain);
        for recorder in &self.recorders {
            metrics.merge(&recorder.snapshot());
        }
        if let Some(conns) = self.net.conn_counters() {
            // Written unconditionally, zeros included: the presence of
            // the keys is what marks "this election ran over the
            // event-loop TCP driver" (see `ElectionReport::conns`).
            metrics.add("net.conn.dials", "", "", conns.dials);
            metrics.add("net.conn.authenticated", "", "", conns.authenticated);
            metrics.add("net.conn.auth_failed", "", "", conns.auth_failed);
            metrics.add("net.conn.rejected", "", "", conns.rejected);
            metrics.add("net.conn.retries", "", "", conns.retries);
        }
        metrics
    }

    /// The worker count of the parallel runtime (EA setup, trustee share
    /// processing, audit sweep).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Stops all node threads and the network. The network (and, in
    /// virtual mode, the clock) shuts down before joining, so node threads
    /// blocked in virtual waits are woken rather than joined against.
    pub fn shutdown(mut self) {
        let handles = std::mem::take(&mut self.vc_handles);
        for handle in &handles {
            handle.request_stop();
        }
        self.net.shutdown();
        for handle in handles {
            handle.stop();
        }
    }

    // ------------------------------------------------------------------
    // Lower-level access (subsystem tests and custom drivers)
    // ------------------------------------------------------------------

    /// The election parameters.
    pub fn params(&self) -> &ddemos_protocol::ElectionParams {
        &self.setup.params
    }

    /// The simulated network (fault injection: crash, partition, profile).
    ///
    /// # Panics
    /// Panics for [`crate::Network::Tcp`] elections — real replicas are
    /// separate processes with no in-process fault hooks.
    pub fn network(&self) -> &SimNet {
        match &self.net {
            NetBackend::Sim(net) => net,
            NetBackend::Tcp(_) => {
                panic!("the simulated network is only available for Network::Sim elections")
            }
        }
    }

    /// The global reference clock.
    pub fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    /// Current simulation time in milliseconds (virtual ms under
    /// [`crate::ElectionBuilder::virtual_time`]).
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Sleeps `d` of simulation time — under a virtual clock this paces
    /// the scenario (lets scheduled faults and the voting window play out)
    /// at almost no wall-clock cost.
    pub fn sleep(&self, d: Duration) {
        self.clock.sleep(d);
    }

    /// Runs `f` (a wall-clock wait on something virtual actors produce)
    /// with the driver's virtual-time registration suspended, so the
    /// simulation keeps advancing underneath. No-op in real mode.
    pub(crate) fn suspended<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.clock.virtual_clock() {
            Some(vclock) => vclock.suspend(f),
            None => f(),
        }
    }

    /// The majority reader over the BB replicas.
    pub fn reader(&self) -> &MajorityReader {
        &self.reader
    }

    /// The BB replicas.
    pub fn bb_nodes(&self) -> &[Arc<BbNode>] {
        &self.bb_nodes
    }

    /// Majority-reads the current BB snapshot.
    pub fn snapshot(&self) -> Option<BbSnapshot> {
        self.service_bb_amnesia();
        self.reader.read_snapshot()
    }

    /// Services pending BB power-cycles: a `CrashAmnesia` fault flagged
    /// the replica (BB nodes have no inbox to receive the signal), and
    /// before the next interaction its state is reset and rebuilt from
    /// its journal — or comes back empty without one, leaving the `fb+1`
    /// read majority to carry the subsystem. BB state only changes
    /// through driver-synchronous writes, so servicing lazily here is
    /// equivalent to servicing at the fault's timestamp.
    fn service_bb_amnesia(&self) {
        let flagged: Vec<u32> = std::mem::take(&mut *self.bb_amnesia.lock())
            .into_iter()
            .collect();
        for index in flagged {
            if let Some(bb) = self.bb_nodes.get(index as usize) {
                bb.recover_amnesia();
            }
        }
    }

    /// Registers a fresh client (voter terminal) endpoint on whichever
    /// transport the election runs over.
    pub fn client_endpoint(&self) -> DynEndpoint {
        self.net.register(NodeId::client(self.alloc_clients(1)))
    }

    /// Reserves `count` fresh client ids, returning the first.
    pub(crate) fn alloc_clients(&self, count: u32) -> u32 {
        self.next_client.fetch_add(count, Ordering::SeqCst)
    }

    /// Closes the polls on every VC node (as if every clock passed
    /// `Tend`) without waiting for consensus — [`Election::close`] is the
    /// usual entry point.
    ///
    /// Over the simulated transport the close rides the network as an
    /// authenticated `Msg::ClosePolls` control envelope, sent to every
    /// node from a single pinned virtual instant. The alternative — the
    /// `force_end` flag each driver polls — is a wall-clock signal: which
    /// idle tick observes it varies with scheduler timing, staggering the
    /// node closes nondeterministically and letting the announce-phase
    /// straggler traffic (and so the canonical metrics snapshot) differ
    /// between same-seed runs. As envelopes the closes are virtual-time
    /// events with seeded latencies: the whole close cascade becomes a
    /// pure function of the seed. The flag stays in use for TCP clusters
    /// (already a wall-clock world) and as the driver-level fallback.
    pub fn close_polls(&self) {
        match &self.net {
            NetBackend::Sim(_) => {
                let endpoint = self.net.register(NodeId::client(self.alloc_clients(1)));
                // Pin the virtual clock so every close is stamped with
                // the same send time; arrival order is then decided by
                // the seeded per-link latencies alone.
                let _actor = endpoint.actor_guard();
                for handle in &self.vc_handles {
                    endpoint.send(handle.id, ddemos_protocol::messages::Msg::ClosePolls);
                }
            }
            NetBackend::Tcp(backend) => {
                for handle in &self.vc_handles {
                    handle.close_polls();
                }
                backend.close_polls();
            }
        }
    }

    /// Waits until at least `count` VC nodes deliver their finalized vote
    /// sets (they do so after their clocks pass `Tend` or
    /// [`Election::close_polls`]).
    ///
    /// # Errors
    /// [`ElectionError::VoteSetTimeout`] on expiry.
    pub fn await_vote_sets(
        &self,
        count: usize,
        timeout: Duration,
    ) -> Result<Vec<FinalizedVoteSet>, ElectionError> {
        let mut out = Vec::new();
        // lint:allow(wall-clock, operator-facing vote-set collection deadline over a real transport)
        let deadline = Instant::now() + timeout;
        let result = loop {
            if out.len() >= count {
                break Ok(());
            }
            // lint:allow(wall-clock, operator-facing deadline arithmetic; cores still step on now_ms)
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break Err(ElectionError::VoteSetTimeout);
            };
            match self.suspended(|| self.result_rx.recv_timeout(remaining)) {
                Ok(finalized) => out.push(finalized),
                Err(_) => break Err(ElectionError::VoteSetTimeout),
            }
        };
        // Each node releases its finalized set exactly once; record every
        // drained set so a later close() resumes from them instead of
        // re-awaiting deliveries that can never come.
        self.run.lock().drained.extend(out.iter().cloned());
        result.map(|()| out)
    }

    /// Pushes finalized vote sets and msk shares to every BB node (each VC
    /// node writes to all replicas, §III-G).
    pub fn push_to_bb(&self, finalized: &[FinalizedVoteSet]) {
        self.service_bb_amnesia();
        for f in finalized {
            for bb in &self.bb_apis {
                let _ = bb.submit_vote_set(f.node_index, &f.vote_set, &f.signature);
                let _ = bb.submit_msk_share(&f.msk_share);
            }
        }
    }

    fn is_full_setup(&self) -> bool {
        // Keyed on the profile, not on setup contents: `SetupProfile::VcOnly`
        // still deals trustee key material, just no per-ballot payloads.
        self.profile == ddemos_ea::SetupProfile::Full
    }
}

/// Handle for the voting phase. Obtained from [`Election::voting`];
/// casting records receipts, audit data, and vote-collection timing inside
/// the election.
pub struct VotingPhase<'a> {
    election: &'a Election,
    patience: Duration,
}

impl VotingPhase<'_> {
    /// Sets the per-node patience (`[d]` of Definition 1; use
    /// [`ddemos::liveness::LivenessParams::t_wait`] for the theorem-backed
    /// value). Default: 5 s.
    #[must_use]
    pub fn patience(mut self, d: Duration) -> Self {
        self.patience = d;
        self
    }

    /// Casts ballot `ballot_index`'s vote for `option`, choosing the
    /// ballot part by the voter's coin flip.
    ///
    /// # Errors
    /// See [`VoteError`].
    ///
    /// # Panics
    /// Panics if `ballot_index` exceeds the materialized ballots.
    pub fn cast(&self, ballot_index: usize, option: usize) -> Result<VoteRecord, VoteError> {
        self.cast_inner(ballot_index, option, None)
    }

    /// Casts with a fixed ballot part (adversarial scenarios and tests fix
    /// the coin).
    ///
    /// # Errors
    /// See [`VoteError`].
    ///
    /// # Panics
    /// Panics if `ballot_index` exceeds the materialized ballots.
    pub fn cast_with_part(
        &self,
        ballot_index: usize,
        option: usize,
        part: PartId,
    ) -> Result<VoteRecord, VoteError> {
        self.cast_inner(ballot_index, option, Some(part))
    }

    fn cast_inner(
        &self,
        ballot_index: usize,
        option: usize,
        part: Option<PartId>,
    ) -> Result<VoteRecord, VoteError> {
        let election = self.election;
        let ballot = &election.setup.ballots[ballot_index];
        let endpoint = election.client_endpoint();
        let sequence = election.cast_seq.fetch_add(1, Ordering::SeqCst);
        let rng = StdRng::seed_from_u64(
            election.seed ^ 0x564F_5445 ^ ((ballot_index as u64) << 24) ^ sequence,
        );
        let t0 = election.clock.now_ns();
        let mut voter = Voter::new(
            ballot,
            endpoint.as_ref(),
            election.setup.params.num_vc,
            self.patience,
            rng,
        );
        let outcome = match part {
            Some(part) => voter.vote_with_part(option, part),
            None => voter.vote(option),
        };
        let elapsed = Duration::from_nanos(election.clock.now_ns().saturating_sub(t0));
        let mut state = election.run.lock();
        state.timings.vote_collection += elapsed;
        if let Ok(record) = &outcome {
            state.audits.push(record.audit.clone());
            state
                .receipts
                .push((record.audit.serial, record.audit.receipt));
        }
        outcome
    }

    /// Runs a bulk concurrent workload (the paper's multithreaded voting
    /// client); statistics fold into the election's report. Unlike
    /// [`VotingPhase::cast`], bulk voters keep their audit data to
    /// themselves — receipt checks happen inline in each client thread.
    pub fn run(&self, workload: &Workload) -> WorkloadStats {
        let election = self.election;
        let NetBackend::Sim(net) = &election.net else {
            panic!("bulk workloads require the simulated network (Network::Sim)")
        };
        let first_client = election.alloc_clients(workload.concurrency as u32);
        let stats = workload.run(
            net,
            &election.setup.params,
            &election.setup.ballots,
            first_client,
        );
        let mut state = election.run.lock();
        state.timings.vote_collection += stats.duration;
        state.workload = Some(stats.clone());
        stats
    }
}
