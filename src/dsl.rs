//! The scenario DSL: composite timed fault scripts over the network,
//! the disks, and the adversary (DESIGN.md §9).
//!
//! A [`ScenarioScript`] extends the PR-3 [`Schedule`](crate::Schedule)
//! vocabulary in three directions:
//!
//! * **Disk faults** ([`DiskEvent`]) — schedulable full-device and
//!   slow-fsync windows against named [`SimDisk`](ddemos_storage::SimDisk)s
//!   (`"vc-0"`, `"bb-2"`, …), executed by the scenario runner at virtual
//!   times. A full device degrades the replica to typed read-only
//!   refusal, never to journal loss.
//! * **Voter churn** ([`ScenarioEvent::Churn`]) — a fresh connection
//!   re-submits the most recently receipted ballot mid-run, which must
//!   reproduce the identical receipt (feeding the uniqueness oracle).
//! * **State-triggered adversaries** — [`TriggeredAdversary`] profiles
//!   for VC nodes and diverge-after-finalized BB replicas, armed at
//!   build time and fired by predicates over *observed* protocol state
//!   rather than the clock.
//!
//! Scripts are written through the fluent [`ScenarioBuilder`]:
//!
//! ```
//! use ddemos_harness::dsl::{ScenarioBuilder, ScenarioPhase};
//! use ddemos_protocol::NodeId;
//!
//! let script = ScenarioBuilder::new("example")
//!     .at_ms(5_000, |t| t.gray_partition(vec![NodeId::vc(1)], vec![NodeId::vc(0)], 100))
//!     .at_phase(ScenarioPhase::MidVoting, |t| t.disk_full("vc-2").churn())
//!     .at_ms(32_000, |t| t.heal().disk_heal("vc-2"))
//!     .build();
//! assert_eq!(script.events.len(), 5);
//! ```

use crate::schedule::Schedule;
use ddemos_net::NetFault;
use ddemos_protocol::NodeId;
use ddemos_vc::TriggeredAdversary;
use std::time::Duration;

/// A schedulable fault against a named node disk (the label the builder
/// journals under: `"vc-<i>"` / `"bb-<i>"`). Executed by the scenario
/// runner on the election's virtual clock, not by the network: the
/// storage layer stays transport-independent.
#[derive(Clone, Debug)]
pub enum DiskEvent {
    /// The device reports full: appends fail with a typed
    /// `StorageError::DiskFull` and the replica degrades to read-only.
    Full(String),
    /// The device has room again (the replica rejoins after its next
    /// power cycle — degradation is sticky until restart).
    Heal(String),
    /// A brown-out window: fsyncs take this long until restored.
    SlowFsync(String, Duration),
    /// Restores the construction-time latency profile.
    Restore(String),
}

impl DiskEvent {
    /// The disk label this event targets.
    pub fn label(&self) -> &str {
        match self {
            DiskEvent::Full(l)
            | DiskEvent::Heal(l)
            | DiskEvent::SlowFsync(l, _)
            | DiskEvent::Restore(l) => l,
        }
    }
}

/// One timed event of a scenario script.
#[derive(Clone, Debug)]
pub enum ScenarioEvent {
    /// A network-layer fault (crash, partition, gray cut, profile
    /// burst, drift) applied through `SimNet::schedule_fault`.
    Net(NetFault),
    /// A disk-layer fault executed by the runner at the event time.
    Disk(DiskEvent),
    /// Connection churn: a fresh client re-submits the latest receipted
    /// ballot; the receipt must come back identical.
    Churn,
}

/// Named points of the scenario timeline, resolved to representative
/// virtual timestamps at plan time (the scenario elections run with
/// `T_end = 40_000` ms and close at 44_000 ms — see `src/scenario.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioPhase {
    /// Just after the first casts begin.
    EarlyVoting,
    /// The middle of the voting window.
    MidVoting,
    /// Voting still open, but past the fault-heal horizon of generated
    /// schedules.
    LateVoting,
    /// After `T_end`: vote-set consensus territory.
    Close,
}

impl ScenarioPhase {
    /// The representative timestamp this phase resolves to.
    pub fn at_ms(self) -> u64 {
        match self {
            ScenarioPhase::EarlyVoting => 2_000,
            ScenarioPhase::MidVoting => 12_000,
            ScenarioPhase::LateVoting => 26_000,
            ScenarioPhase::Close => 41_000,
        }
    }

    /// The coverage bucket a raw timestamp falls into (the
    /// protocol-phase axis of the fuzzer's coverage fingerprints).
    pub fn bucket(at_ms: u64) -> &'static str {
        match at_ms {
            0..=999 => "setup",
            1_000..=27_999 => "voting",
            28_000..=39_999 => "heal",
            _ => "close",
        }
    }
}

/// A compiled scenario: timed events plus the state-triggered adversary
/// layer. Produced by [`ScenarioBuilder::build`], consumed by
/// `run_scenario_on` (and composed into campaigns by `src/campaign.rs`).
#[derive(Clone, Debug)]
pub struct ScenarioScript {
    /// `(at_ms, event)` pairs, sorted by time at build.
    pub events: Vec<(u64, ScenarioEvent)>,
    /// VC nodes armed with state-triggered Byzantine profiles.
    pub adversaries: Vec<(NodeId, TriggeredAdversary)>,
    /// BB replicas whose reads diverge after the first finalized set.
    pub bb_divergent: Vec<u32>,
    /// Scenario class label (failure artifacts, coverage class axis).
    pub label: String,
    /// Whether the paper's liveness guarantee applies under this script
    /// (builders exceeding the fault budget must clear it).
    pub liveness_friendly: bool,
}

impl Default for ScenarioScript {
    /// An empty script is within the fault model (nothing happens).
    fn default() -> Self {
        ScenarioScript {
            events: Vec::new(),
            adversaries: Vec::new(),
            bb_divergent: Vec::new(),
            label: "clean".into(),
            liveness_friendly: true,
        }
    }
}

impl ScenarioScript {
    /// Whether the script does anything at all (events or armed
    /// adversaries).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.adversaries.is_empty() && self.bb_divergent.is_empty()
    }

    /// Splits the network-layer events into a [`Schedule`] the election
    /// builder installs at network start; disk and churn events stay
    /// with the runner.
    pub fn net_schedule(&self) -> Schedule {
        let mut schedule = Schedule {
            events: Vec::new(),
            liveness_friendly: self.liveness_friendly,
            label: self.label.clone(),
        };
        for (at, event) in &self.events {
            if let ScenarioEvent::Net(fault) = event {
                schedule.push(*at, fault.clone());
            }
        }
        schedule
    }

    /// The runner-executed events (disk faults and churn), in time order.
    pub fn runner_events(&self) -> Vec<(u64, ScenarioEvent)> {
        self.events
            .iter()
            .filter(|(_, e)| !matches!(e, ScenarioEvent::Net(_)))
            .cloned()
            .collect()
    }

    /// Whether any event power-cycles a node or faults a disk — either
    /// way the election must run with a durability layer.
    pub fn needs_durability(&self) -> bool {
        self.events.iter().any(|(_, e)| {
            matches!(e, ScenarioEvent::Disk(_))
                || matches!(e, ScenarioEvent::Net(NetFault::CrashAmnesia(_)))
        })
    }

    /// The coverage fingerprint of this script: the set of
    /// `(fault-class, protocol-phase)` pairs its events land in, plus
    /// phase-less entries for the state-triggered layer. Two runs of the
    /// same plan produce the same fingerprint; the fuzzer's corpus keys
    /// on these pairs.
    pub fn coverage(&self) -> std::collections::BTreeSet<(String, String)> {
        let mut pairs = std::collections::BTreeSet::new();
        for (at, event) in &self.events {
            let class = match event {
                ScenarioEvent::Net(fault) => crate::campaign::net_fault_class(fault),
                ScenarioEvent::Disk(DiskEvent::Full(_)) => "disk-full",
                ScenarioEvent::Disk(DiskEvent::Heal(_)) => "disk-heal",
                ScenarioEvent::Disk(DiskEvent::SlowFsync(..)) => "disk-slow",
                ScenarioEvent::Disk(DiskEvent::Restore(_)) => "disk-restore",
                ScenarioEvent::Churn => "churn",
            };
            pairs.insert((class.to_string(), ScenarioPhase::bucket(*at).to_string()));
        }
        for (_, adv) in &self.adversaries {
            pairs.insert((format!("triggered-{:?}", adv.action()), "armed".to_string()));
        }
        if !self.bb_divergent.is_empty() {
            pairs.insert(("bb-diverge".to_string(), "armed".to_string()));
        }
        pairs
    }
}

/// Fluent builder for [`ScenarioScript`]s. Each `at_ms` / `at_phase`
/// call opens a [`Tick`] — a chainable site where any number of
/// composite events land at the same timestamp.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    script: ScenarioScript,
}

impl ScenarioBuilder {
    /// Starts an empty, liveness-friendly script with the given label.
    pub fn new(label: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            script: ScenarioScript {
                label: label.into(),
                liveness_friendly: true,
                ..ScenarioScript::default()
            },
        }
    }

    /// Adds events at an absolute virtual timestamp.
    #[must_use]
    pub fn at_ms(mut self, at_ms: u64, f: impl FnOnce(Tick<'_>) -> Tick<'_>) -> Self {
        f(Tick {
            at_ms,
            script: &mut self.script,
        });
        self
    }

    /// Adds events at a named phase's representative timestamp.
    #[must_use]
    pub fn at_phase(self, phase: ScenarioPhase, f: impl FnOnce(Tick<'_>) -> Tick<'_>) -> Self {
        self.at_ms(phase.at_ms(), f)
    }

    /// Arms a state-triggered Byzantine profile on a VC node.
    #[must_use]
    pub fn trigger(mut self, node: NodeId, adversary: TriggeredAdversary) -> Self {
        self.script.adversaries.push((node, adversary));
        self
    }

    /// Makes one BB replica's reads diverge after the first finalized
    /// vote set (the read majority must outvote it).
    #[must_use]
    pub fn bb_diverges_after_finalized(mut self, bb_index: u32) -> Self {
        self.script.bb_divergent.push(bb_index);
        self
    }

    /// Clears the liveness expectation (scripts that exceed the fault
    /// budget or inject probabilistic loss must call this).
    #[must_use]
    pub fn outside_fault_model(mut self) -> Self {
        self.script.liveness_friendly = false;
        self
    }

    /// Finishes the script (events sorted by time).
    pub fn build(mut self) -> ScenarioScript {
        self.script.events.sort_by_key(|(t, _)| *t);
        self.script
    }
}

/// A chainable event site at one timestamp (see [`ScenarioBuilder`]).
pub struct Tick<'a> {
    at_ms: u64,
    script: &'a mut ScenarioScript,
}

impl Tick<'_> {
    fn push(self, event: ScenarioEvent) -> Self {
        self.script.events.push((self.at_ms, event));
        self
    }

    /// Fail-stop crash (no state loss; the node resumes on `recover`).
    #[must_use]
    pub fn crash(self, node: NodeId) -> Self {
        self.push(ScenarioEvent::Net(NetFault::Crash(node)))
    }

    /// Power-cycle: volatile state is lost; a durable node rebuilds
    /// from its journal on `recover`.
    #[must_use]
    pub fn power_cycle(self, node: NodeId) -> Self {
        self.push(ScenarioEvent::Net(NetFault::CrashAmnesia(node)))
    }

    /// Brings a crashed or power-cycled node back.
    #[must_use]
    pub fn recover(self, node: NodeId) -> Self {
        self.push(ScenarioEvent::Net(NetFault::Recover(node)))
    }

    /// Symmetric partition between two groups.
    #[must_use]
    pub fn partition(self, a: Vec<NodeId>, b: Vec<NodeId>) -> Self {
        self.push(ScenarioEvent::Net(NetFault::Partition(a, b)))
    }

    /// Asymmetric gray cut: traffic `from → to` is lost with
    /// `loss_pct`% probability (100 = a full one-way cut); the reverse
    /// direction is untouched.
    #[must_use]
    pub fn gray_partition(self, from: Vec<NodeId>, to: Vec<NodeId>, loss_pct: u8) -> Self {
        self.push(ScenarioEvent::Net(NetFault::GrayPartition {
            from,
            to,
            loss_pct,
        }))
    }

    /// Heals every partition, gray cuts included.
    #[must_use]
    pub fn heal(self) -> Self {
        self.push(ScenarioEvent::Net(NetFault::HealPartitions))
    }

    /// Heals only the cuts between two specific groups.
    #[must_use]
    pub fn heal_between(self, a: Vec<NodeId>, b: Vec<NodeId>) -> Self {
        self.push(ScenarioEvent::Net(NetFault::HealPartition(a, b)))
    }

    /// Swaps the network latency/loss profile (degrade or restore).
    #[must_use]
    pub fn degrade(self, profile: ddemos_net::NetworkProfile) -> Self {
        self.push(ScenarioEvent::Net(NetFault::SetProfile(profile)))
    }

    /// Sets a node's clock drift (signed ms).
    #[must_use]
    pub fn drift(self, node: NodeId, drift_ms: i64) -> Self {
        self.push(ScenarioEvent::Net(NetFault::SetDrift(node, drift_ms)))
    }

    /// Marks a node's journal device full (typed read-only degradation).
    #[must_use]
    pub fn disk_full(self, label: impl Into<String>) -> Self {
        self.push(ScenarioEvent::Disk(DiskEvent::Full(label.into())))
    }

    /// Gives the device room again.
    #[must_use]
    pub fn disk_heal(self, label: impl Into<String>) -> Self {
        self.push(ScenarioEvent::Disk(DiskEvent::Heal(label.into())))
    }

    /// Starts a slow-fsync brown-out window on a node's disk.
    #[must_use]
    pub fn slow_fsync(self, label: impl Into<String>, fsync: Duration) -> Self {
        self.push(ScenarioEvent::Disk(DiskEvent::SlowFsync(
            label.into(),
            fsync,
        )))
    }

    /// Ends the brown-out (restores the construction-time profile).
    #[must_use]
    pub fn disk_restore(self, label: impl Into<String>) -> Self {
        self.push(ScenarioEvent::Disk(DiskEvent::Restore(label.into())))
    }

    /// Connection churn: re-submit the latest receipted ballot from a
    /// fresh client at this point.
    #[must_use]
    pub fn churn(self) -> Self {
        self.push(ScenarioEvent::Churn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddemos_vc::VcBehavior;

    #[test]
    fn builder_sorts_and_splits_events() {
        let script = ScenarioBuilder::new("split")
            .at_ms(30_000, |t| t.heal().disk_heal("vc-1"))
            .at_ms(5_000, |t| t.crash(NodeId::vc(1)).disk_full("vc-1").churn())
            .build();
        assert_eq!(script.events.first().map(|(t, _)| *t), Some(5_000));
        let net = script.net_schedule();
        assert_eq!(net.events.len(), 2, "crash + heal");
        assert_eq!(net.label, "split");
        let runner = script.runner_events();
        assert_eq!(runner.len(), 3, "disk-full + churn + disk-heal");
        assert!(script.needs_durability());
    }

    #[test]
    fn phase_resolution_and_buckets_agree() {
        for phase in [
            ScenarioPhase::EarlyVoting,
            ScenarioPhase::MidVoting,
            ScenarioPhase::LateVoting,
        ] {
            assert_eq!(ScenarioPhase::bucket(phase.at_ms()), "voting");
        }
        assert_eq!(ScenarioPhase::bucket(ScenarioPhase::Close.at_ms()), "close");
        assert_eq!(ScenarioPhase::bucket(500), "setup");
        assert_eq!(ScenarioPhase::bucket(33_000), "heal");
    }

    #[test]
    fn coverage_tracks_classes_and_phases() {
        let script = ScenarioBuilder::new("cov")
            .at_phase(ScenarioPhase::MidVoting, |t| t.disk_full("vc-0"))
            .at_phase(ScenarioPhase::Close, |t| t.disk_full("vc-0"))
            .trigger(
                NodeId::vc(1),
                TriggeredAdversary::equivocate_after_endorsements(1),
            )
            .build();
        let cov = script.coverage();
        assert!(cov.contains(&("disk-full".into(), "voting".into())));
        assert!(cov.contains(&("disk-full".into(), "close".into())));
        assert!(cov
            .iter()
            .any(|(class, _)| class.contains("EquivocalEndorser")));
        let _ = VcBehavior::EquivocalEndorser;
    }
}
