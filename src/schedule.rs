//! Timed fault schedules: the scenario vocabulary of the fuzzer.
//!
//! A [`Schedule`] is a list of [`NetFault`]s pinned to simulation
//! timestamps — the library form of the paper's evaluation harness (§V),
//! which kills collector processes and degrades links with `netem` at
//! chosen points of the election. [`Schedule::random`] derives a schedule
//! from a seed, so a failing scenario replays byte-identically from its
//! seed alone.

use ddemos_net::{NetFault, NetworkProfile};
use ddemos_protocol::{NodeId, NodeKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Duration;

/// A timed fault schedule (applied by the builder at network start).
#[derive(Clone, Debug)]
pub struct Schedule {
    /// `(at_ms, fault)` pairs in simulation milliseconds since network
    /// start; order-independent (the network's delay heap sorts them).
    pub events: Vec<(u64, NetFault)>,
    /// Whether the schedule stays within the paper's fault model for
    /// guaranteed liveness: at most `f_v` collectors faulty at any time
    /// and no message loss between honest parties (crashes, partitions of
    /// ≤ `f_v` nodes, duplication, reordering, and bounded drift are
    /// within the model; loss bursts are not).
    pub liveness_friendly: bool,
    /// Human-readable scenario class (for failure artifacts).
    pub label: String,
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule {
            events: Vec::new(),
            liveness_friendly: true,
            label: "clean".into(),
        }
    }
}

/// Election shape [`Schedule::random`] generates against.
#[derive(Clone, Debug)]
pub struct ScheduleParams {
    /// Number of vote collector nodes.
    pub num_vc: usize,
    /// Tolerated collector faults (`f_v`).
    pub vc_faults: usize,
    /// Number of bulletin board replicas (amnesia scenarios power-cycle
    /// one, staying within the `f_b` read-majority budget).
    pub num_bb: usize,
    /// Earliest fault timestamp (ms).
    pub fault_from_ms: u64,
    /// Latest fault timestamp (ms); heals/restores land by
    /// `heal_by_ms`.
    pub fault_until_ms: u64,
    /// All partitions heal and all profile bursts restore by here.
    pub heal_by_ms: u64,
    /// The baseline latency profile to restore after bursts.
    pub base_profile: NetworkProfile,
    /// Preferred fault target. Node-level faults (crash, partition,
    /// drift) hit this node when set, so a scenario that *also* makes one
    /// collector Byzantine stays within the `f_v` simultaneous-fault
    /// budget (a Byzantine node that is additionally crashed or
    /// partitioned still counts as one fault; a Byzantine node plus a
    /// *different* partitioned node counts as two).
    pub target: Option<NodeId>,
}

impl Schedule {
    /// Appends an event.
    pub fn push(&mut self, at_ms: u64, fault: NetFault) {
        self.events.push((at_ms, fault));
    }

    /// Whether the schedule power-cycles any node (such scenarios need
    /// the election built with a durability layer to stay within the
    /// paper's fault model).
    pub fn has_amnesia(&self) -> bool {
        self.events
            .iter()
            .any(|(_, f)| matches!(f, NetFault::CrashAmnesia(_)))
    }

    /// The distinct VC nodes whose faults consume the `f_v` budget:
    /// crash / power-cycle targets, the isolated side of a partition,
    /// and the cut-off side of a full (100%) gray partition. Drift and
    /// lossy (<100%) gray cuts do not count — bounded drift is within
    /// Assumption II, and probabilistic loss degrades a *link*, not a
    /// node (it voids the liveness guarantee instead, like loss bursts).
    pub fn vc_budget_targets(&self) -> BTreeSet<NodeId> {
        let mut targets = BTreeSet::new();
        for (_, fault) in &self.events {
            match fault {
                NetFault::Crash(id) | NetFault::CrashAmnesia(id) if id.kind == NodeKind::Vc => {
                    targets.insert(*id);
                }
                NetFault::Partition(isolated, _) => {
                    targets.extend(isolated.iter().filter(|n| n.kind == NodeKind::Vc));
                }
                NetFault::GrayPartition { from, to, loss_pct } if *loss_pct >= 100 => {
                    // A full one-way cut makes the *smaller* side the
                    // faulty one — one deaf node (everyone→victim) and
                    // one mute node (victim→everyone) are both a single
                    // fault, not "everyone on the other end".
                    let side = if from.len() <= to.len() { from } else { to };
                    targets.extend(side.iter().filter(|n| n.kind == NodeKind::Vc));
                }
                _ => {}
            }
        }
        targets
    }

    /// The distinct BB replicas whose faults consume the `f_b` budget
    /// (the read-side majority: `N_b ≥ 2f_b + 1`).
    pub fn bb_budget_targets(&self) -> BTreeSet<NodeId> {
        let mut targets = BTreeSet::new();
        for (_, fault) in &self.events {
            if let NetFault::Crash(id) | NetFault::CrashAmnesia(id) = fault {
                if id.kind == NodeKind::Bb {
                    targets.insert(*id);
                }
            }
        }
        targets
    }

    /// The single-designated-fault-target budget invariant every
    /// *generated* schedule upholds (debug builds assert it at the end
    /// of each generator):
    ///
    /// * at most `f_v` distinct VC nodes consume the VC fault budget —
    ///   and when [`ScheduleParams::target`] designates a node, *every*
    ///   budget-consuming VC fault hits that node, so a scenario that
    ///   also makes one collector Byzantine stays at one combined fault
    ///   (a Byzantine collector that is additionally crashed, isolated,
    ///   or gray-cut is one fault; a Byzantine collector plus a
    ///   *different* faulted node would be two — outside the model, and
    ///   the fuzzer proved it breaks liveness, since receipt
    ///   reconstruction needs `N_v − f_v` live honest shares);
    /// * at most `⌊(N_b − 1) / 2⌋ = f_b` distinct BB replicas are
    ///   faulted, preserving the `f_b + 1` read majority.
    ///
    /// Hand-built schedules (the DSL) may deliberately exceed the
    /// budget to probe outside the model; such scenarios must clear
    /// [`Schedule::liveness_friendly`] themselves.
    pub fn assert_fault_budget(&self, params: &ScheduleParams) {
        let vc_targets = self.vc_budget_targets();
        debug_assert!(
            vc_targets.len() <= params.vc_faults,
            "schedule '{}' faults {} distinct VC nodes, budget f_v = {}: {:?}",
            self.label,
            vc_targets.len(),
            params.vc_faults,
            vc_targets
        );
        if let Some(target) = params.target {
            debug_assert!(
                vc_targets.iter().all(|n| *n == target),
                "schedule '{}' faults {:?} but the designated budget target is {target}",
                self.label,
                vc_targets
            );
        }
        let bb_budget = params.num_bb.saturating_sub(1) / 2;
        debug_assert!(
            self.bb_budget_targets().len() <= bb_budget,
            "schedule '{}' faults {} BB replicas, budget f_b = {bb_budget}",
            self.label,
            self.bb_budget_targets().len()
        );
        // Release builds: the params are still "used".
        let _ = params;
    }

    /// One line per event, for failure artifacts and replay logs.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "class: {} (liveness_friendly: {})\n",
            self.label, self.liveness_friendly
        );
        let mut events = self.events.clone();
        events.sort_by_key(|(at, _)| *at);
        for (at, fault) in &events {
            let _ = writeln!(out, "  t={at:>6}ms  {fault:?}");
        }
        out
    }

    /// Derives a random schedule from `seed`: one of the scenario classes
    /// below, with all times and targets drawn from the seeded RNG.
    ///
    /// Classes: `clean`, `crash-recover`, `partition-heal`,
    /// `dup-reorder-burst`, `loss-burst` (the only liveness-unfriendly
    /// one), `clock-drift`, `mixed` (crash + drift), and `crash-amnesia`
    /// (power-cycle one VC and one BB node — requires the election to run
    /// with `ElectionBuilder::durability` for the recovered VC to keep
    /// its receipt obligations).
    pub fn random(seed: u64, params: &ScheduleParams) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5343_4845_4455_4C45);
        let fv = params.vc_faults.max(1);
        let span = params
            .fault_until_ms
            .saturating_sub(params.fault_from_ms)
            .max(1);
        let at = |rng: &mut StdRng| params.fault_from_ms + rng.gen_range(0..span);
        let node = |rng: &mut StdRng, num_vc: usize| {
            params
                .target
                .unwrap_or_else(|| NodeId::vc(rng.gen_range(0..num_vc as u32)))
        };
        let mut schedule = Schedule::default();
        match rng.gen_range(0..8u32) {
            0 => {}
            1 => {
                schedule.label = "crash-recover".into();
                let crashes = rng.gen_range(1..=fv);
                for _ in 0..crashes {
                    let target = node(&mut rng, params.num_vc);
                    let t1 = at(&mut rng);
                    schedule.push(t1, NetFault::Crash(target));
                    if rng.gen_bool(0.6) {
                        let t2 = t1 + rng.gen_range(500..=span);
                        schedule.push(t2.min(params.heal_by_ms), NetFault::Recover(target));
                    }
                }
            }
            2 => {
                schedule.label = "partition-heal".into();
                // Isolate at most f_v nodes so voters can always reach a
                // quorum-capable majority side; prefer the designated
                // target so the fault budget is shared with any Byzantine
                // behaviour.
                let isolated: Vec<NodeId> = match params.target {
                    Some(target) => vec![target],
                    None => {
                        // Distinct picks: duplicates would silently isolate
                        // fewer nodes than the drawn count.
                        let mut picks = std::collections::BTreeSet::new();
                        for i in 0..rng.gen_range(1..=fv) {
                            picks.insert(NodeId::vc(i as u32 + rng.gen_range(0u32..2)));
                        }
                        picks.into_iter().collect()
                    }
                };
                let rest: Vec<NodeId> = (0..params.num_vc as u32)
                    .map(NodeId::vc)
                    .filter(|n| !isolated.contains(n))
                    .collect();
                let t1 = at(&mut rng);
                schedule.push(t1, NetFault::Partition(isolated, rest));
                schedule.push(params.heal_by_ms, NetFault::HealPartitions);
            }
            3 => {
                schedule.label = "dup-reorder-burst".into();
                let mut burst = params.base_profile.clone();
                burst.duplicate_probability = 0.1 + rng.gen::<f64>() * 0.4;
                burst.jitter = burst.jitter * rng.gen_range(2u32..10) + Duration::from_millis(20);
                let t1 = at(&mut rng);
                schedule.push(t1, NetFault::SetProfile(burst));
                schedule.push(
                    params.heal_by_ms,
                    NetFault::SetProfile(params.base_profile.clone()),
                );
            }
            4 => {
                schedule.label = "loss-burst".into();
                schedule.liveness_friendly = false;
                let burst = params
                    .base_profile
                    .clone()
                    .with_drop(0.05 + rng.gen::<f64>() * 0.3);
                let t1 = at(&mut rng);
                schedule.push(t1, NetFault::SetProfile(burst));
                schedule.push(
                    params.heal_by_ms,
                    NetFault::SetProfile(params.base_profile.clone()),
                );
            }
            5 => {
                schedule.label = "clock-drift".into();
                for _ in 0..rng.gen_range(1..=fv) {
                    let target = node(&mut rng, params.num_vc);
                    let drift = rng.gen_range(0u64..=3000) as i64 - 1500;
                    schedule.push(at(&mut rng), NetFault::SetDrift(target, drift));
                }
            }
            6 => {
                schedule.label = "mixed-crash-drift".into();
                let crashed = node(&mut rng, params.num_vc);
                let t1 = at(&mut rng);
                schedule.push(t1, NetFault::Crash(crashed));
                schedule.push(
                    (t1 + rng.gen_range(1000u64..=4000)).min(params.heal_by_ms),
                    NetFault::Recover(crashed),
                );
                // Drift a node other than the crashed one, keeping the
                // simultaneously-faulty count at f_v.
                let drifted = NodeId::vc((crashed.index + 1) % params.num_vc as u32);
                schedule.push(at(&mut rng), NetFault::SetDrift(drifted, 800));
            }
            _ => Self::amnesia_events(&mut rng, params, &mut schedule),
        }
        schedule.events.sort_by_key(|(t, _)| *t);
        schedule.assert_fault_budget(params);
        schedule
    }

    /// Derives an amnesia-only schedule from `seed` (the fuzzer's
    /// `--faults amnesia` mode): always the `crash-amnesia` class, with
    /// times drawn from the seeded RNG.
    pub fn random_amnesia(seed: u64, params: &ScheduleParams) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x414D_4E45_5349_4121);
        let mut schedule = Schedule::default();
        Self::amnesia_events(&mut rng, params, &mut schedule);
        schedule.events.sort_by_key(|(t, _)| *t);
        schedule.assert_fault_budget(params);
        schedule
    }

    /// Derives a gray-partition schedule from `seed` (the fuzzer's
    /// `--faults gray` mode): one *asymmetric* cut against the
    /// designated fault target. Half the seeds cut one direction
    /// completely (`loss_pct = 100`, within the fault model: one faulty
    /// node); the rest degrade the link probabilistically (30–90% loss),
    /// which — like loss bursts — voids the liveness guarantee.
    pub fn random_gray(seed: u64, params: &ScheduleParams) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4752_4159_4355_5421);
        let span = params
            .fault_until_ms
            .saturating_sub(params.fault_from_ms)
            .max(1);
        let mut schedule = Schedule {
            label: "gray-partition".into(),
            ..Default::default()
        };
        let victim = params
            .target
            .unwrap_or_else(|| NodeId::vc(rng.gen_range(0..params.num_vc as u32)));
        let rest: Vec<NodeId> = (0..params.num_vc as u32)
            .map(NodeId::vc)
            .filter(|n| *n != victim)
            .collect();
        let loss_pct = if rng.gen_bool(0.5) {
            100
        } else {
            schedule.liveness_friendly = false;
            rng.gen_range(30..=90u8)
        };
        // Which direction dies: traffic *into* the victim (it goes
        // deaf), or traffic *out of* it (it goes mute).
        let (from, to) = if rng.gen_bool(0.5) {
            (rest.clone(), vec![victim])
        } else {
            (vec![victim], rest.clone())
        };
        let t1 = params.fault_from_ms + rng.gen_range(0..span);
        schedule.push(t1, NetFault::GrayPartition { from, to, loss_pct });
        schedule.push(params.heal_by_ms, NetFault::HealPartitions);
        schedule.events.sort_by_key(|(t, _)| *t);
        schedule.assert_fault_budget(params);
        schedule
    }

    /// The `crash-amnesia` class: power-cycle one VC node (the designated
    /// fault target, sharing the `f_v` budget with any Byzantine
    /// behaviour) and one BB replica mid-voting, recovering both before
    /// `heal_by_ms`. Within the model only when the election runs with a
    /// durability layer — the recovered VC must remember its endorsements
    /// and issued receipts.
    fn amnesia_events(rng: &mut StdRng, params: &ScheduleParams, schedule: &mut Schedule) {
        schedule.label = "crash-amnesia".into();
        let span = params
            .fault_until_ms
            .saturating_sub(params.fault_from_ms)
            .max(1);
        let at = |rng: &mut StdRng| params.fault_from_ms + rng.gen_range(0..span);
        let vc = params
            .target
            .unwrap_or_else(|| NodeId::vc(rng.gen_range(0..params.num_vc as u32)));
        let t1 = at(rng);
        schedule.push(t1, NetFault::CrashAmnesia(vc));
        schedule.push(
            (t1 + rng.gen_range(500u64..=3000)).min(params.heal_by_ms),
            NetFault::Recover(vc),
        );
        if params.num_bb > 0 {
            let bb = NodeId::bb(rng.gen_range(0..params.num_bb as u32));
            let t2 = at(rng);
            schedule.push(t2, NetFault::CrashAmnesia(bb));
            schedule.push(
                (t2 + rng.gen_range(500u64..=3000)).min(params.heal_by_ms),
                NetFault::Recover(bb),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScheduleParams {
        ScheduleParams {
            num_vc: 4,
            vc_faults: 1,
            num_bb: 4,
            fault_from_ms: 1_000,
            fault_until_ms: 28_000,
            heal_by_ms: 32_000,
            base_profile: NetworkProfile::wan(),
            target: None,
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        for seed in 0..32 {
            let a = Schedule::random(seed, &params());
            let b = Schedule::random(seed, &params());
            assert_eq!(a.describe(), b.describe(), "seed {seed}");
        }
    }

    #[test]
    fn all_classes_reachable() {
        let mut labels = std::collections::HashSet::new();
        for seed in 0..256 {
            labels.insert(Schedule::random(seed, &params()).label);
        }
        for want in [
            "clean",
            "crash-recover",
            "partition-heal",
            "dup-reorder-burst",
            "loss-burst",
            "clock-drift",
            "mixed-crash-drift",
            "crash-amnesia",
        ] {
            assert!(labels.contains(want), "class {want} never generated");
        }
    }

    #[test]
    fn amnesia_mode_always_power_cycles_vc_and_bb() {
        for seed in 0..32 {
            let s = Schedule::random_amnesia(seed, &params());
            assert_eq!(s.label, "crash-amnesia", "seed {seed}");
            assert!(s.has_amnesia());
            assert!(s.liveness_friendly);
            let (mut vc, mut bb) = (0, 0);
            for (_, fault) in &s.events {
                if let NetFault::CrashAmnesia(id) = fault {
                    match id.kind {
                        ddemos_protocol::NodeKind::Vc => vc += 1,
                        ddemos_protocol::NodeKind::Bb => bb += 1,
                        _ => panic!("unexpected amnesia target {id}"),
                    }
                }
            }
            assert_eq!((vc, bb), (1, 1), "seed {seed}: one of each, within budget");
        }
    }

    #[test]
    fn heals_land_before_deadline() {
        for seed in 0..256 {
            let s = Schedule::random(seed, &params());
            for (at, fault) in &s.events {
                if matches!(
                    fault,
                    NetFault::HealPartitions | NetFault::SetProfile(_) | NetFault::Recover(_)
                ) {
                    assert!(*at <= params().heal_by_ms, "seed {seed}: heal at {at}");
                }
            }
        }
    }
}
