//! The single result type carried out of a finished election.

use crate::builder::StoreKind;
use crate::election::PhaseTimings;
use crate::workload::WorkloadStats;
use ddemos::auditor::AuditReport;
use ddemos_net::NetStats;
use ddemos_protocol::posts::ElectionResult;
use ddemos_protocol::SerialNo;

/// Network traffic totals captured from the simulated network.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetReport {
    /// Messages handed to the router.
    pub sent: u64,
    /// Messages delivered to an inbox.
    pub delivered: u64,
    /// Messages dropped (loss, crashes, partitions, unknown nodes).
    pub dropped: u64,
    /// VOTE messages sent.
    pub vote_msgs: u64,
    /// ENDORSE-round messages sent.
    pub endorse_msgs: u64,
    /// Receipt-share messages sent.
    pub share_msgs: u64,
    /// Vote-set-consensus messages sent.
    pub consensus_msgs: u64,
}

impl NetReport {
    /// Snapshots the counters of a running network.
    pub fn capture(stats: &NetStats) -> NetReport {
        NetReport {
            sent: stats.sent(),
            delivered: stats.delivered(),
            dropped: stats.dropped(),
            vote_msgs: stats.vote_msgs(),
            endorse_msgs: stats.endorse_msgs(),
            share_msgs: stats.share_msgs(),
            consensus_msgs: stats.consensus_msgs(),
        }
    }
}

/// Everything a finished election produced, in one typed result: the
/// published tally, the receipts voters walked away with, the audit
/// verdict, per-phase wall-clock timings (Fig 5c's series), and
/// network/storage/workload statistics.
#[derive(Clone, Debug)]
pub struct ElectionReport {
    /// The published result (`None` until [`crate::Election::tally`] ran,
    /// e.g. for VC-only benchmark elections).
    pub result: Option<ElectionResult>,
    /// `(serial, receipt)` per vote cast through
    /// [`crate::VotingPhase::cast`].
    pub receipts: Vec<(SerialNo, u64)>,
    /// The audit verdict (`None` until [`crate::Election::audit`] ran).
    pub audit: Option<AuditReport>,
    /// Wall-clock duration of each phase.
    pub timings: PhaseTimings,
    /// Network traffic totals.
    pub net: NetReport,
    /// Statistics of the last bulk workload, if one ran.
    pub workload: Option<WorkloadStats>,
    /// Which ballot store backed the VC nodes.
    pub store: StoreKind,
    /// Worker count of the parallel runtime that drove EA setup, trustee
    /// share processing, and the audit sweep
    /// ([`crate::ElectionBuilder::threads`] / `DDEMOS_THREADS`).
    pub threads: usize,
}

impl ElectionReport {
    /// The tally, if published.
    pub fn tally(&self) -> Option<&[u64]> {
        self.result.as_ref().map(|r| r.tally.as_slice())
    }

    /// Whether the audit ran and found no failures.
    pub fn verified(&self) -> bool {
        self.audit.as_ref().is_some_and(AuditReport::ok)
    }
}
