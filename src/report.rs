//! The single result type carried out of a finished election.

use crate::builder::StoreKind;
use crate::election::PhaseTimings;
use crate::workload::WorkloadStats;
use ddemos::auditor::AuditReport;
use ddemos_net::NetStats;
use ddemos_obs::MetricsSnapshot;
use ddemos_protocol::posts::ElectionResult;
use ddemos_protocol::SerialNo;

/// Network traffic totals captured from the simulated network.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetReport {
    /// Messages handed to the router.
    pub sent: u64,
    /// Messages delivered to an inbox.
    pub delivered: u64,
    /// Messages dropped (loss, crashes, partitions, unknown nodes).
    pub dropped: u64,
    /// Total scheduled one-way delay of delivered messages (simulation
    /// nanoseconds).
    pub delay_ns_total: u64,
    /// VOTE messages sent.
    pub vote_msgs: u64,
    /// ENDORSE-round messages sent.
    pub endorse_msgs: u64,
    /// Receipt-share messages sent.
    pub share_msgs: u64,
    /// Vote-set-consensus messages sent.
    pub consensus_msgs: u64,
}

impl NetReport {
    /// Snapshots the counters of a running network.
    pub fn capture(stats: &NetStats) -> NetReport {
        NetReport {
            sent: stats.sent(),
            delivered: stats.delivered(),
            dropped: stats.dropped(),
            delay_ns_total: stats.delay_ns_total(),
            vote_msgs: stats.vote_msgs(),
            endorse_msgs: stats.endorse_msgs(),
            share_msgs: stats.share_msgs(),
            consensus_msgs: stats.consensus_msgs(),
        }
    }
}

/// Everything a finished election produced, in one typed result: the
/// published tally, the receipts voters walked away with, the audit
/// verdict, per-phase wall-clock timings (Fig 5c's series), and
/// network/storage/workload statistics.
#[derive(Clone, Debug)]
pub struct ElectionReport {
    /// The published result (`None` until [`crate::Election::tally`] ran,
    /// e.g. for VC-only benchmark elections).
    pub result: Option<ElectionResult>,
    /// `(serial, receipt)` per vote cast through
    /// [`crate::VotingPhase::cast`].
    pub receipts: Vec<(SerialNo, u64)>,
    /// The audit verdict (`None` until [`crate::Election::audit`] ran).
    pub audit: Option<AuditReport>,
    /// Wall-clock duration of each phase.
    pub timings: PhaseTimings,
    /// Network traffic totals.
    pub net: NetReport,
    /// The election's merged telemetry: per-node recorder snapshots
    /// (step latency, WAL batching, frame codec timing) plus transport
    /// counters, folded in deterministic node order. Virtual-time
    /// elections produce a seed-replayable snapshot that joins
    /// [`ElectionReport::canonical_text`]; wall-clock and profiling runs
    /// are tagged [`ddemos_obs::TimeDomain::Wall`] and contribute only a
    /// marker line. The authenticated-connection counters that used to
    /// live in a dedicated `conns` field are folded in under
    /// `net.conn.*` (see [`ElectionReport::conns`]).
    pub metrics: MetricsSnapshot,
    /// Statistics of the last bulk workload, if one ran.
    pub workload: Option<WorkloadStats>,
    /// Which ballot store backed the VC nodes.
    pub store: StoreKind,
    /// Worker count of the parallel runtime that drove EA setup, trustee
    /// share processing, and the audit sweep
    /// ([`crate::ElectionBuilder::threads`] / `DDEMOS_THREADS`).
    pub threads: usize,
}

impl ElectionReport {
    /// The tally, if published.
    pub fn tally(&self) -> Option<&[u64]> {
        self.result.as_ref().map(|r| r.tally.as_slice())
    }

    /// Whether the audit ran and found no failures.
    pub fn verified(&self) -> bool {
        self.audit.as_ref().is_some_and(AuditReport::ok)
    }

    /// Authenticated-connection counters, reconstructed from the
    /// `net.conn.*` entries of [`ElectionReport::metrics`] — `Some` only
    /// when the election ran over the event-loop TCP driver.
    #[deprecated(note = "read the `net.conn.*` counters of `metrics` instead")]
    pub fn conns(&self) -> Option<ddemos_net::ConnSnapshot> {
        let counter = |name: &str| self.metrics.counter(name, None, None);
        // The fold writes every key, zero or not, so presence of the
        // first one distinguishes "no TCP transport" from "no dials".
        if !self
            .metrics
            .counters
            .contains_key(&ddemos_obs::metric_key("net.conn.dials", "", ""))
        {
            return None;
        }
        Some(ddemos_net::ConnSnapshot {
            dials: counter("net.conn.dials"),
            authenticated: counter("net.conn.authenticated"),
            auth_failed: counter("net.conn.auth_failed"),
            rejected: counter("net.conn.rejected"),
            retries: counter("net.conn.retries"),
        })
    }

    /// A canonical, line-oriented dump of every seed-determined artifact:
    /// tally, receipts, audit verdict, simulation-time phase timings
    /// (setup is excluded — it is real compute, not simulation time), and
    /// network statistics. Two runs of the same virtual-time scenario seed
    /// must produce byte-identical output; `tests/determinism.rs` and the
    /// scenario fuzzer assert exactly that.
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match &self.result {
            Some(r) => {
                let _ = writeln!(out, "tally: {:?}", r.tally);
                let _ = writeln!(out, "counted: {}", r.ballots_counted);
            }
            None => {
                let _ = writeln!(out, "tally: none");
            }
        }
        let _ = writeln!(out, "receipts: {}", self.receipts.len());
        for (serial, receipt) in &self.receipts {
            let _ = writeln!(out, "  {} {receipt:016x}", serial.0);
        }
        match &self.audit {
            Some(a) => {
                let _ = writeln!(out, "audit: ok={} checks={}", a.ok(), a.checks_run);
                for f in &a.failures {
                    let _ = writeln!(out, "  fail: {f}");
                }
            }
            None => {
                let _ = writeln!(out, "audit: none");
            }
        }
        let t = &self.timings;
        let _ = writeln!(
            out,
            "timings_ns: vote={} consensus={} push={} publish={}",
            t.vote_collection.as_nanos(),
            t.vote_set_consensus.as_nanos(),
            t.push_to_bb_and_tally.as_nanos(),
            t.publish_result.as_nanos(),
        );
        let n = &self.net;
        let _ = writeln!(
            out,
            "net: sent={} delivered={} dropped={} vote={} endorse={} share={} consensus={}",
            n.sent,
            n.delivered,
            n.dropped,
            n.vote_msgs,
            n.endorse_msgs,
            n.share_msgs,
            n.consensus_msgs,
        );
        let _ = writeln!(out, "net_delay_ns: {}", n.delay_ns_total);
        // Virtual-domain telemetry is a pure function of the seed and
        // joins in full; wall-domain snapshots contribute only their
        // marker line (see `MetricsSnapshot::fingerprint`).
        out.push_str(&self.metrics.fingerprint());
        out
    }
}
