//! Seeded fault-scenario fuzzing: derive a random schedule from a seed,
//! run a full virtual-time election under it, and check the paper's
//! invariants.
//!
//! * **Safety** (always): the published tally counts every receipted vote,
//!   counts nothing the driver did not attempt, and the audit verifies.
//! * **Liveness** (when the schedule stays within the fault model of
//!   §III-C — see [`Schedule::liveness_friendly`]): every honest voter
//!   obtains a valid receipt and the election publishes a result.
//!
//! Everything — election shape, Byzantine behaviours, fault schedule,
//! vote choices, network randomness — derives from one `u64` seed, and the
//! run executes on the virtual clock, so a failing seed reproduces
//! byte-identically from the CLI:
//!
//! ```text
//! cargo run --release --example scenario_fuzz -- --seed <N>
//! ```
//!
//! Beyond the network-fault classes of [`Schedule::random`], three mixes
//! exercise the PR-7 fault surface: `--faults gray` (asymmetric one-way
//! cuts), `--faults disk` (schedulable full-device and slow-fsync
//! windows, executed by this runner against the journals), and
//! `--faults adaptive` (state-triggered Byzantine collectors and
//! diverging BB replicas). Campaign composition and the coverage-guided
//! corpus live in [`crate::campaign`].

use crate::builder::{Durability, ElectionBuilder, StoreKind};
use crate::campaign::DiskPool;
use crate::dsl::{DiskEvent, ScenarioBuilder, ScenarioEvent, ScenarioScript};
use crate::election::Election;
use crate::report::ElectionReport;
use crate::schedule::{Schedule, ScheduleParams};
use ddemos::voter::VoteError;
use ddemos_net::NetworkProfile;
use ddemos_protocol::{ElectionParams, NodeId, PartId};
use ddemos_storage::DiskProfile;
use ddemos_vc::{TriggeredAdversary, VcBehavior};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Which fault classes a scenario sweep draws from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultMix {
    /// Every network class ([`Schedule::random`]).
    #[default]
    Any,
    /// Only `crash-amnesia` power-cycles ([`Schedule::random_amnesia`]) —
    /// the CI sweep's `--faults amnesia` mode, hammering the durability
    /// and recovery paths.
    Amnesia,
    /// Asymmetric gray partitions ([`Schedule::random_gray`]): one-way
    /// cuts and lossy-link brown-outs against the designated target.
    Gray,
    /// Schedulable disk faults: a full journal device (typed read-only
    /// degradation) plus a slow-fsync brown-out, executed by the runner
    /// at virtual times.
    Disk,
    /// State-triggered adversaries: a [`TriggeredAdversary`] collector
    /// and (half the time) a diverge-after-finalized BB replica.
    Adaptive,
}

impl FaultMix {
    /// The CLI / corpus name of this mix.
    pub fn name(self) -> &'static str {
        match self {
            FaultMix::Any => "any",
            FaultMix::Amnesia => "amnesia",
            FaultMix::Gray => "gray",
            FaultMix::Disk => "disk",
            FaultMix::Adaptive => "adaptive",
        }
    }

    /// Parses a [`FaultMix::name`] string.
    pub fn parse(name: &str) -> Option<FaultMix> {
        match name {
            "any" => Some(FaultMix::Any),
            "amnesia" => Some(FaultMix::Amnesia),
            "gray" => Some(FaultMix::Gray),
            "disk" => Some(FaultMix::Disk),
            "adaptive" => Some(FaultMix::Adaptive),
            _ => None,
        }
    }
}

/// Options for [`run_scenario_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ScenarioOptions {
    /// Fault classes to draw from.
    pub faults: FaultMix,
    /// Worker-thread override for the election's parallel runtime
    /// (`None` = the `DDEMOS_THREADS`/auto default). Artifacts must be
    /// identical for every value.
    pub threads: Option<usize>,
}

/// Registered electorate per scenario election.
const BALLOTS: u64 = 12;
/// Votes the driver casts.
const VOTES: usize = 6;
/// Virtual milliseconds between casts (lets scheduled faults interleave
/// with the voting phase).
const CAST_GAP_MS: u64 = 500;
/// `Tcomp` assumed when deriving voter patience from the network profile
/// (worst-case single protocol step, Theorem 1).
const T_COMP: Duration = Duration::from_millis(100);
/// `Δ` assumed for the patience derivation. Scheduled drift faults go up
/// to ±1.5 s, but they only move *when* a node closes its polls — the
/// per-message patience bound needs only the small skew honest exchanges
/// see.
const DRIFT_BOUND: Duration = Duration::from_millis(100);
/// `T_end` of the scenario elections (virtual ms).
const END_MS: u64 = 40_000;
/// When the receipt-uniqueness recheck re-submits receipted codes (after
/// `heal_by_ms` — every fault healed, every power-cycled node recovered —
/// and before `T_end`).
const RECHECK_AT_MS: u64 = 33_000;
/// The driver closes the election here (after every node's drifted clock
/// has passed `T_end`).
const CLOSE_AT_MS: u64 = 44_000;
/// Wall-clock bound on the close drain: a scenario that cannot reach
/// consensus fails fast instead of hanging the sweep.
const CLOSE_TIMEOUT: Duration = Duration::from_secs(20);

/// Everything derived from the seed before the election runs.
#[derive(Clone, Debug)]
pub struct ScenarioPlan {
    /// The driving seed.
    pub seed: u64,
    /// Baseline network profile (LAN or WAN).
    pub profile: NetworkProfile,
    /// Ballot store backing the collectors.
    pub store: StoreKind,
    /// Per-collector behaviours (at most `f_v` Byzantine).
    pub behaviors: Vec<VcBehavior>,
    /// The timed network-fault schedule.
    pub schedule: Schedule,
    /// The script layer beyond the network: disk faults, churn, and
    /// state-triggered adversaries (empty for the pure network mixes).
    pub extras: ScenarioScript,
    /// `(ballot, option)` casts, in order.
    pub votes: Vec<(usize, usize)>,
    /// Whether the paper guarantees liveness under this plan.
    pub liveness_expected: bool,
    /// Whether the election runs with a durability layer (always, when
    /// the schedule power-cycles a node or the script faults a disk: an
    /// amnesia crash without a journal is outside the fault model the
    /// liveness theorem assumes, and disk faults need disks to exist).
    pub durability: bool,
}

impl ScenarioPlan {
    /// Derives the complete plan from a seed (all fault classes).
    pub fn from_seed(seed: u64) -> ScenarioPlan {
        Self::from_seed_with(seed, FaultMix::Any)
    }

    /// Derives the complete plan from a seed, drawing the schedule from
    /// the given fault mix.
    pub fn from_seed_with(seed: u64, faults: FaultMix) -> ScenarioPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5343_454E_4152_494F);
        let profile = if rng.gen_bool(0.5) {
            NetworkProfile::wan()
        } else {
            NetworkProfile::lan()
        };
        let store = if rng.gen_bool(0.25) {
            StoreKind::Latency(ddemos_vc::StorageModel::default())
        } else {
            StoreKind::Memory
        };
        // One designated fault target shares the f_v = 1 budget between
        // the Byzantine behaviour and the scheduled node faults: a
        // Byzantine collector that is *also* crashed or partitioned is one
        // fault, a Byzantine collector plus a different partitioned node
        // would be two — outside the model, and the fuzzer proved it
        // breaks liveness (receipt reconstruction needs N_v − f_v shares).
        let fault_node = rng.gen_range(0..4u32);
        let mut behaviors = vec![VcBehavior::Honest; 4];
        // The disk and adaptive mixes spend the f_v budget on their own
        // fault shape (a degraded replica / a triggered adversary), so
        // only the network mixes draw a static Byzantine behaviour.
        let network_mix = matches!(faults, FaultMix::Any | FaultMix::Amnesia | FaultMix::Gray);
        if network_mix && rng.gen_bool(0.4) {
            let byz = [
                VcBehavior::CorruptShares,
                VcBehavior::WithholdShares,
                VcBehavior::EquivocalEndorser,
                VcBehavior::ConsensusInverter,
            ][rng.gen_range(0..4usize)];
            behaviors[fault_node as usize] = byz;
        }
        let schedule_params = ScheduleParams {
            num_vc: 4,
            vc_faults: 1,
            num_bb: 4,
            fault_from_ms: 1_000,
            fault_until_ms: 28_000,
            heal_by_ms: 32_000,
            base_profile: profile.clone(),
            target: Some(ddemos_protocol::NodeId::vc(fault_node)),
        };
        let mut extras = ScenarioScript::default();
        let schedule = match faults {
            FaultMix::Any => Schedule::random(seed, &schedule_params),
            FaultMix::Amnesia => Schedule::random_amnesia(seed, &schedule_params),
            FaultMix::Gray => Schedule::random_gray(seed, &schedule_params),
            FaultMix::Disk => {
                extras = Self::disk_script(&mut rng, fault_node);
                Schedule {
                    label: extras.label.clone(),
                    ..Default::default()
                }
            }
            FaultMix::Adaptive => {
                extras = Self::adaptive_script(&mut rng, fault_node);
                Schedule {
                    label: extras.label.clone(),
                    ..Default::default()
                }
            }
        };
        let votes = (0..VOTES).map(|i| (i, rng.gen_range(0..3usize))).collect();
        let liveness_expected = schedule.liveness_friendly && extras.liveness_friendly;
        let durability = schedule.has_amnesia() || extras.needs_durability();
        ScenarioPlan {
            seed,
            profile,
            store,
            behaviors,
            schedule,
            extras,
            votes,
            liveness_expected,
            durability,
        }
    }

    /// The `disk-fault` script: a slow-fsync brown-out on one BB journal
    /// plus a full-device window on the designated collector's journal,
    /// with a churn probe mid-run. All within the model: the degraded
    /// collector is the one budgeted fault (it stays read-only until a
    /// restart re-probes the device), and the brown-out only charges
    /// virtual latency.
    fn disk_script(rng: &mut StdRng, fault_node: u32) -> ScenarioScript {
        let vc_label = format!("vc-{fault_node}");
        let bb_label = format!("bb-{}", rng.gen_range(0..4u32));
        let fsync = Duration::from_millis(rng.gen_range(10..=40u64));
        let full_at = 4_000 + rng.gen_range(0..16_000u64);
        ScenarioBuilder::new("disk-fault")
            .at_ms(3_000, |t| t.slow_fsync(bb_label.clone(), fsync))
            .at_ms(full_at, |t| t.disk_full(vc_label.clone()))
            .at_ms(18_500, |t| t.churn())
            .at_ms(24_000, |t| t.disk_restore(bb_label.clone()))
            .at_ms(30_000, |t| t.disk_heal(vc_label.clone()))
            .build()
    }

    /// The `adaptive-adversary` script: one state-triggered Byzantine
    /// collector (equivocating once a quorum is believably close, or
    /// withholding / corrupting shares for a serial range), optionally a
    /// BB replica whose reads diverge after the first finalized set, and
    /// sometimes a churn probe. One collector misbehaving plus one BB
    /// replica lying stays within both budgets (`f_v = 1`, `f_b = 1`).
    fn adaptive_script(rng: &mut StdRng, fault_node: u32) -> ScenarioScript {
        let adversary = match rng.gen_range(0..3u32) {
            0 => TriggeredAdversary::equivocate_after_endorsements(rng.gen_range(1..=3)),
            1 => {
                let lo = rng.gen_range(0..VOTES as u64 / 2);
                TriggeredAdversary::withhold_shares_for_serials(lo, lo + rng.gen_range(1..=2u64))
            }
            _ => {
                let lo = rng.gen_range(0..VOTES as u64 / 2);
                TriggeredAdversary::corrupt_shares_for_serials(lo, lo + rng.gen_range(1..=2u64))
            }
        };
        let mut builder =
            ScenarioBuilder::new("adaptive-adversary").trigger(NodeId::vc(fault_node), adversary);
        if rng.gen_bool(0.5) {
            builder = builder.bb_diverges_after_finalized(rng.gen_range(0..4u32));
        }
        if rng.gen_bool(0.5) {
            builder = builder.at_ms(20_000, |t| t.churn());
        }
        builder.build()
    }

    /// Human-readable plan summary (for failure artifacts).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("seed: {}\n", self.seed);
        let _ = writeln!(
            out,
            "profile: {}",
            if self.profile.vc_to_vc >= Duration::from_millis(10) {
                "wan"
            } else {
                "lan"
            }
        );
        let _ = writeln!(out, "store: {:?}", self.store);
        let _ = writeln!(out, "behaviors: {:?}", self.behaviors);
        let _ = writeln!(out, "votes: {:?}", self.votes);
        let _ = writeln!(out, "liveness_expected: {}", self.liveness_expected);
        let _ = writeln!(out, "durability: {}", self.durability);
        out.push_str(&self.schedule.describe());
        if !self.extras.is_empty() {
            let _ = writeln!(out, "script: {}", self.extras.label);
            for (at, event) in &self.extras.events {
                if !matches!(event, ScenarioEvent::Net(_)) {
                    let _ = writeln!(out, "  t={at:>6}ms  {event:?}");
                }
            }
            for (node, adversary) in &self.extras.adversaries {
                let _ = writeln!(out, "  trigger {node}: {adversary:?}");
            }
            for bb in &self.extras.bb_divergent {
                let _ = writeln!(out, "  bb-{bb}: diverge-after-finalized");
            }
        }
        out
    }
}

/// The result of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The plan that ran.
    pub plan: ScenarioPlan,
    /// Invariant violations (empty = scenario passed).
    pub violations: Vec<String>,
    /// Canonical dump of every seed-determined artifact; two runs of the
    /// same seed must produce identical fingerprints.
    pub fingerprint: String,
    /// The full election report (when the run got far enough to produce
    /// one).
    pub report: Option<ElectionReport>,
}

impl ScenarioOutcome {
    /// Whether every checked invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The mutable churn state the runner threads through event execution:
/// the latest receipted cast (what a churned connection re-submits) and
/// the log lines that land in the fingerprint.
struct ChurnState {
    latest: Option<(usize, usize, PartId, u64)>,
    log: Vec<(u64, String)>,
}

/// Applies one runner-executed script event at its virtual time.
fn apply_runner_event(
    election: &Election,
    pool: &DiskPool,
    event: &ScenarioEvent,
    at_ms: u64,
    patience: Duration,
    churn: &mut ChurnState,
    violations: &mut Vec<String>,
) {
    match event {
        ScenarioEvent::Disk(disk_event) => {
            let Some(disk) = pool.get(disk_event.label()) else {
                churn.log.push((
                    at_ms,
                    format!("disk event on unknown label {}", disk_event.label()),
                ));
                return;
            };
            match disk_event {
                DiskEvent::Full(label) => {
                    disk.set_full(true);
                    churn.log.push((at_ms, format!("disk {label}: full")));
                }
                DiskEvent::Heal(label) => {
                    disk.set_full(false);
                    churn.log.push((at_ms, format!("disk {label}: healed")));
                }
                DiskEvent::SlowFsync(label, fsync) => {
                    disk.set_fault_profile(Some(DiskProfile {
                        fsync: *fsync,
                        ..DiskProfile::default()
                    }));
                    churn.log.push((
                        at_ms,
                        format!("disk {label}: slow fsync {}ms", fsync.as_millis()),
                    ));
                }
                DiskEvent::Restore(label) => {
                    disk.set_fault_profile(None);
                    churn.log.push((at_ms, format!("disk {label}: restored")));
                }
            }
        }
        ScenarioEvent::Churn => {
            let Some((ballot, option, part, receipt)) = churn.latest else {
                churn
                    .log
                    .push((at_ms, "churn: nothing receipted yet".into()));
                return;
            };
            // A fresh connection (new request ids, new node ordering)
            // re-submits the receipted cast: the protocol must hand back
            // the *identical* receipt.
            let voting = election.voting().patience(patience);
            match voting.cast_with_part(ballot, option, part) {
                Ok(record) if record.audit.receipt == receipt => {
                    churn
                        .log
                        .push((at_ms, format!("churn: receipt {receipt:016x} reproduced")));
                }
                Ok(record) => {
                    violations.push(format!(
                        "safety: churned re-submission of ballot {ballot} receipted \
                         {:016x} but the original receipt was {receipt:016x}",
                        record.audit.receipt
                    ));
                    churn.log.push((at_ms, "churn: receipt mismatch".into()));
                }
                Err(e) => {
                    // Not a safety violation (no second receipt exists);
                    // logged so the fingerprint still captures it.
                    churn.log.push((at_ms, format!("churn: {e}")));
                }
            }
        }
        // Net events were split into the builder's schedule.
        ScenarioEvent::Net(_) => {}
    }
}

/// Advances virtual time to `target_ms`, firing every pending runner
/// event whose timestamp is reached along the way.
#[allow(clippy::too_many_arguments)]
fn advance_to(
    election: &Election,
    pool: &DiskPool,
    pending: &mut VecDeque<(u64, ScenarioEvent)>,
    target_ms: u64,
    patience: Duration,
    churn: &mut ChurnState,
    violations: &mut Vec<String>,
) {
    while let Some(&(at, _)) = pending.front() {
        if at > target_ms {
            break;
        }
        let now = election.now_ms();
        if at > now {
            election.sleep(Duration::from_millis(at - now));
        }
        let (at, event) = pending.pop_front().expect("peeked");
        apply_runner_event(election, pool, &event, at, patience, churn, violations);
    }
    let now = election.now_ms();
    if target_ms > now {
        election.sleep(Duration::from_millis(target_ms - now));
    }
}

/// Runs the scenario for `seed` on the virtual clock and checks the
/// invariants (all fault classes). Never panics on invariant failure —
/// violations are returned so sweeps can collect artifacts.
pub fn run_scenario(seed: u64) -> ScenarioOutcome {
    run_scenario_with(seed, &ScenarioOptions::default())
}

/// [`run_scenario`] with explicit options (fault mix, thread count).
pub fn run_scenario_with(seed: u64, options: &ScenarioOptions) -> ScenarioOutcome {
    run_plan(
        &ScenarioPlan::from_seed_with(seed, options.faults),
        options,
        None,
    )
}

/// Runs a fully derived (or mutated) plan. `pool` is the campaign's
/// shared [`DiskPool`]; passing one forces the durability layer on so
/// device state carries across the campaign's elections. Without one, a
/// plan that needs disks gets a private pool.
pub fn run_plan(
    plan: &ScenarioPlan,
    options: &ScenarioOptions,
    pool: Option<Arc<DiskPool>>,
) -> ScenarioOutcome {
    let seed = plan.seed;
    let mut violations = Vec::new();
    let durability = plan.durability || pool.is_some();
    let pool = pool.unwrap_or_default();

    let params = ElectionParams::new(
        &format!("scenario-{seed}"),
        BALLOTS,
        3,
        4,
        4,
        3,
        2,
        0,
        END_MS,
    )
    .expect("scenario params are valid");
    // The script's network events merge into the builder schedule; disk
    // and churn events stay with this runner.
    let mut schedule = plan.schedule.clone();
    for (at, fault) in plan.extras.net_schedule().events {
        schedule.push(at, fault);
    }
    let mut builder = ElectionBuilder::new(params)
        .seed(seed)
        .virtual_time()
        .network(plan.profile.clone())
        .store(plan.store)
        .vc_behaviors(plan.behaviors.clone())
        .schedule(schedule)
        .close_timeout(CLOSE_TIMEOUT);
    if durability {
        builder = builder
            .durability(Durability::sim())
            .disk_pool(pool.clone());
    }
    for (node, adversary) in &plan.extras.adversaries {
        builder = builder.triggered_adversary(*node, adversary.clone());
    }
    for &bb in &plan.extras.bb_divergent {
        builder = builder.bb_diverges_after_finalized(bb);
    }
    if let Some(threads) = options.threads {
        builder = builder.threads(threads);
    }
    let election = builder.build().expect("scenario builds");
    let mut pending: VecDeque<(u64, ScenarioEvent)> = plan.extras.runner_events().into();
    let mut churn = ChurnState {
        latest: None,
        log: Vec::new(),
    };

    // --- voting phase, paced so scheduled faults interleave -------------
    // Voter patience is the theorem-backed `Twait` for this network
    // profile (Theorem 1), not a hard-coded guess — it scales with the
    // emulated latencies, including the fuzzer's jitter bursts.
    let patience =
        ddemos::liveness::LivenessParams::for_network(&plan.profile, T_COMP, DRIFT_BOUND).t_wait(4);
    let mut cast_results: Vec<Result<(u64, PartId), VoteError>> = Vec::new();
    {
        let voting = election.voting().patience(patience);
        for &(ballot, option) in &plan.votes {
            advance_to(
                &election,
                &pool,
                &mut pending,
                election.now_ms() + CAST_GAP_MS,
                patience,
                &mut churn,
                &mut violations,
            );
            let outcome = voting
                .cast(ballot, option)
                .map(|r| (r.audit.receipt, r.audit.used_part));
            if let Ok((receipt, part)) = &outcome {
                churn.latest = Some((ballot, option, *part, *receipt));
            }
            cast_results.push(outcome);
        }
    }
    let receipted: Vec<(usize, usize)> = plan
        .votes
        .iter()
        .zip(&cast_results)
        .filter(|(_, r)| r.is_ok())
        .map(|(&v, _)| v)
        .collect();

    // --- receipt uniqueness across restarts ------------------------------
    // After every fault healed (and any power-cycled collector rebuilt
    // itself from its journal), re-submitting a receipted vote code must
    // yield the *same* receipt — the paper's "never issue two different
    // receipts for one ballot" obligation, which `CrashAmnesia` scenarios
    // can only satisfy through the durability layer.
    advance_to(
        &election,
        &pool,
        &mut pending,
        RECHECK_AT_MS,
        patience,
        &mut churn,
        &mut violations,
    );
    let mut recheck_results: Vec<(usize, Result<u64, VoteError>)> = Vec::new();
    {
        let voting = election.voting().patience(patience);
        for (&(ballot, option), cast) in plan.votes.iter().zip(&cast_results) {
            let Ok((receipt, part)) = cast else {
                continue;
            };
            let again = voting
                .cast_with_part(ballot, option, *part)
                .map(|r| r.audit.receipt);
            match &again {
                Ok(second) if second != receipt => violations.push(format!(
                    "safety: ballot {ballot} receipted {receipt:016x} before faults \
                     but {second:016x} after recovery (conflicting receipts)"
                )),
                Ok(_) => {}
                Err(e) => {
                    if plan.liveness_expected {
                        violations.push(format!(
                            "liveness: ballot {ballot} was receipted but its re-submission \
                             failed after recovery: {e}"
                        ));
                    }
                }
            }
            recheck_results.push((ballot, again));
        }
    }

    // --- close / tally / audit ------------------------------------------
    advance_to(
        &election,
        &pool,
        &mut pending,
        CLOSE_AT_MS,
        patience,
        &mut churn,
        &mut violations,
    );
    // Events scheduled past the close point (mutated plans shift them
    // there) fire now: the close drain blocks this thread in virtual
    // time, so "just before close" is the last moment the runner can
    // act. The coverage corpus works at plan level, so the pair is
    // still attributed to its shifted phase.
    while let Some((at, event)) = pending.pop_front() {
        apply_runner_event(
            &election,
            &pool,
            &event,
            at,
            patience,
            &mut churn,
            &mut violations,
        );
    }
    let closed = election.close();
    let mut result = None;
    match &closed {
        Ok(_) => {
            match election.tally() {
                Ok(r) => result = Some(r),
                Err(e) => violations.push(format!("tally failed: {e}")),
            }
            if let Err(e) = election.audit() {
                violations.push(format!("audit failed to run: {e}"));
            }
        }
        Err(e) => {
            if plan.liveness_expected {
                violations.push(format!("close failed under a within-model schedule: {e}"));
            }
        }
    }
    let report = election.report();

    // --- invariants ------------------------------------------------------
    // Safety: the tally counts every receipted vote and nothing beyond
    // what was attempted.
    if let Some(result) = &result {
        let mut receipted_counts = [0u64; 3];
        for &(_, option) in &receipted {
            receipted_counts[option] += 1;
        }
        let mut attempted_counts = [0u64; 3];
        for &(_, option) in &plan.votes {
            attempted_counts[option] += 1;
        }
        for option in 0..3 {
            if result.tally[option] < receipted_counts[option] {
                violations.push(format!(
                    "safety: option {option} tally {} < {} receipted votes",
                    result.tally[option], receipted_counts[option]
                ));
            }
            if result.tally[option] > attempted_counts[option] {
                violations.push(format!(
                    "safety: option {option} tally {} > {} attempted votes (fabricated)",
                    result.tally[option], attempted_counts[option]
                ));
            }
        }
        let total: u64 = result.tally.iter().sum();
        if total != result.ballots_counted {
            violations.push(format!(
                "safety: tally sums to {total} but {} ballots counted",
                result.ballots_counted
            ));
        }
        if !report.verified() {
            violations.push(format!(
                "safety: audit rejected the election: {:?}",
                report.audit.as_ref().map(|a| &a.failures)
            ));
        }
    }
    // Liveness: within the fault model, every voter gets a receipt and
    // the result is published.
    if plan.liveness_expected {
        for (&(ballot, _), outcome) in plan.votes.iter().zip(&cast_results) {
            if let Err(e) = outcome {
                violations.push(format!("liveness: ballot {ballot} got no receipt: {e}"));
            }
        }
        if result.is_none() {
            violations.push("liveness: no result published".into());
        }
    }

    // --- fingerprint ------------------------------------------------------
    use std::fmt::Write as _;
    let mut fingerprint = String::new();
    let _ = writeln!(fingerprint, "seed: {seed}");
    for (i, r) in cast_results.iter().enumerate() {
        let _ = writeln!(
            fingerprint,
            "cast {i}: {}",
            match r {
                Ok((receipt, part)) => format!("receipt {receipt:016x} part {part:?}"),
                Err(e) => format!("error {e}"),
            }
        );
    }
    for (at, line) in &churn.log {
        let _ = writeln!(fingerprint, "runner {at}: {line}");
    }
    for (ballot, r) in &recheck_results {
        let _ = writeln!(
            fingerprint,
            "recheck {ballot}: {}",
            match r {
                Ok(receipt) => format!("receipt {receipt:016x}"),
                Err(e) => format!("error {e}"),
            }
        );
    }
    fingerprint.push_str(&report.canonical_text());

    election.shutdown();
    ScenarioOutcome {
        plan: plan.clone(),
        violations,
        fingerprint,
        report: Some(report),
    }
}
