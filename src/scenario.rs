//! Seeded fault-scenario fuzzing: derive a random schedule from a seed,
//! run a full virtual-time election under it, and check the paper's
//! invariants.
//!
//! * **Safety** (always): the published tally counts every receipted vote,
//!   counts nothing the driver did not attempt, and the audit verifies.
//! * **Liveness** (when the schedule stays within the fault model of
//!   §III-C — see [`Schedule::liveness_friendly`]): every honest voter
//!   obtains a valid receipt and the election publishes a result.
//!
//! Everything — election shape, Byzantine behaviours, fault schedule,
//! vote choices, network randomness — derives from one `u64` seed, and the
//! run executes on the virtual clock, so a failing seed reproduces
//! byte-identically from the CLI:
//!
//! ```text
//! cargo run --release --example scenario_fuzz -- --seed <N>
//! ```

use crate::builder::{Durability, ElectionBuilder, StoreKind};
use crate::report::ElectionReport;
use crate::schedule::{Schedule, ScheduleParams};
use ddemos::voter::VoteError;
use ddemos_net::NetworkProfile;
use ddemos_protocol::ElectionParams;
use ddemos_vc::VcBehavior;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Which fault classes a scenario sweep draws from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultMix {
    /// Every class ([`Schedule::random`]).
    #[default]
    Any,
    /// Only `crash-amnesia` power-cycles ([`Schedule::random_amnesia`]) —
    /// the CI sweep's `--faults amnesia` mode, hammering the durability
    /// and recovery paths.
    Amnesia,
}

/// Options for [`run_scenario_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ScenarioOptions {
    /// Fault classes to draw from.
    pub faults: FaultMix,
    /// Worker-thread override for the election's parallel runtime
    /// (`None` = the `DDEMOS_THREADS`/auto default). Artifacts must be
    /// identical for every value.
    pub threads: Option<usize>,
}

/// Registered electorate per scenario election.
const BALLOTS: u64 = 12;
/// Votes the driver casts.
const VOTES: usize = 6;
/// Virtual milliseconds between casts (lets scheduled faults interleave
/// with the voting phase).
const CAST_GAP_MS: u64 = 500;
/// `Tcomp` assumed when deriving voter patience from the network profile
/// (worst-case single protocol step, Theorem 1).
const T_COMP: Duration = Duration::from_millis(100);
/// `Δ` assumed for the patience derivation. Scheduled drift faults go up
/// to ±1.5 s, but they only move *when* a node closes its polls — the
/// per-message patience bound needs only the small skew honest exchanges
/// see.
const DRIFT_BOUND: Duration = Duration::from_millis(100);
/// `T_end` of the scenario elections (virtual ms).
const END_MS: u64 = 40_000;
/// When the receipt-uniqueness recheck re-submits receipted codes (after
/// `heal_by_ms` — every fault healed, every power-cycled node recovered —
/// and before `T_end`).
const RECHECK_AT_MS: u64 = 33_000;
/// The driver closes the election here (after every node's drifted clock
/// has passed `T_end`).
const CLOSE_AT_MS: u64 = 44_000;
/// Wall-clock bound on the close drain: a scenario that cannot reach
/// consensus fails fast instead of hanging the sweep.
const CLOSE_TIMEOUT: Duration = Duration::from_secs(20);

/// Everything derived from the seed before the election runs.
#[derive(Clone, Debug)]
pub struct ScenarioPlan {
    /// The driving seed.
    pub seed: u64,
    /// Baseline network profile (LAN or WAN).
    pub profile: NetworkProfile,
    /// Ballot store backing the collectors.
    pub store: StoreKind,
    /// Per-collector behaviours (at most `f_v` Byzantine).
    pub behaviors: Vec<VcBehavior>,
    /// The timed fault schedule.
    pub schedule: Schedule,
    /// `(ballot, option)` casts, in order.
    pub votes: Vec<(usize, usize)>,
    /// Whether the paper guarantees liveness under this plan.
    pub liveness_expected: bool,
    /// Whether the election runs with a durability layer (always, when
    /// the schedule power-cycles a node: an amnesia crash without a
    /// journal is outside the fault model the liveness theorem assumes).
    pub durability: bool,
}

impl ScenarioPlan {
    /// Derives the complete plan from a seed (all fault classes).
    pub fn from_seed(seed: u64) -> ScenarioPlan {
        Self::from_seed_with(seed, FaultMix::Any)
    }

    /// Derives the complete plan from a seed, drawing the schedule from
    /// the given fault mix.
    pub fn from_seed_with(seed: u64, faults: FaultMix) -> ScenarioPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5343_454E_4152_494F);
        let profile = if rng.gen_bool(0.5) {
            NetworkProfile::wan()
        } else {
            NetworkProfile::lan()
        };
        let store = if rng.gen_bool(0.25) {
            StoreKind::Latency(ddemos_vc::StorageModel::default())
        } else {
            StoreKind::Memory
        };
        // One designated fault target shares the f_v = 1 budget between
        // the Byzantine behaviour and the scheduled node faults: a
        // Byzantine collector that is *also* crashed or partitioned is one
        // fault, a Byzantine collector plus a different partitioned node
        // would be two — outside the model, and the fuzzer proved it
        // breaks liveness (receipt reconstruction needs N_v − f_v shares).
        let fault_node = rng.gen_range(0..4u32);
        let mut behaviors = vec![VcBehavior::Honest; 4];
        if rng.gen_bool(0.4) {
            let byz = [
                VcBehavior::CorruptShares,
                VcBehavior::WithholdShares,
                VcBehavior::EquivocalEndorser,
                VcBehavior::ConsensusInverter,
            ][rng.gen_range(0..4usize)];
            behaviors[fault_node as usize] = byz;
        }
        let schedule_params = ScheduleParams {
            num_vc: 4,
            vc_faults: 1,
            num_bb: 4,
            fault_from_ms: 1_000,
            fault_until_ms: 28_000,
            heal_by_ms: 32_000,
            base_profile: profile.clone(),
            target: Some(ddemos_protocol::NodeId::vc(fault_node)),
        };
        let schedule = match faults {
            FaultMix::Any => Schedule::random(seed, &schedule_params),
            FaultMix::Amnesia => Schedule::random_amnesia(seed, &schedule_params),
        };
        let votes = (0..VOTES).map(|i| (i, rng.gen_range(0..3usize))).collect();
        let liveness_expected = schedule.liveness_friendly;
        let durability = schedule.has_amnesia();
        ScenarioPlan {
            seed,
            profile,
            store,
            behaviors,
            schedule,
            votes,
            liveness_expected,
            durability,
        }
    }

    /// Human-readable plan summary (for failure artifacts).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("seed: {}\n", self.seed);
        let _ = writeln!(
            out,
            "profile: {}",
            if self.profile.vc_to_vc >= Duration::from_millis(10) {
                "wan"
            } else {
                "lan"
            }
        );
        let _ = writeln!(out, "store: {:?}", self.store);
        let _ = writeln!(out, "behaviors: {:?}", self.behaviors);
        let _ = writeln!(out, "votes: {:?}", self.votes);
        let _ = writeln!(out, "liveness_expected: {}", self.liveness_expected);
        let _ = writeln!(out, "durability: {}", self.durability);
        out.push_str(&self.schedule.describe());
        out
    }
}

/// The result of one scenario run.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The plan that ran.
    pub plan: ScenarioPlan,
    /// Invariant violations (empty = scenario passed).
    pub violations: Vec<String>,
    /// Canonical dump of every seed-determined artifact; two runs of the
    /// same seed must produce identical fingerprints.
    pub fingerprint: String,
    /// The full election report (when the run got far enough to produce
    /// one).
    pub report: Option<ElectionReport>,
}

impl ScenarioOutcome {
    /// Whether every checked invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the scenario for `seed` on the virtual clock and checks the
/// invariants (all fault classes). Never panics on invariant failure —
/// violations are returned so sweeps can collect artifacts.
pub fn run_scenario(seed: u64) -> ScenarioOutcome {
    run_scenario_with(seed, &ScenarioOptions::default())
}

/// [`run_scenario`] with explicit options (fault mix, thread count).
pub fn run_scenario_with(seed: u64, options: &ScenarioOptions) -> ScenarioOutcome {
    let plan = ScenarioPlan::from_seed_with(seed, options.faults);
    let mut violations = Vec::new();

    let params = ElectionParams::new(
        &format!("scenario-{seed}"),
        BALLOTS,
        3,
        4,
        4,
        3,
        2,
        0,
        END_MS,
    )
    .expect("scenario params are valid");
    let mut builder = ElectionBuilder::new(params)
        .seed(seed)
        .virtual_time()
        .network(plan.profile.clone())
        .store(plan.store)
        .vc_behaviors(plan.behaviors.clone())
        .schedule(plan.schedule.clone())
        .close_timeout(CLOSE_TIMEOUT);
    if plan.durability {
        builder = builder.durability(Durability::sim());
    }
    if let Some(threads) = options.threads {
        builder = builder.threads(threads);
    }
    let election = builder.build().expect("scenario builds");

    // --- voting phase, paced so scheduled faults interleave -------------
    // Voter patience is the theorem-backed `Twait` for this network
    // profile (Theorem 1), not a hard-coded guess — it scales with the
    // emulated latencies, including the fuzzer's jitter bursts.
    let patience =
        ddemos::liveness::LivenessParams::for_network(&plan.profile, T_COMP, DRIFT_BOUND).t_wait(4);
    let mut cast_results: Vec<Result<(u64, ddemos_protocol::PartId), VoteError>> = Vec::new();
    {
        let voting = election.voting().patience(patience);
        for &(ballot, option) in &plan.votes {
            election.sleep(Duration::from_millis(CAST_GAP_MS));
            let outcome = voting
                .cast(ballot, option)
                .map(|r| (r.audit.receipt, r.audit.used_part));
            cast_results.push(outcome);
        }
    }
    let receipted: Vec<(usize, usize)> = plan
        .votes
        .iter()
        .zip(&cast_results)
        .filter(|(_, r)| r.is_ok())
        .map(|(&v, _)| v)
        .collect();

    // --- receipt uniqueness across restarts ------------------------------
    // After every fault healed (and any power-cycled collector rebuilt
    // itself from its journal), re-submitting a receipted vote code must
    // yield the *same* receipt — the paper's "never issue two different
    // receipts for one ballot" obligation, which `CrashAmnesia` scenarios
    // can only satisfy through the durability layer.
    let to_recheck = RECHECK_AT_MS.saturating_sub(election.now_ms());
    election.sleep(Duration::from_millis(to_recheck));
    let mut recheck_results: Vec<(usize, Result<u64, VoteError>)> = Vec::new();
    {
        let voting = election.voting().patience(patience);
        for (&(ballot, option), cast) in plan.votes.iter().zip(&cast_results) {
            let Ok((receipt, part)) = cast else {
                continue;
            };
            let again = voting
                .cast_with_part(ballot, option, *part)
                .map(|r| r.audit.receipt);
            match &again {
                Ok(second) if second != receipt => violations.push(format!(
                    "safety: ballot {ballot} receipted {receipt:016x} before faults \
                     but {second:016x} after recovery (conflicting receipts)"
                )),
                Ok(_) => {}
                Err(e) => {
                    if plan.liveness_expected {
                        violations.push(format!(
                            "liveness: ballot {ballot} was receipted but its re-submission \
                             failed after recovery: {e}"
                        ));
                    }
                }
            }
            recheck_results.push((ballot, again));
        }
    }

    // --- close / tally / audit ------------------------------------------
    let to_close = CLOSE_AT_MS.saturating_sub(election.now_ms());
    election.sleep(Duration::from_millis(to_close));
    let closed = election.close();
    let mut result = None;
    match &closed {
        Ok(_) => {
            match election.tally() {
                Ok(r) => result = Some(r),
                Err(e) => violations.push(format!("tally failed: {e}")),
            }
            if let Err(e) = election.audit() {
                violations.push(format!("audit failed to run: {e}"));
            }
        }
        Err(e) => {
            if plan.liveness_expected {
                violations.push(format!("close failed under a within-model schedule: {e}"));
            }
        }
    }
    let report = election.report();

    // --- invariants ------------------------------------------------------
    // Safety: the tally counts every receipted vote and nothing beyond
    // what was attempted.
    if let Some(result) = &result {
        let mut receipted_counts = [0u64; 3];
        for &(_, option) in &receipted {
            receipted_counts[option] += 1;
        }
        let mut attempted_counts = [0u64; 3];
        for &(_, option) in &plan.votes {
            attempted_counts[option] += 1;
        }
        for option in 0..3 {
            if result.tally[option] < receipted_counts[option] {
                violations.push(format!(
                    "safety: option {option} tally {} < {} receipted votes",
                    result.tally[option], receipted_counts[option]
                ));
            }
            if result.tally[option] > attempted_counts[option] {
                violations.push(format!(
                    "safety: option {option} tally {} > {} attempted votes (fabricated)",
                    result.tally[option], attempted_counts[option]
                ));
            }
        }
        let total: u64 = result.tally.iter().sum();
        if total != result.ballots_counted {
            violations.push(format!(
                "safety: tally sums to {total} but {} ballots counted",
                result.ballots_counted
            ));
        }
        if !report.verified() {
            violations.push(format!(
                "safety: audit rejected the election: {:?}",
                report.audit.as_ref().map(|a| &a.failures)
            ));
        }
    }
    // Liveness: within the fault model, every voter gets a receipt and
    // the result is published.
    if plan.liveness_expected {
        for (&(ballot, _), outcome) in plan.votes.iter().zip(&cast_results) {
            if let Err(e) = outcome {
                violations.push(format!("liveness: ballot {ballot} got no receipt: {e}"));
            }
        }
        if result.is_none() {
            violations.push("liveness: no result published".into());
        }
    }

    // --- fingerprint ------------------------------------------------------
    use std::fmt::Write as _;
    let mut fingerprint = String::new();
    let _ = writeln!(fingerprint, "seed: {seed}");
    for (i, r) in cast_results.iter().enumerate() {
        let _ = writeln!(
            fingerprint,
            "cast {i}: {}",
            match r {
                Ok((receipt, part)) => format!("receipt {receipt:016x} part {part:?}"),
                Err(e) => format!("error {e}"),
            }
        );
    }
    for (ballot, r) in &recheck_results {
        let _ = writeln!(
            fingerprint,
            "recheck {ballot}: {}",
            match r {
                Ok(receipt) => format!("receipt {receipt:016x}"),
                Err(e) => format!("error {e}"),
            }
        );
    }
    fingerprint.push_str(&report.canonical_text());

    election.shutdown();
    ScenarioOutcome {
        plan,
        violations,
        fingerprint,
        report: Some(report),
    }
}
