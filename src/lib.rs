//! # ddemos-harness
//!
//! One typed builder API for the full D-DEMOS lifecycle.
//!
//! The paper's system is a pipeline — EA setup → vote collection →
//! vote-set consensus → BB publication → trustee tally → audit — and this
//! crate is its single entry point: [`ElectionBuilder`] stands up every
//! component in one `build()` call, and the returned [`Election`] exposes
//! typed phase handles that drive the pipeline deterministically:
//!
//! * [`Election::voting`] — cast individual votes (receipt-checked, audit
//!   data collected) or run bulk concurrent [`Workload`]s;
//! * [`Election::close`] — vote-set consensus to a quorum of
//!   [`FinalizedVoteSet`](ddemos_vc::FinalizedVoteSet)s and the VC→BB
//!   publication;
//! * [`Election::tally`] — trustee posts and result publication;
//! * [`Election::audit`] — public plus delegated verification;
//! * [`Election::report`] — one [`ElectionReport`] with tally, receipts,
//!   audit verdict, per-phase timings, network statistics, and a merged
//!   [`MetricsSnapshot`] (deterministic under virtual time; see the
//!   "Profiling and metrics" section of the README).
//!
//! ## Quickstart
//!
//! ```
//! use ddemos_harness::{ElectionBuilder, NetworkProfile};
//! use ddemos_protocol::ElectionParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 10 ballots, 3 options, polls open for 60s of simulation time.
//! let params = ElectionParams::new("quickstart", 10, 3, 4, 3, 5, 3, 0, 60_000)?;
//! let election = ElectionBuilder::new(params)
//!     .vc_nodes(4)            // tolerates 1 Byzantine collector
//!     .bb_nodes(3)            // tolerates 1 Byzantine board
//!     .trustees(5, 3)         // 3-of-5 tally opening
//!     .network(NetworkProfile::lan())
//!     .seed(2024)
//!     .build()?;
//!
//! let voting = election.voting();
//! for (ballot, option) in [(0, 1), (1, 2), (2, 1)] {
//!     let record = voting.cast(ballot, option)?; // receipt verified inside
//!     assert_eq!(record.attempts, 1);
//! }
//!
//! let report = election.finish()?; // close → tally → audit
//! assert_eq!(report.tally(), Some(&[0, 2, 1][..]));
//! assert!(report.verified());
//! election.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! Faults and attacks are builder options: `.adversary(NodeId::vc(0),
//! VcBehavior::Crashed)` makes a collector Byzantine,
//! `.corrupt_setup(|setup| modification_attack(setup, …))` mounts the
//! malicious-EA attacks of §IV-C ([`adversary`]), `.clock_drifts([...])`
//! exercises the Δ drift bound, and [`StoreKind`] swaps the ballot store
//! (memory / modelled-latency disk / PRF-derived virtual electorate — see
//! `DESIGN.md`).

#![warn(missing_docs)]

pub mod adversary;
pub mod builder;
pub mod campaign;
pub mod dsl;
pub mod election;
pub mod load;
pub mod report;
pub mod scenario;
pub mod schedule;
pub mod tcp;
pub mod workload;

pub use builder::{BuildError, Durability, ElectionBuilder, Network, StoreKind};
pub use campaign::{
    campaign_from_seed, guided_coverage_search, net_fault_class, plan_coverage, run_campaign,
    CampaignOutcome, CampaignPlan, Corpus, CorpusEntry, DiskPool,
};
pub use dsl::{DiskEvent, ScenarioBuilder, ScenarioEvent, ScenarioPhase, ScenarioScript, Tick};
pub use election::{Election, ElectionError, PhaseTimings, VotingPhase};
pub use load::{run_load_shard, shutdown_cluster, LatencyHistogram, ShardConfig, ShardReport};
pub use report::{ElectionReport, NetReport};
pub use scenario::{
    run_plan, run_scenario, run_scenario_with, FaultMix, ScenarioOptions, ScenarioOutcome,
    ScenarioPlan,
};
pub use schedule::{Schedule, ScheduleParams};
pub use workload::{Workload, WorkloadStats};

// Re-export what nearly every harness user needs, so examples and tests
// can depend on this crate alone.
pub use ddemos::auditor::{verify_vote_included, AuditReport, Auditor};
pub use ddemos::liveness::LivenessParams;
pub use ddemos::voter::{VoteError, VoteRecord, Voter};
pub use ddemos_ea::{ElectionAuthority, SetupOutput, SetupProfile};
pub use ddemos_net::{
    DynEndpoint, NetFault, NetworkProfile, TcpConfig, TcpTransport, Transport, TransportEndpoint,
};
pub use ddemos_obs::{Histogram, MetricsSnapshot, Recorder, TimeDomain};
pub use ddemos_protocol::{ElectionParams, NodeId, PartId, SerialNo};
pub use ddemos_storage::{DiskProfile, FileDisk, SimDisk};
pub use ddemos_vc::{
    AdversaryView, StepTrace, StorageModel, Trigger, TriggeredAdversary, VcBehavior,
};
pub use tcp::{run_bb_replica, run_vc_replica, TcpCluster, COORDINATOR};
