//! Fault campaigns: sequential elections over carried-over durable
//! state, and the coverage-guided corpus the fuzzer selects seeds from
//! (DESIGN.md §9).
//!
//! A [`CampaignPlan`] strings ≥ 3 seeded [`ScenarioPlan`]s together.
//! Each election runs on its own virtual clock, but journals on disks
//! drawn from one shared [`DiskPool`] — so the *device* state carries
//! over: wear counters accumulate, and a disk that filled up mid-election
//! is still full when the next election's replica attaches to it. That is
//! the campaign's signature failure shape: faults that outlive the run
//! that caused them.
//!
//! The coverage layer fingerprints every plan by the set of
//! `(fault-class × protocol-phase)` pairs its events land in
//! ([`plan_coverage`]). A [`Corpus`] keeps the seeds that contributed new
//! pairs, and [`guided_coverage_search`] mutates those seeds — shifting
//! their fault times into later protocol phases — preferring mutants that
//! reach interleavings the corpus has not seen. The uniform generators
//! clamp fault times to the voting window (heals by `heal_by_ms`), so
//! e.g. a heal landing *after* `T_end` — mid vote-set consensus — is an
//! interleaving uniform seeding structurally never produces; the guided
//! mutation finds it in a handful of rounds.

use crate::dsl::ScenarioPhase;
use crate::scenario::{run_plan, FaultMix, ScenarioOptions, ScenarioOutcome, ScenarioPlan};
use ddemos_net::NetFault;
use ddemos_protocol::clock::GlobalClock;
use ddemos_storage::{DiskProfile, DynDisk, SimDisk};
use ddemos_vc::VcBehavior;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The fault-class axis of a coverage pair for a network fault.
pub fn net_fault_class(fault: &NetFault) -> &'static str {
    match fault {
        NetFault::Crash(_) => "crash",
        NetFault::Recover(_) => "recover",
        NetFault::CrashAmnesia(_) => "amnesia",
        NetFault::Partition(..) => "partition",
        NetFault::GrayPartition { loss_pct, .. } if *loss_pct >= 100 => "gray-cut",
        NetFault::GrayPartition { .. } => "gray-lossy",
        NetFault::HealPartitions | NetFault::HealPartition(..) => "heal",
        NetFault::SetProfile(_) => "profile",
        NetFault::SetDrift(..) => "drift",
    }
}

// ---------------------------------------------------------------------------
// DiskPool
// ---------------------------------------------------------------------------

/// A pool of named [`SimDisk`]s shared by the sequential elections of a
/// campaign. The election builder draws journal disks from the pool by
/// label (`"vc-0"`, `"bb-2"`, …); the same label always returns the
/// *same* device, with only its latency clock re-pointed at the new
/// election. Scenario runners also resolve [`crate::dsl::DiskEvent`]
/// targets here.
#[derive(Default)]
pub struct DiskPool {
    disks: Mutex<BTreeMap<String, Arc<SimDisk>>>,
}

impl DiskPool {
    /// An empty pool.
    pub fn new() -> Arc<DiskPool> {
        Arc::new(DiskPool::default())
    }

    /// The disk for `label`, created with `profile` on first use. On
    /// reuse the latency clock is re-pointed at `clock` (each election
    /// owns a fresh virtual clock); everything else — durable bytes,
    /// wear counters, fault state — carries over untouched.
    pub fn disk(&self, label: &str, clock: GlobalClock, profile: DiskProfile) -> DynDisk {
        let disk = self
            .disks
            .lock()
            .entry(label.to_string())
            .or_insert_with(|| Arc::new(SimDisk::new(clock.clone(), profile)))
            .clone();
        disk.set_clock(clock);
        disk
    }

    /// The disk already registered under `label`, if any.
    pub fn get(&self, label: &str) -> Option<Arc<SimDisk>> {
        self.disks.lock().get(label).cloned()
    }

    /// Marks an election boundary: every disk's logical contents (log,
    /// snapshot) are cleared so the next election's replicas attach to
    /// empty journals, while wear counters and fault state persist — a
    /// device that filled up last election is *still full*.
    pub fn next_election(&self) {
        for disk in self.disks.lock().values() {
            disk.reset_contents();
        }
    }

    /// One line per disk for campaign fingerprints: label, total bytes
    /// appended, sync count, and whether the device is currently full.
    pub fn wear_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (label, disk) in self.disks.lock().iter() {
            let _ = writeln!(
                out,
                "disk {label}: appended {} syncs {} full {}",
                disk.appended(),
                disk.syncs(),
                disk.is_full()
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Coverage fingerprints and the corpus
// ---------------------------------------------------------------------------

/// A coverage pair: `(fault-class, protocol-phase-bucket)`.
pub type CoveragePair = (String, String);

/// The coverage fingerprint of a plan: every `(fault-class × phase)`
/// pair its schedule and script events land in, plus `armed` entries for
/// the static and state-triggered Byzantine layers. Derived entirely
/// from the plan — two runs of the same seed fingerprint identically.
pub fn plan_coverage(plan: &ScenarioPlan) -> BTreeSet<CoveragePair> {
    let mut pairs = plan.extras.coverage();
    for (at, fault) in &plan.schedule.events {
        pairs.insert((
            net_fault_class(fault).to_string(),
            ScenarioPhase::bucket(*at).to_string(),
        ));
    }
    for behavior in &plan.behaviors {
        if *behavior != VcBehavior::Honest {
            pairs.insert((format!("byz-{behavior:?}"), "armed".to_string()));
        }
    }
    pairs
}

/// One corpus entry: a (seed, mix, mutation) triple that reproduces a
/// plan, plus the coverage pairs that plan reaches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The generating seed.
    pub seed: u64,
    /// The fault mix the seed was drawn under.
    pub mix: FaultMix,
    /// Time shift (ms) applied to every event — `0` for uniform seeds,
    /// non-zero for guided mutants. [`CorpusEntry::plan`] reapplies it.
    pub shift_ms: u64,
    /// The coverage pairs the plan reaches.
    pub coverage: BTreeSet<CoveragePair>,
}

impl CorpusEntry {
    /// Derives the entry for a plain (unmutated) seed.
    pub fn from_seed(seed: u64, mix: FaultMix) -> CorpusEntry {
        let plan = ScenarioPlan::from_seed_with(seed, mix);
        CorpusEntry {
            seed,
            mix,
            shift_ms: 0,
            coverage: plan_coverage(&plan),
        }
    }

    /// Reconstructs the plan this entry fingerprints (mutation included).
    pub fn plan(&self) -> ScenarioPlan {
        let plan = ScenarioPlan::from_seed_with(self.seed, self.mix);
        if self.shift_ms == 0 {
            plan
        } else {
            mutate_plan(&plan, self.shift_ms)
        }
    }
}

/// Time-shifts every scheduled event of a plan by `shift_ms` — the
/// guided fuzzer's mutation operator. Shifting moves fault/heal pairs
/// into later protocol phases (heal during vote-set consensus, crash
/// after `T_end`) that the clamped uniform generators never emit. A
/// shifted plan may leave faults unhealed inside the voting window, so
/// the liveness expectation is dropped; the safety oracle still applies
/// in full.
pub fn mutate_plan(plan: &ScenarioPlan, shift_ms: u64) -> ScenarioPlan {
    let mut plan = plan.clone();
    for (at, _) in &mut plan.schedule.events {
        *at += shift_ms;
    }
    for (at, _) in &mut plan.extras.events {
        *at += shift_ms;
    }
    plan.liveness_expected = false;
    plan
}

/// The seed corpus: entries that each contributed at least one new
/// coverage pair when added. Persisted as plain text between CI runs
/// (`--corpus` in `examples/scenario_fuzz.rs`).
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    /// Entries in insertion order (later entries built on earlier
    /// coverage).
    pub entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// Every pair any entry reaches.
    pub fn covered(&self) -> BTreeSet<CoveragePair> {
        self.entries
            .iter()
            .flat_map(|e| e.coverage.iter().cloned())
            .collect()
    }

    /// Adds the entry if it reaches at least one pair the corpus has not
    /// seen; returns the newly covered pairs (empty = not added).
    pub fn add_if_new(&mut self, entry: CorpusEntry) -> BTreeSet<CoveragePair> {
        let covered = self.covered();
        let fresh: BTreeSet<CoveragePair> = entry.coverage.difference(&covered).cloned().collect();
        if !fresh.is_empty() {
            self.entries.push(entry);
        }
        fresh
    }

    /// Seeds the corpus from `count` uniform seeds starting at
    /// `first_seed` (the baseline the guided search improves on).
    pub fn seed_uniform(&mut self, first_seed: u64, count: u64, mix: FaultMix) {
        for seed in first_seed..first_seed + count {
            self.add_if_new(CorpusEntry::from_seed(seed, mix));
        }
    }

    /// Serializes to the line format the CI artifact stores:
    /// `seed=<n> mix=<name> shift=<ms> pairs=<class@phase;...>`.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let pairs: Vec<String> = e.coverage.iter().map(|(c, p)| format!("{c}@{p}")).collect();
            let _ = writeln!(
                out,
                "seed={} mix={} shift={} pairs={}",
                e.seed,
                e.mix.name(),
                e.shift_ms,
                pairs.join(";")
            );
        }
        out
    }

    /// Parses the [`Corpus::to_text`] format (blank lines and `#`
    /// comments skipped).
    ///
    /// # Errors
    /// A human-readable description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Corpus, String> {
        let mut corpus = Corpus::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut entry = CorpusEntry {
                seed: 0,
                mix: FaultMix::Any,
                shift_ms: 0,
                coverage: BTreeSet::new(),
            };
            for field in line.split_whitespace() {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: field '{field}' has no '='", lineno + 1))?;
                match key {
                    "seed" => {
                        entry.seed = value
                            .parse()
                            .map_err(|e| format!("line {}: bad seed: {e}", lineno + 1))?;
                    }
                    "mix" => {
                        entry.mix = FaultMix::parse(value)
                            .ok_or_else(|| format!("line {}: unknown mix '{value}'", lineno + 1))?;
                    }
                    "shift" => {
                        entry.shift_ms = value
                            .parse()
                            .map_err(|e| format!("line {}: bad shift: {e}", lineno + 1))?;
                    }
                    "pairs" => {
                        for pair in value.split(';').filter(|p| !p.is_empty()) {
                            let (class, phase) = pair.split_once('@').ok_or_else(|| {
                                format!("line {}: pair '{pair}' has no '@'", lineno + 1)
                            })?;
                            entry
                                .coverage
                                .insert((class.to_string(), phase.to_string()));
                        }
                    }
                    other => return Err(format!("line {}: unknown key '{other}'", lineno + 1)),
                }
            }
            corpus.entries.push(entry);
        }
        Ok(corpus)
    }
}

/// Mutation shifts the guided search tries, in order. Each pushes a
/// plan's clamped fault window (`fault_until_ms = 28_000`, heals by
/// `32_000`) toward and past `T_end = 40_000`.
const MUTATION_SHIFTS_MS: [u64; 3] = [8_000, 12_000, 16_000];

/// Coverage-guided seed selection, at the plan level: mutate corpus
/// seeds by time-shifting their events, keeping mutants that reach
/// `(fault-class × phase)` pairs the corpus misses. Returns the pairs
/// discovered (and appends the contributing mutants to the corpus). At
/// most `max_mutants` mutants are tried; the search is deterministic —
/// same corpus in, same discoveries out.
pub fn guided_coverage_search(corpus: &mut Corpus, max_mutants: usize) -> BTreeSet<CoveragePair> {
    let mut discovered = BTreeSet::new();
    // Snapshot the starting entries: mutants-of-mutants are possible in
    // later calls (the appended entries are candidates next time), but
    // one call does a single pass so it terminates predictably.
    let candidates: Vec<(u64, FaultMix, u64)> = corpus
        .entries
        .iter()
        .map(|e| (e.seed, e.mix, e.shift_ms))
        .collect();
    let mut tried = 0usize;
    for (seed, mix, base_shift) in candidates {
        for shift in MUTATION_SHIFTS_MS {
            if tried >= max_mutants {
                return discovered;
            }
            tried += 1;
            let total_shift = base_shift + shift;
            let plan = mutate_plan(&ScenarioPlan::from_seed_with(seed, mix), total_shift);
            let entry = CorpusEntry {
                seed,
                mix,
                shift_ms: total_shift,
                coverage: plan_coverage(&plan),
            };
            discovered.extend(corpus.add_if_new(entry));
        }
    }
    discovered
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

/// A campaign: ≥ 3 sequential seeded elections sharing one [`DiskPool`].
#[derive(Clone, Debug)]
pub struct CampaignPlan {
    /// The driving seed.
    pub seed: u64,
    /// Per-election plans, run in order.
    pub elections: Vec<ScenarioPlan>,
}

/// Derives a campaign from a seed: `elections` (at least 3) sequential
/// plans rotating through the gray-partition, disk-fault, and adaptive
/// adversary mixes, each with its own derived seed. Every election runs
/// with durability on the shared pool, so a disk fault in election *k*
/// is still present when election *k+1* attaches to the same device.
pub fn campaign_from_seed(seed: u64, elections: usize) -> CampaignPlan {
    let mixes = [FaultMix::Gray, FaultMix::Disk, FaultMix::Adaptive];
    let elections = (0..elections.max(3))
        .map(|i| {
            let election_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64);
            ScenarioPlan::from_seed_with(election_seed, mixes[i % mixes.len()])
        })
        .collect();
    CampaignPlan { seed, elections }
}

/// The result of one campaign run.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// The plan that ran.
    pub plan: CampaignPlan,
    /// Per-election outcomes, in order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Invariant violations across all elections, prefixed with the
    /// election index.
    pub violations: Vec<String>,
    /// Concatenated per-election fingerprints plus the final disk wear
    /// summary; two runs of the same campaign seed must match exactly.
    pub fingerprint: String,
}

impl CampaignOutcome {
    /// Whether every election's checked invariants held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs a campaign: each election in order on a fresh virtual clock,
/// journaling on the shared [`DiskPool`] (logical contents reset at
/// each boundary, device fault state carried over).
pub fn run_campaign(plan: &CampaignPlan, options: &ScenarioOptions) -> CampaignOutcome {
    let pool = DiskPool::new();
    let mut outcomes = Vec::with_capacity(plan.elections.len());
    let mut violations = Vec::new();
    let mut fingerprint = format!("campaign seed: {}\n", plan.seed);
    for (i, election_plan) in plan.elections.iter().enumerate() {
        if i > 0 {
            pool.next_election();
        }
        let outcome = run_plan(election_plan, options, Some(pool.clone()));
        use std::fmt::Write as _;
        let _ = writeln!(
            fingerprint,
            "--- election {i} (seed {}, {}) ---",
            election_plan.seed, election_plan.schedule.label
        );
        fingerprint.push_str(&outcome.fingerprint);
        violations.extend(
            outcome
                .violations
                .iter()
                .map(|v| format!("election {i}: {v}")),
        );
        outcomes.push(outcome);
    }
    fingerprint.push_str(&pool.wear_summary());
    CampaignOutcome {
        plan: plan.clone(),
        outcomes,
        violations,
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddemos_storage::Disk as _;

    #[test]
    fn disk_pool_reuses_devices_and_carries_fault_state() {
        let pool = DiskPool::new();
        let clock = GlobalClock::new();
        let a = pool.disk("vc-0", clock.clone(), DiskProfile::instant());
        a.append(b"journal").unwrap();
        a.sync().unwrap();
        pool.get("vc-0").unwrap().set_full(true);
        pool.next_election();
        // Same label → same device: contents reset, fault state kept.
        let b = pool.disk("vc-0", clock, DiskProfile::instant());
        assert_eq!(b.len(), 0, "election boundary clears the journal");
        assert!(
            b.append(b"x").unwrap_err().is_disk_full(),
            "a full device stays full across elections"
        );
        assert_eq!(pool.get("vc-0").unwrap().appended(), 7, "wear carries");
    }

    #[test]
    fn corpus_text_roundtrip() {
        let mut corpus = Corpus::default();
        corpus.seed_uniform(0, 8, FaultMix::Any);
        assert!(!corpus.entries.is_empty());
        let text = corpus.to_text();
        let parsed = Corpus::from_text(&text).unwrap();
        assert_eq!(parsed.entries, corpus.entries);
        assert_eq!(parsed.covered(), corpus.covered());
    }

    #[test]
    fn campaign_plans_rotate_mixes_and_are_deterministic() {
        let a = campaign_from_seed(7, 3);
        let b = campaign_from_seed(7, 3);
        assert_eq!(a.elections.len(), 3);
        for (x, y) in a.elections.iter().zip(&b.elections) {
            assert_eq!(x.describe(), y.describe());
        }
        // The rotation covers all three campaign mixes.
        let labels: Vec<&str> = a
            .elections
            .iter()
            .map(|e| e.schedule.label.as_str())
            .collect();
        assert!(labels.contains(&"gray-partition"), "labels: {labels:?}");
    }
}
