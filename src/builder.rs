//! The typed entry point of the facade: [`ElectionBuilder`] and the
//! [`StoreKind`] ballot-store selector.

use crate::election::{Election, NetBackend, RunState};
use crate::schedule::Schedule;
use crate::tcp::{TcpBackend, TcpCluster};
use ddemos_bb::{BbApi, BbNode, MajorityReader};
use ddemos_ea::{ElectionAuthority, SetupOutput, SetupProfile};
use ddemos_net::{NetworkProfile, SimNet};
use ddemos_obs::{Recorder, TimeDomain, TimeSource};
use ddemos_protocol::ballot::Ballot;
use ddemos_protocol::clock::{GlobalClock, VirtualClock, NS_PER_MS};
use ddemos_protocol::exec::Pool;
use ddemos_protocol::params::ParamError;
use ddemos_protocol::{NodeId, NodeKind, SerialNo};
use ddemos_storage::{
    DiskProfile, DynDisk, DynJournal, FileDisk, Journal, JournalConfig, SimDisk, StorageError,
};
use ddemos_trustee::Trustee;
use ddemos_vc::{
    FnStore, LatencyStore, MemoryStore, StepTrace, StorageModel, TriggeredAdversary, VcBehavior,
    VcHandle, VcNode, VcNodeConfig, WalStore,
};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, AtomicU64};
use std::sync::Arc;
use std::time::Duration;

/// Idle poll granularity of VC node event loops under a virtual clock.
/// Each idle wake is a discrete event, so the granularity trades virtual
/// end-of-poll detection precision against event count — 50 virtual ms
/// keeps a 10-minute emulated election at a few thousand idle events.
const VIRTUAL_POLL: Duration = Duration::from_millis(50);
/// Virtual-time advancement margin past `end_ms` before the clock stalls
/// (the runaway backstop for scenarios that can never finish).
const VIRTUAL_LIMIT_MARGIN_MS: u64 = 600_000;

/// Which ballot store backs each VC node (§V's cache / disk / virtual
/// deployments; see `DESIGN.md` for the full hierarchy).
#[derive(Clone, Copy, Debug, Default)]
pub enum StoreKind {
    /// Fully materialized rows served from memory (the Fig 4 cache setup).
    #[default]
    Memory,
    /// Materialized rows behind the calibrated index-depth latency model
    /// (the Fig 5a disk experiment).
    Latency(StorageModel),
    /// Rows PRF-derived on demand — a virtual electorate with nothing
    /// materialized per VC node (the 250M-ballot configuration). The
    /// builder retains the Election Authority's derivation state behind
    /// the store, standing in for each node's pre-populated database.
    /// Printed voter ballots are materialized only for the cast range
    /// named via [`ElectionBuilder::materialize_first`] (none by default).
    Virtual,
    /// [`StoreKind::Virtual`] behind the latency model.
    VirtualLatency(StorageModel),
    /// Materialized rows spilled to a per-node WAL file
    /// ([`ddemos_vc::WalStore`]) on a [`SimDisk`] whose read latency is
    /// charged on the election clock — the disk-format store a real
    /// deployment would mmap instead of the `HashMap` cache.
    Disk(DiskProfile),
}

impl StoreKind {
    fn is_virtual(self) -> bool {
        matches!(self, StoreKind::Virtual | StoreKind::VirtualLatency(_))
    }
}

/// Which durability layer backs the stateful replicas (VC ballot slots,
/// BB accepted writes). The default is [`Durability::None`] — pure
/// in-memory nodes, the pre-durability behaviour, where a
/// `CrashAmnesia` fault genuinely loses state.
#[derive(Clone, Debug, Default)]
pub enum Durability {
    /// No journals: node state is volatile.
    #[default]
    None,
    /// Deterministic in-memory disks ([`SimDisk`]) whose write/fsync/read
    /// latencies are charged on the election's global clock — virtual
    /// elections pay them in virtual time. The right choice for the
    /// fuzzer and for benchmarks.
    Sim(DiskProfile),
    /// Real files ([`FileDisk`]) under the given directory, one
    /// subdirectory per node (`vc-0/`, `bb-1/`, …). State survives the
    /// process.
    File(std::path::PathBuf),
}

impl Durability {
    /// Shorthand for [`Durability::Sim`] with the default NVMe-ish
    /// profile.
    pub fn sim() -> Durability {
        Durability::Sim(DiskProfile::default())
    }

    fn enabled(&self) -> bool {
        !matches!(self, Durability::None)
    }
}

/// Which transport carries the election's messages.
///
/// [`ElectionBuilder::network`] accepts either variant — or a bare
/// [`NetworkProfile`], which converts into [`Network::Sim`], so every
/// pre-existing `.network(NetworkProfile::lan())` call reads unchanged.
#[derive(Clone, Debug)]
pub enum Network {
    /// The in-process simulated network with the given latency/loss
    /// profile (fault injection, virtual time, deterministic replay).
    Sim(NetworkProfile),
    /// A real multi-process deployment over localhost/LAN TCP sockets:
    /// the builder produces only the *coordinator*; each VC/BB replica
    /// runs [`crate::tcp::run_vc_replica`] /
    /// [`crate::tcp::run_bb_replica`] in its own process (see
    /// `examples/tcp_cluster.rs`).
    Tcp(TcpCluster),
}

impl From<NetworkProfile> for Network {
    fn from(profile: NetworkProfile) -> Network {
        Network::Sim(profile)
    }
}

/// A setup corruption hook registered with
/// [`ElectionBuilder::corrupt_setup`].
type SetupCorruption = Box<dyn FnOnce(&mut SetupOutput)>;

/// [`TimeSource`] adapter over the election's [`GlobalClock`], so
/// recorders charge time on whatever clock the election runs on —
/// virtual elections profile in deterministic virtual nanoseconds.
struct ClockSource(GlobalClock);

impl TimeSource for ClockSource {
    fn now_ns(&self) -> u64 {
        self.0.now_ns()
    }
}

/// Errors constructing an [`Election`] from a builder.
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// The (possibly builder-adjusted) election parameters are invalid.
    Params(ParamError),
    /// [`ElectionBuilder::adversary`] or [`ElectionBuilder::clock_drift`]
    /// named a node that is not a VC node of this election.
    BadNode(NodeId),
    /// The durability layer failed to initialize (journal creation or
    /// recovery — [`Durability::File`] paths, a corrupt pre-existing
    /// journal).
    Storage(String),
    /// Partial materialization ([`ElectionBuilder::materialize_first`] or a
    /// virtual store) requires [`SetupProfile::VcOnly`]: bulletin-board and
    /// trustee payloads cannot be partially dealt.
    PartialSetupRequiresVcOnly,
    /// The named builder option only applies to the simulated network;
    /// [`Network::Tcp`] replicas run in their own processes, outside the
    /// builder's reach.
    TcpUnsupported(&'static str),
    /// Binding or connecting the coordinator's TCP transport failed.
    Net(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Params(e) => write!(f, "invalid election parameters: {e}"),
            BuildError::BadNode(id) => write!(f, "{id} is not a VC node of this election"),
            BuildError::Storage(e) => write!(f, "durability layer failed: {e}"),
            BuildError::PartialSetupRequiresVcOnly => {
                write!(f, "partial materialization requires SetupProfile::VcOnly")
            }
            BuildError::TcpUnsupported(what) => {
                write!(f, "{what} is not available over Network::Tcp")
            }
            BuildError::Net(e) => write!(f, "tcp transport failed: {e}"),
        }
    }
}
impl std::error::Error for BuildError {}

impl From<ParamError> for BuildError {
    fn from(e: ParamError) -> BuildError {
        BuildError::Params(e)
    }
}

/// Typed builder for a complete D-DEMOS election deployment.
///
/// One `build()` call runs EA setup, stands up the simulated network, the
/// global clock, every VC node thread, the BB replicas, and the
/// trustees-in-waiting, and returns the [`Election`] facade whose phase
/// handles drive voting, close, tally, and audit. See the crate docs for a
/// copy-pasteable example.
pub struct ElectionBuilder {
    params: ddemos_protocol::ElectionParams,
    seed: u64,
    profile: SetupProfile,
    network: Network,
    store: StoreKind,
    traces: Vec<StepTrace>,
    behaviors: Vec<VcBehavior>,
    adversaries: Vec<(NodeId, VcBehavior)>,
    triggered: Vec<(NodeId, TriggeredAdversary)>,
    bb_divergent: Vec<u32>,
    disk_pool: Option<Arc<crate::campaign::DiskPool>>,
    drifts_ms: Vec<i64>,
    node_drifts: Vec<(NodeId, i64)>,
    materialize_first: Option<u64>,
    corruptions: Vec<SetupCorruption>,
    threads: Option<usize>,
    virtual_time: bool,
    schedule: Schedule,
    close_timeout: Option<Duration>,
    durability: Durability,
    journal_config: JournalConfig,
    metrics: bool,
    profiling: bool,
}

impl ElectionBuilder {
    /// Starts a builder from validated parameters. Every threshold can
    /// still be adjusted before `build()`.
    pub fn new(params: ddemos_protocol::ElectionParams) -> ElectionBuilder {
        ElectionBuilder {
            params,
            seed: 0,
            profile: SetupProfile::Full,
            network: Network::Sim(NetworkProfile::lan()),
            store: StoreKind::Memory,
            traces: Vec::new(),
            behaviors: Vec::new(),
            adversaries: Vec::new(),
            triggered: Vec::new(),
            bb_divergent: Vec::new(),
            disk_pool: None,
            drifts_ms: Vec::new(),
            node_drifts: Vec::new(),
            materialize_first: None,
            corruptions: Vec::new(),
            threads: None,
            virtual_time: false,
            schedule: Schedule::default(),
            close_timeout: None,
            durability: Durability::None,
            journal_config: JournalConfig::default(),
            metrics: true,
            profiling: false,
        }
    }

    /// Enables or disables metrics collection (default: enabled). Every
    /// node gets a [`Recorder`] charging time on the election's clock:
    /// virtual-time elections produce a deterministic, seed-replayable
    /// [`ddemos_obs::MetricsSnapshot`] that joins the report's canonical
    /// text; wall-clock elections tag the snapshot
    /// [`TimeDomain::Wall`] and it stays out of the fingerprint.
    #[must_use]
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Wall-clock profiling mode: node recorders read real monotonic
    /// time (regardless of [`ElectionBuilder::virtual_time`]) and the
    /// process-global crypto hook is installed, so Schnorr verification
    /// and MSM scopes are timed too. The resulting snapshot is
    /// [`TimeDomain::Wall`]-tagged — useful for finding hot code, never
    /// for determinism checks. Render it with
    /// [`ddemos_obs::MetricsSnapshot::profile_table`] (see
    /// `examples/profile.rs`).
    #[must_use]
    pub fn profiling(mut self, enabled: bool) -> Self {
        self.profiling = enabled;
        self
    }

    /// Backs every VC node's ballot slots and every BB node's accepted
    /// writes with a durable journal (group-committed WAL + snapshots,
    /// `ddemos-storage`), making [`NetFault::CrashAmnesia`]
    /// (`ddemos_net::NetFault`) recoverable: a power-cycled node rebuilds
    /// its durable obligations — used codes, UCERTs, issued receipts —
    /// from snapshot + WAL replay instead of forgetting them.
    #[must_use]
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Tunes the journals: `group_commit` frames per fsync (the batch a
    /// group commit amortizes) and the snapshot cadence in records
    /// (`None` disables compaction).
    #[must_use]
    pub fn durability_tuning(mut self, group_commit: usize, compact_every: Option<u64>) -> Self {
        let adaptive_commit = self.journal_config.adaptive_commit;
        self.journal_config = JournalConfig {
            group_commit,
            compact_every,
            adaptive_commit,
        };
        self
    }

    /// Adaptive group-commit windows: VC drivers defer the fsync of a
    /// commit barrier when nothing externally visible (no send, no
    /// delivery) follows it in the same step — the deferred frames ride
    /// the group-commit window and become durable with the next
    /// visible-guarded commit. "Durable before visible" holds exactly as
    /// before; only fsyncs that guarded nothing are elided (in the vote
    /// phase, mostly the non-responder receipt-reconstruction steps).
    /// Off by default.
    #[must_use]
    pub fn adaptive_commit(mut self, enabled: bool) -> Self {
        self.journal_config.adaptive_commit = enabled;
        self
    }

    /// Runs the election on a deterministic discrete-event clock instead
    /// of wall time: emulated network latency, store latency, and the
    /// voting window cost (almost) no wall clock, and — driven from the
    /// building thread — every delivery order and the reported virtual
    /// phase timings are a pure function of the builder seed.
    ///
    /// The building thread is registered as the driver actor; drive the
    /// returned [`Election`] from that thread.
    #[must_use]
    pub fn virtual_time(mut self) -> Self {
        self.virtual_time = true;
        self
    }

    /// Installs a timed fault [`Schedule`] (crash/recover, partition/heal,
    /// loss/duplication/reorder bursts, clock drift) applied at simulation
    /// timestamps — virtual ones under [`ElectionBuilder::virtual_time`].
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides how long [`Election::close`] waits (in wall time) for the
    /// VC quorum's finalized vote sets (default 120 s; fuzz harnesses use
    /// a short value so stalled scenarios fail fast).
    #[must_use]
    pub fn close_timeout(mut self, timeout: Duration) -> Self {
        self.close_timeout = Some(timeout);
        self
    }

    /// Sets the worker count of the parallel runtime driving EA ballot
    /// derivation, trustee share processing, and the audit sweep.
    ///
    /// Default: the `DDEMOS_THREADS` environment variable if set, else the
    /// machine's available parallelism. Election artifacts are
    /// byte-identical for every thread count (per-ballot derivation is
    /// independently seeded and the executor preserves input order).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Sets the number of vote collector nodes (`Nv`).
    #[must_use]
    pub fn vc_nodes(mut self, n: usize) -> Self {
        self.params.num_vc = n;
        self
    }

    /// Sets the number of bulletin board replicas (`Nb`).
    #[must_use]
    pub fn bb_nodes(mut self, n: usize) -> Self {
        self.params.num_bb = n;
        self
    }

    /// Sets the number of trustees (`Nt`) and the reconstruction
    /// threshold (`h_t`).
    #[must_use]
    pub fn trustees(mut self, count: usize, threshold: usize) -> Self {
        self.params.num_trustees = count;
        self.params.trustee_threshold = threshold;
        self
    }

    /// Sets the number of options `m` (labels are regenerated).
    #[must_use]
    pub fn options(mut self, m: usize) -> Self {
        self.params.num_options = m;
        self.params.option_labels = (0..m).map(|i| format!("option-{i}")).collect();
        self
    }

    /// Sets the registered electorate size `n`.
    #[must_use]
    pub fn ballots(mut self, n: u64) -> Self {
        self.params.num_ballots = n;
        self
    }

    /// Sets the EA master seed (every key, code, and commitment derives
    /// from it deterministically).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the transport: a simulated-network latency/loss profile
    /// ([`NetworkProfile`] converts implicitly), or [`Network::Tcp`] for
    /// a real multi-process deployment over sockets.
    #[must_use]
    pub fn network(mut self, network: impl Into<Network>) -> Self {
        self.network = network.into();
        self
    }

    /// Attaches step-trace recorders to VC nodes positionally (node 0,
    /// 1, …): every `(input, now_ms, outputs)` triple of node `i`'s
    /// sans-I/O core is recorded into `traces[i]`, byte-encoded — the
    /// instrument `tests/determinism.rs` uses to prove core behavior is
    /// driver-independent. Shorter vectors leave the remaining nodes
    /// untraced.
    #[must_use]
    pub fn vc_traces(mut self, traces: impl IntoIterator<Item = StepTrace>) -> Self {
        self.traces = traces.into_iter().collect();
        self
    }

    /// Selects the ballot store backing each VC node.
    #[must_use]
    pub fn store(mut self, kind: StoreKind) -> Self {
        self.store = kind;
        self
    }

    /// Materializes only what the vote-collection phase needs — skips the
    /// BB cryptographic payloads and trustee shares (the Fig 4/5a/5b
    /// benchmark setup; the close/tally/audit phases are unavailable).
    #[must_use]
    pub fn vc_only(mut self) -> Self {
        self.profile = SetupProfile::VcOnly;
        self
    }

    /// Sets the setup profile explicitly (see [`ElectionBuilder::vc_only`]).
    #[must_use]
    pub fn setup_profile(mut self, profile: SetupProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Makes one VC node Byzantine.
    #[must_use]
    pub fn adversary(mut self, node: NodeId, behavior: VcBehavior) -> Self {
        self.adversaries.push((node, behavior));
        self
    }

    /// Arms a state-triggered Byzantine profile on one VC node: the node
    /// follows the protocol until the adversary's predicate over
    /// *observed* state fires (see [`TriggeredAdversary`]). Composes
    /// with — and is independent of — the static
    /// [`ElectionBuilder::adversary`] behaviours.
    #[must_use]
    pub fn triggered_adversary(mut self, node: NodeId, adversary: TriggeredAdversary) -> Self {
        self.triggered.push((node, adversary));
        self
    }

    /// Makes one BB replica's reads diverge once it has accepted the
    /// first finalized vote set (the adaptive Byzantine board the
    /// read-side `fb+1` majority must outvote).
    #[must_use]
    pub fn bb_diverges_after_finalized(mut self, bb_index: u32) -> Self {
        self.bb_divergent.push(bb_index);
        self
    }

    /// Journals VC/BB state on disks drawn from (and returned to) a
    /// shared [`crate::campaign::DiskPool`] instead of fresh
    /// [`SimDisk`]s — the carried-over durable state of sequential
    /// campaign elections. Only meaningful with [`Durability::Sim`].
    #[must_use]
    pub fn disk_pool(mut self, pool: Arc<crate::campaign::DiskPool>) -> Self {
        self.disk_pool = Some(pool);
        self
    }

    /// Sets VC behaviours positionally (node 0, 1, …); shorter vectors are
    /// padded with [`VcBehavior::Honest`], longer ones are rejected at
    /// `build()` with [`BuildError::BadNode`]. Composes with
    /// [`ElectionBuilder::adversary`], which wins on conflict.
    #[must_use]
    pub fn vc_behaviors(mut self, behaviors: impl IntoIterator<Item = VcBehavior>) -> Self {
        self.behaviors = behaviors.into_iter().collect();
        self
    }

    /// Gives one VC node's internal clock a fixed drift (Assumption II's
    /// `Δ` bound, in signed milliseconds).
    #[must_use]
    pub fn clock_drift(mut self, node: NodeId, drift_ms: i64) -> Self {
        self.node_drifts.push((node, drift_ms));
        self
    }

    /// Sets VC clock drifts positionally (milliseconds; shorter vectors are
    /// padded with zero, longer ones are rejected at `build()` with
    /// [`BuildError::BadNode`]).
    #[must_use]
    pub fn clock_drifts(mut self, drifts_ms: impl IntoIterator<Item = i64>) -> Self {
        self.drifts_ms = drifts_ms.into_iter().collect();
        self
    }

    /// Materializes only the first `k` serials' ballots and VC rows; the
    /// stores still report the full registered electorate. This is how the
    /// scalability benchmarks model a 250M-row database of which only the
    /// cast range is touched. Implies the restrictions of
    /// [`BuildError::PartialSetupRequiresVcOnly`].
    #[must_use]
    pub fn materialize_first(mut self, k: u64) -> Self {
        self.materialize_first = Some(k);
        self
    }

    /// Registers a setup corruption applied after EA setup and before any
    /// node starts — the malicious-EA attacks of §IV-C (see
    /// [`crate::adversary`]).
    #[must_use]
    pub fn corrupt_setup(mut self, f: impl FnOnce(&mut SetupOutput) + 'static) -> Self {
        self.corruptions.push(Box::new(f));
        self
    }

    /// Runs EA setup and starts every long-lived component.
    ///
    /// # Errors
    /// See [`BuildError`].
    pub fn build(self) -> Result<Election, BuildError> {
        self.params.validate()?;
        if let Network::Tcp(cluster) = &self.network {
            let cluster = cluster.clone();
            return self.build_tcp(cluster);
        }
        let num_vc = self.params.num_vc;

        // Merge positional and per-node behaviours / drifts. Over-length
        // positional vectors name a node that does not exist — reject them
        // like the per-node setters do rather than silently truncating.
        let mut behaviors = self.behaviors;
        if behaviors.len() > num_vc {
            return Err(BuildError::BadNode(NodeId::vc(num_vc as u32)));
        }
        behaviors.resize(num_vc, VcBehavior::Honest);
        for (node, behavior) in &self.adversaries {
            if node.kind != NodeKind::Vc || node.index as usize >= num_vc {
                return Err(BuildError::BadNode(*node));
            }
            behaviors[node.index as usize] = *behavior;
        }
        let mut triggered: Vec<Option<TriggeredAdversary>> = vec![None; num_vc];
        for (node, adversary) in &self.triggered {
            if node.kind != NodeKind::Vc || node.index as usize >= num_vc {
                return Err(BuildError::BadNode(*node));
            }
            triggered[node.index as usize] = Some(adversary.clone());
        }
        for &bb in &self.bb_divergent {
            if bb as usize >= self.params.num_bb {
                return Err(BuildError::BadNode(NodeId::bb(bb)));
            }
        }
        let mut drifts = self.drifts_ms;
        if drifts.len() > num_vc {
            return Err(BuildError::BadNode(NodeId::vc(num_vc as u32)));
        }
        drifts.resize(num_vc, 0);
        if self.traces.len() > num_vc {
            return Err(BuildError::BadNode(NodeId::vc(num_vc as u32)));
        }
        for (node, drift) in &self.node_drifts {
            if node.kind != NodeKind::Vc || node.index as usize >= num_vc {
                return Err(BuildError::BadNode(*node));
            }
            drifts[node.index as usize] = *drift;
        }

        // EA setup. Partial materialization (an explicit cast range, or a
        // virtual store that derives rows on demand) builds on the
        // keys-only profile; everything else materializes eagerly.
        let partial = self.materialize_first.is_some() || self.store.is_virtual();
        if partial && self.profile == SetupProfile::Full {
            return Err(BuildError::PartialSetupRequiresVcOnly);
        }
        let pool = match self.threads {
            Some(n) => Pool::new(n),
            None => Pool::from_env(),
        };
        // lint:allow(wall-clock, wall-clock setup timing reported to the operator; never reaches a core)
        let setup_started = std::time::Instant::now();
        let ea = ElectionAuthority::new(self.params.clone(), self.seed);
        let mut setup = if partial {
            // Virtual stores derive VC rows on demand, so only printed
            // voter ballots are materialized — and none by default: at the
            // electorate sizes virtual stores exist for (250M), deriving
            // every ballot eagerly would defeat the point. Callers name
            // the cast range with `materialize_first`.
            // An absent cast range only reaches here for virtual stores
            // (partial requires materialize_first or a virtual store), and
            // at the electorate sizes those exist for nothing should be
            // derived eagerly.
            let materialize = self
                .materialize_first
                .unwrap_or(0)
                .min(self.params.num_ballots);
            let mut setup = ea.setup_keys_only();
            let vc_rows = if self.store.is_virtual() { 0 } else { num_vc };
            let per_ballot = derive_cast_range(&ea, materialize, vc_rows, &pool);
            let mut ballots = Vec::with_capacity(per_ballot.len());
            for (ballot, node_rows) in per_ballot {
                for (node, rows) in node_rows.into_iter().enumerate() {
                    setup.vc_inits[node].ballots.insert(ballot.serial, rows);
                }
                ballots.push(ballot);
            }
            ballots.sort_by_key(|b| b.serial);
            setup.ballots = ballots;
            setup
        } else {
            ea.setup_with(self.profile, &pool)
        };
        let setup_elapsed = setup_started.elapsed();
        for corruption in self.corruptions {
            corruption(&mut setup);
        }
        // The EA is destroyed after setup (§III-B) unless a virtual store
        // needs its derivation function as the stand-in database.
        let ea = if self.store.is_virtual() {
            Some(Arc::new(ea))
        } else {
            None
        };

        let net_seed = self.seed ^ 0x4E45_5457_4F52_4B21;
        let net_profile = match &self.network {
            Network::Sim(profile) => profile.clone(),
            Network::Tcp(_) => unreachable!("tcp handled above"),
        };
        let (net, clock, driver) = if self.virtual_time {
            let vclock = VirtualClock::new();
            vclock.set_limit_ns(
                self.params
                    .end_ms
                    .saturating_add(VIRTUAL_LIMIT_MARGIN_MS)
                    .saturating_mul(NS_PER_MS),
            );
            let clock = GlobalClock::new_virtual(vclock.clone());
            let net = SimNet::new_virtual(net_profile, net_seed, vclock.clone());
            // Register the building thread as the driver actor *before*
            // any node spawns: virtual time cannot advance until the
            // driver blocks, so the start state is identical run to run.
            let driver = vclock.register_actor();
            (net, clock, Some(driver))
        } else {
            (SimNet::new(net_profile, net_seed), GlobalClock::new(), None)
        };
        // Scheduled SetDrift faults write through the registry in both
        // time modes (real-time drift experiments included).
        net.set_drift_registry(clock.drift_registry());
        // BB replicas have no network inbox, so a CrashAmnesia fault
        // reaches them through this hook: the index is flagged here and
        // serviced (state reset + journal replay) by the Election before
        // its next BB interaction. Registered before any fault can fire.
        let bb_amnesia: Arc<Mutex<BTreeSet<u32>>> = Arc::new(Mutex::new(BTreeSet::new()));
        {
            let flags = bb_amnesia.clone();
            net.set_amnesia_hook(Arc::new(move |id| {
                if id.kind == NodeKind::Bb {
                    flags.lock().insert(id.index);
                }
            }));
        }
        for (at_ms, fault) in &self.schedule.events {
            net.schedule_fault(Duration::from_millis(*at_ms), fault.clone());
        }
        // Per-node metrics recorders, created in node order (vc-0…,
        // bb-0…, then the profiling hook); report() merges their
        // snapshots in this same fixed order. Default metrics charge
        // time on the election clock — deterministic virtual nanoseconds
        // under virtual_time(). Profiling overrides the source with real
        // monotonic time and additionally installs the process-global
        // crypto hook.
        let metrics_domain = if self.virtual_time {
            TimeDomain::Virtual
        } else {
            TimeDomain::Wall
        };
        let new_recorder = || {
            if self.profiling {
                Recorder::wall()
            } else if self.metrics {
                Recorder::new(metrics_domain, Box::new(ClockSource(clock.clone())))
            } else {
                Recorder::disabled()
            }
        };
        let vc_recorders: Vec<Recorder> = (0..num_vc).map(|_| new_recorder()).collect();
        let bb_recorders: Vec<Recorder> = (0..self.params.num_bb).map(|_| new_recorder()).collect();
        let global_recorder = if self.profiling {
            let hook = Recorder::wall();
            ddemos_obs::install_global(hook.clone());
            Some(hook)
        } else {
            None
        };

        let storage_err = |e: StorageError| BuildError::Storage(e.to_string());
        let journal_config = self.journal_config;
        let durability = self.durability.clone();
        let disk_pool = self.disk_pool.clone();
        let make_journal = {
            let clock = clock.clone();
            move |label: String| -> Result<Option<DynJournal>, BuildError> {
                match &durability {
                    Durability::None => Ok(None),
                    Durability::Sim(profile) => {
                        // A campaign pool hands back the *same* disk it
                        // gave the previous election under this label —
                        // its wear counters and fault state (a still-full
                        // device!) carry over; only the clock is
                        // re-pointed at this election.
                        let disk: DynDisk = match &disk_pool {
                            Some(pool) => pool.disk(&label, clock.clone(), *profile),
                            None => Arc::new(SimDisk::new(clock.clone(), *profile)),
                        };
                        Ok(Some(Journal::new(disk, journal_config)))
                    }
                    Durability::File(dir) => {
                        let disk: DynDisk =
                            Arc::new(FileDisk::open(dir.join(label)).map_err(storage_err)?);
                        Ok(Some(Journal::new(disk, journal_config)))
                    }
                }
            }
        };
        let (result_tx, result_rx) = crossbeam_channel::unbounded();
        let n = self.params.num_ballots;
        let mut vc_handles: Vec<VcHandle> = Vec::with_capacity(num_vc);
        for init in &mut setup.vc_inits {
            let i = init.node_index;
            let endpoint = net.register(NodeId::vc(i));
            let config = VcNodeConfig {
                behavior: behaviors[i as usize],
                poll: if self.virtual_time {
                    VIRTUAL_POLL
                } else {
                    VcNodeConfig::default().poll
                },
                trace: self.traces.get(i as usize).cloned(),
                adversary: triggered[i as usize].clone(),
                recorder: vc_recorders[i as usize].clone(),
            };
            let node_clock = clock.node_clock_keyed(NodeId::vc(i).clock_key(), drifts[i as usize]);
            let beacon = setup.consensus_beacon;
            let tx = result_tx.clone();
            // The rows move into the node's store; the retained init copies
            // stay empty (each node is handed its data exactly once).
            let rows = std::mem::take(&mut init.ballots);
            let mut journal = make_journal(format!("vc-{i}"))?;
            if let Some(j) = journal.as_mut() {
                j.set_recorder(vc_recorders[i as usize].clone());
            }
            let handle = match self.store {
                StoreKind::Memory => VcNode::spawn_durable(
                    init.clone(),
                    MemoryStore::new(rows, n),
                    endpoint,
                    node_clock,
                    beacon,
                    config,
                    tx,
                    journal,
                ),
                StoreKind::Latency(model) => VcNode::spawn_durable(
                    init.clone(),
                    LatencyStore::with_clock(MemoryStore::new(rows, n), model, clock.clone()),
                    endpoint,
                    node_clock,
                    beacon,
                    config,
                    tx,
                    journal,
                ),
                StoreKind::Virtual => VcNode::spawn_durable(
                    init.clone(),
                    virtual_store(ea.clone().expect("ea retained"), i, n),
                    endpoint,
                    node_clock,
                    beacon,
                    config,
                    tx,
                    journal,
                ),
                StoreKind::VirtualLatency(model) => VcNode::spawn_durable(
                    init.clone(),
                    LatencyStore::with_clock(
                        virtual_store(ea.clone().expect("ea retained"), i, n),
                        model,
                        clock.clone(),
                    ),
                    endpoint,
                    node_clock,
                    beacon,
                    config,
                    tx,
                    journal,
                ),
                StoreKind::Disk(profile) => {
                    let disk: DynDisk = Arc::new(SimDisk::new(clock.clone(), profile));
                    let store = WalStore::build(&rows, n, disk).map_err(storage_err)?;
                    VcNode::spawn_durable(
                        init.clone(),
                        store,
                        endpoint,
                        node_clock,
                        beacon,
                        config,
                        tx,
                        journal,
                    )
                }
            };
            vc_handles.push(handle);
        }

        if let Some(vclock) = clock.virtual_clock() {
            // Start barrier: every node must be registered before the
            // first advancement step, or the initial event order would
            // depend on thread start-up timing. A timeout here would
            // silently void the seed-determinism guarantee, so it is a
            // hard failure even in release builds.
            assert!(
                vclock.wait_for_registered(num_vc + 1, Duration::from_secs(30)),
                "vc nodes failed to register with the virtual clock within 30s"
            );
        }

        let bb_nodes: Vec<Arc<BbNode>> = (0..setup.params.num_bb)
            .map(|_| Arc::new(BbNode::new(setup.bb_init.clone())))
            .collect();
        for &bb in &self.bb_divergent {
            bb_nodes[bb as usize].set_diverge_after_finalized(true);
        }
        for (b, bb) in bb_nodes.iter().enumerate() {
            bb.set_recorder(bb_recorders[b].clone());
        }
        if self.durability.enabled() {
            for (b, bb) in bb_nodes.iter().enumerate() {
                let mut journal = make_journal(format!("bb-{b}"))?.expect("durability enabled");
                journal.set_recorder(bb_recorders[b].clone());
                bb.attach_journal(journal).map_err(storage_err)?;
            }
        }
        let bb_apis: Vec<Arc<dyn BbApi>> = bb_nodes
            .iter()
            .map(|node| node.clone() as Arc<dyn BbApi>)
            .collect();
        let reader = MajorityReader::over(bb_apis.clone()).with_clock(clock.clone());
        let trustees: Vec<Trustee> = setup
            .trustee_inits
            .iter()
            .cloned()
            .map(|init| Trustee::new(init).with_threads(pool.threads()))
            .collect();

        let run = RunState {
            timings: crate::election::PhaseTimings {
                setup: setup_elapsed,
                ..Default::default()
            },
            ..Default::default()
        };
        Ok(Election {
            setup,
            net: NetBackend::Sim(net),
            clock,
            bb_nodes,
            bb_apis,
            reader,
            trustees,
            vc_handles,
            result_rx,
            seed: self.seed,
            store: self.store,
            profile: self.profile,
            threads: pool.threads(),
            close_timeout: self.close_timeout.unwrap_or(Duration::from_secs(120)),
            next_client: AtomicU32::new(0),
            cast_seq: AtomicU64::new(0),
            run: Mutex::new(run),
            close_lock: Mutex::new(()),
            bb_amnesia,
            recorders: vc_recorders
                .into_iter()
                .chain(bb_recorders)
                .chain(global_recorder)
                .collect(),
            metrics_domain,
            profiling: self.profiling,
            _driver: driver,
            _ea: ea,
        })
    }

    /// The [`Network::Tcp`] build path: the coordinator of a
    /// multi-process cluster. No node is spawned here — VC and BB
    /// replicas are separate OS processes running
    /// [`crate::tcp::run_vc_replica`] / [`crate::tcp::run_bb_replica`]
    /// with the same `(params, seed)`; the builder derives the identical
    /// setup (ballots for voters, BB init for the auditor, trustee
    /// inits), binds the coordinator transport, and wires the phase
    /// handles to remote clients.
    fn build_tcp(self, cluster: TcpCluster) -> Result<Election, BuildError> {
        // Options that configure in-process nodes or the simulated
        // network cannot reach replicas living in other processes.
        let unsupported: &[(&'static str, bool)] = &[
            ("virtual time", self.virtual_time),
            ("fault schedules", !self.schedule.events.is_empty()),
            (
                "durability control",
                !matches!(self.durability, Durability::None),
            ),
            (
                "vc_only / custom setup profiles",
                self.profile != SetupProfile::Full,
            ),
            ("partial materialization", self.materialize_first.is_some()),
            ("setup corruption", !self.corruptions.is_empty()),
            (
                "adversarial behaviors",
                !self.behaviors.is_empty()
                    || !self.adversaries.is_empty()
                    || !self.triggered.is_empty()
                    || !self.bb_divergent.is_empty(),
            ),
            ("campaign disk pools", self.disk_pool.is_some()),
            // Replica-side recorders live in other processes; only the
            // transport's connection counters reach the coordinator.
            ("wall-clock profiling", self.profiling),
            (
                "clock drifts",
                !self.drifts_ms.is_empty() || !self.node_drifts.is_empty(),
            ),
            (
                "non-memory ballot stores",
                !matches!(self.store, StoreKind::Memory),
            ),
            ("step traces", !self.traces.is_empty()),
        ];
        if let Some((what, _)) = unsupported.iter().find(|(_, set)| *set) {
            return Err(BuildError::TcpUnsupported(what));
        }
        if cluster.vc_addrs.len() != self.params.num_vc
            || cluster.bb_addrs.len() != self.params.num_bb
        {
            return Err(BuildError::TcpUnsupported(
                "a cluster sized differently from the election parameters",
            ));
        }
        let pool = match self.threads {
            Some(n) => Pool::new(n),
            None => Pool::from_env(),
        };
        // lint:allow(wall-clock, wall-clock setup timing reported to the operator; never reaches a core)
        let setup_started = std::time::Instant::now();
        let ea = ElectionAuthority::new(self.params.clone(), self.seed);
        let setup = ea.setup_with(SetupProfile::Full, &pool);
        let setup_elapsed = setup_started.elapsed();
        let backend =
            TcpBackend::connect(cluster, self.seed).map_err(|e| BuildError::Net(e.to_string()))?;
        let bb_apis = backend.bb_clients();
        let reserved_clients = backend.reserved_clients();
        let reader = MajorityReader::over(bb_apis.clone());
        let trustees: Vec<Trustee> = setup
            .trustee_inits
            .iter()
            .cloned()
            .map(|init| Trustee::new(init).with_threads(pool.threads()))
            .collect();
        // The in-process result channel stays empty: finalized sets
        // arrive as Msg::Finalized envelopes on the control endpoint.
        let (_result_tx, result_rx) = crossbeam_channel::unbounded();
        let run = RunState {
            timings: crate::election::PhaseTimings {
                setup: setup_elapsed,
                ..Default::default()
            },
            ..Default::default()
        };
        Ok(Election {
            setup,
            net: NetBackend::Tcp(backend),
            clock: GlobalClock::new(),
            bb_nodes: Vec::new(),
            bb_apis,
            reader,
            trustees,
            vc_handles: Vec::new(),
            result_rx,
            seed: self.seed,
            store: self.store,
            profile: self.profile,
            threads: pool.threads(),
            close_timeout: self.close_timeout.unwrap_or(Duration::from_secs(120)),
            next_client: AtomicU32::new(reserved_clients),
            cast_seq: AtomicU64::new(0),
            run: Mutex::new(run),
            close_lock: Mutex::new(()),
            bb_amnesia: Arc::new(Mutex::new(BTreeSet::new())),
            recorders: Vec::new(),
            metrics_domain: TimeDomain::Wall,
            profiling: false,
            _driver: None,
            _ea: None,
        })
    }
}

/// Derives voter ballots and per-node VC rows for serials `0..k` on the
/// builder's executor (derivation is deterministic per serial and the pool
/// preserves order, so results are independent of the thread count).
fn derive_cast_range(
    ea: &ElectionAuthority,
    k: u64,
    num_vc: usize,
    pool: &Pool,
) -> Vec<(Ballot, Vec<ddemos_protocol::initdata::VcBallot>)> {
    let serials: Vec<u64> = (0..k).collect();
    pool.map(&serials, |&s| {
        let serial = SerialNo(s);
        let rows = if num_vc > 0 {
            ea.vc_ballots_all_nodes(serial)
        } else {
            Vec::new()
        };
        (ea.voter_ballot(serial), rows)
    })
}

/// A PRF-backed virtual store: rows derived on demand from the retained
/// EA derivation state (the stand-in for a node's pre-populated database).
fn virtual_store(
    ea: Arc<ElectionAuthority>,
    node: u32,
    n: u64,
) -> FnStore<impl Fn(SerialNo) -> Option<ddemos_protocol::initdata::VcBallot> + Send + Sync> {
    FnStore::new(n, move |serial| Some(ea.vc_ballot(serial, node)))
}
