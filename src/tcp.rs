//! Multi-process elections over TCP sockets.
//!
//! The paper's prototype runs every VC and BB replica as its own
//! networked process (§V). This module is that deployment shape for the
//! reproduction: a [`TcpCluster`] names the listen address of every
//! replica plus the election coordinator, [`run_vc_replica`] /
//! [`run_bb_replica`] are the blocking replica mains (each derives its
//! own initialization data from the shared `(params, seed)` — EA setup is
//! deterministic, standing in for the paper's out-of-band dealing), and
//! `ElectionBuilder::network(Network::Tcp(cluster))` builds an
//! [`crate::Election`] whose phase handles drive the remote cluster:
//! voters cast over sockets, `close()` collects `Msg::Finalized`
//! envelopes and relays the vote sets to every BB replica, `tally()`
//! and `audit()` run against a majority read of `Msg::BbReadResponse`s.
//!
//! The replicas run the *same* sans-I/O cores (`VcCore`, `BbCore`) as the
//! in-process simulation — only the driver differs — which is what makes
//! the same-seed TCP and in-process runs produce identical tallies,
//! receipts, and audit verdicts (`examples/tcp_cluster.rs` asserts
//! exactly that across OS processes).

use crate::election::ElectionError;
use ddemos_bb::{codec as bb_codec, BbApi, BbNode, BbSnapshot, WriteError};
use ddemos_crypto::schnorr::Signature;
use ddemos_crypto::vss::SignedShare;
use ddemos_ea::{ElectionAuthority, SetupProfile};
use ddemos_net::auth::{seeded_secret, AuthConfig};
use ddemos_net::evloop::EvConfig;
use ddemos_net::tcp::{TcpConfig, TcpTransport};
use ddemos_net::{
    AuthTransport, ConnSnapshot, DynEndpoint, EvNodeEndpoint, EventEndpoint, NetStats, Transport,
    Wait,
};
use ddemos_protocol::clock::GlobalClock;
use ddemos_protocol::exec::Pool;
use ddemos_protocol::messages::{BbWriteMsg, Msg};
use ddemos_protocol::posts::{FinalizedVoteSet, TrusteePost, VoteSet};
use ddemos_protocol::{ElectionParams, NodeId, NodeKind};
use ddemos_vc::{DeliverTarget, MemoryStore, VcNode, VcNodeConfig};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The election coordinator's well-known identity (`C0`): the endpoint
/// VC replicas deliver their [`Msg::Finalized`] sets to, and the source
/// of the `ClosePolls`/`Shutdown` control envelopes replicas accept.
pub const COORDINATOR: NodeId = NodeId {
    kind: NodeKind::Client,
    index: 0,
};

/// Per-request timeout of remote BB reads and writes.
const BB_REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

/// Which socket driver the deployment runs on. Every process of one
/// cluster must agree (the wire protocols differ).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TcpDriver {
    /// The historic thread-per-peer blocking transport
    /// ([`TcpTransport`]): raw CRC frames, sender-claimed `from`.
    #[default]
    Threaded,
    /// The readiness-driven epoll front door
    /// ([`ddemos_net::evloop::EvLoop`]): one event loop per replica,
    /// authenticated channels, admission control and backpressure. No
    /// thread per peer — this is the driver the load harness pushes to
    /// six-figure connection counts.
    EventLoop,
}

/// Listener, admission and channel-authentication configuration of a
/// TCP deployment. Carried inside [`TcpCluster`] so every replica
/// process (which receives the cluster on its command line or re-derives
/// it from shared state) agrees with the coordinator.
#[derive(Clone, Copy, Debug)]
pub struct TcpOptions {
    /// The socket driver.
    pub driver: TcpDriver,
    /// Admission limit per replica (event-loop driver only): inbound
    /// connections beyond this receive a typed `ServerFull` reject.
    pub max_conns: usize,
    /// Per-connection write-queue cap in bytes (event-loop driver
    /// only); slow consumers over the cap are shed.
    pub write_cap: usize,
    /// Maximum envelope frame accepted on an authenticated channel.
    pub max_frame: u32,
    /// The 32-byte cluster secret for channel authentication. `None`
    /// derives it from the election seed ([`seeded_secret`]) — the
    /// deterministic stand-in for out-of-band key distribution.
    pub auth_secret: Option<[u8; 32]>,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            driver: TcpDriver::default(),
            max_conns: 16384,
            write_cap: 1 << 20,
            max_frame: 16 << 20,
            auth_secret: None,
        }
    }
}

impl TcpOptions {
    /// Options for the event-loop driver with default admission limits.
    pub fn event_loop() -> TcpOptions {
        TcpOptions {
            driver: TcpDriver::EventLoop,
            ..TcpOptions::default()
        }
    }
}

/// Addresses of every process in a TCP deployment.
#[derive(Clone, Debug)]
pub struct TcpCluster {
    /// VC replica listen addresses, indexed by node.
    pub vc_addrs: Vec<SocketAddr>,
    /// BB replica listen addresses, indexed by node.
    pub bb_addrs: Vec<SocketAddr>,
    /// The coordinator's listen address (VC replicas connect here to
    /// deliver finalized vote sets — threaded driver only; under the
    /// event-loop driver the coordinator dials out and replicas answer
    /// over its own authenticated connections).
    pub coordinator: SocketAddr,
    /// Driver, admission and authentication configuration shared by
    /// every process.
    pub options: TcpOptions,
}

impl TcpCluster {
    /// A localhost cluster on consecutive ports starting at `base_port`:
    /// VC `i` at `base_port + i`, BB `j` after the VCs, the coordinator
    /// last.
    pub fn localhost(base_port: u16, num_vc: usize, num_bb: usize) -> TcpCluster {
        let addr = |offset: u16| SocketAddr::from(([127, 0, 0, 1], base_port + offset));
        TcpCluster {
            vc_addrs: (0..num_vc as u16).map(addr).collect(),
            bb_addrs: (0..num_bb as u16)
                .map(|j| addr(num_vc as u16 + j))
                .collect(),
            coordinator: addr((num_vc + num_bb) as u16),
            options: TcpOptions::default(),
        }
    }

    /// A localhost cluster on OS-assigned free ports: each port is
    /// probed by binding a throwaway listener. The ports are released
    /// again before this returns, so a race with another process is
    /// possible but unlikely — good enough for tests and demos.
    ///
    /// # Errors
    /// I/O errors probing for free ports.
    pub fn localhost_free(num_vc: usize, num_bb: usize) -> std::io::Result<TcpCluster> {
        let mut probes = Vec::with_capacity(num_vc + num_bb + 1);
        let mut addrs = Vec::with_capacity(num_vc + num_bb + 1);
        for _ in 0..num_vc + num_bb + 1 {
            let probe = std::net::TcpListener::bind(SocketAddr::from(([127, 0, 0, 1], 0)))?;
            addrs.push(probe.local_addr()?);
            probes.push(probe);
        }
        drop(probes);
        let bb_start = num_vc;
        Ok(TcpCluster {
            vc_addrs: addrs[..num_vc].to_vec(),
            bb_addrs: addrs[bb_start..bb_start + num_bb].to_vec(),
            coordinator: addrs[num_vc + num_bb],
            options: TcpOptions::default(),
        })
    }

    /// Replaces the driver/admission/auth options (builder-style).
    #[must_use]
    pub fn with_options(mut self, options: TcpOptions) -> TcpCluster {
        self.options = options;
        self
    }

    /// The channel-authentication config every process derives from the
    /// shared `(options, seed)`.
    pub(crate) fn auth_config(&self, seed: u64) -> AuthConfig {
        AuthConfig {
            secret: self
                .options
                .auth_secret
                .unwrap_or_else(|| seeded_secret(seed)),
            max_frame: self.options.max_frame,
        }
    }

    /// The event-loop config of one replica.
    fn ev_config(&self, seed: u64, me: NodeId) -> EvConfig {
        EvConfig {
            auth: self.auth_config(seed),
            max_conns: self.options.max_conns,
            write_cap: self.options.write_cap,
            nonce_seed: process_nonce_seed(me),
        }
    }

    /// The static peer table of one replica: every *other* replica plus
    /// the coordinator.
    pub fn replica_peers(&self, me: NodeId) -> Vec<(NodeId, SocketAddr)> {
        let mut peers = self.all_replicas();
        peers.retain(|(id, _)| *id != me);
        peers.push((COORDINATOR, self.coordinator));
        peers
    }

    /// The coordinator's static peer table: every replica.
    pub fn coordinator_peers(&self) -> Vec<(NodeId, SocketAddr)> {
        self.all_replicas()
    }

    fn all_replicas(&self) -> Vec<(NodeId, SocketAddr)> {
        let mut peers = Vec::with_capacity(self.vc_addrs.len() + self.bb_addrs.len());
        for (i, addr) in self.vc_addrs.iter().enumerate() {
            peers.push((NodeId::vc(i as u32), *addr));
        }
        for (j, addr) in self.bb_addrs.iter().enumerate() {
            peers.push((NodeId::bb(j as u32), *addr));
        }
        peers
    }
}

/// A unique-per-process handshake-nonce seed. Determinism of the
/// *election* never depends on it (nonces only feed session-key
/// freshness), and repeating nonces across replica restarts would be
/// exactly the cross-epoch replay surface the channel closes — so this
/// mixes in process identity and boot time rather than the election
/// seed.
pub(crate) fn process_nonce_seed(me: NodeId) -> [u8; 32] {
    let mut base = [0u8; 32];
    base[..4].copy_from_slice(&std::process::id().to_be_bytes());
    // lint:allow(wall-clock, per-process handshake-nonce uniqueness; never reaches a core)
    let boot = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    base[4..20].copy_from_slice(&boot.as_nanos().to_be_bytes());
    ddemos_crypto::hmac::hmac_sha256_parts(
        &base,
        &[b"ddemos.tcp.nonce-seed", format!("{me}").as_bytes()],
    )
}

/// Derives the full deterministic setup every process shares. EA setup is
/// a pure function of `(params, seed)` and independent of the worker
/// count, so each process dealing its *own* initialization data is
/// equivalent to the paper's out-of-band distribution.
pub(crate) fn derive_setup(params: &ElectionParams, seed: u64) -> ddemos_ea::SetupOutput {
    let pool = Pool::from_env();
    ElectionAuthority::new(params.clone(), seed).setup_with(SetupProfile::Full, &pool)
}

/// Runs one VC replica to completion: derives its initialization data,
/// binds its listener, serves the full protocol (voting, vote-set
/// consensus, finalized-set delivery to the coordinator), and returns
/// when the coordinator sends `Msg::Shutdown`.
///
/// # Errors
/// I/O errors binding the replica's listen address.
pub fn run_vc_replica(
    params: &ElectionParams,
    seed: u64,
    index: u32,
    cluster: &TcpCluster,
) -> std::io::Result<()> {
    let mut setup = derive_setup(params, seed);
    let mut init = setup.vc_inits.swap_remove(index as usize);
    let rows = std::mem::take(&mut init.ballots);
    let store = MemoryStore::new(rows, params.num_ballots);
    let me = NodeId::vc(index);
    let clock = GlobalClock::new();
    match cluster.options.driver {
        TcpDriver::Threaded => {
            let transport = TcpTransport::bind(TcpConfig::new(
                cluster.vc_addrs[index as usize],
                cluster.replica_peers(me),
            ))?;
            let endpoint: DynEndpoint = Transport::register(&transport, me);
            let handle = VcNode::spawn_with(
                init,
                store,
                endpoint,
                clock.node_clock_keyed(me.clock_key(), 0),
                setup.consensus_beacon,
                VcNodeConfig::default(),
                DeliverTarget::Peers(vec![COORDINATOR]),
                None,
            );
            handle.join();
            transport.shutdown();
        }
        TcpDriver::EventLoop => {
            // Dialable peers are the *other replicas* (they have
            // listeners). The coordinator and the voters have none:
            // they connect in, and their authenticated channels carry
            // the finalized sets and receipts back out.
            let mut peers = cluster.all_replicas();
            peers.retain(|(id, _)| *id != me);
            let endpoint = EvNodeEndpoint::bind(
                me,
                cluster.vc_addrs[index as usize],
                peers,
                cluster.ev_config(seed, me),
            )?;
            let handle = VcNode::spawn_event(
                init,
                store,
                Box::new(endpoint),
                clock.node_clock_keyed(me.clock_key(), 0),
                setup.consensus_beacon,
                VcNodeConfig::default(),
                DeliverTarget::Peers(vec![COORDINATOR]),
                None,
            );
            handle.join();
        }
    }
    Ok(())
}

/// Runs one BB replica to completion: a request/response loop over
/// `Msg::BbWrite` / `Msg::BbReadRequest` envelopes against a [`BbNode`],
/// until the coordinator sends `Msg::Shutdown`.
///
/// # Errors
/// I/O errors binding the replica's listen address.
pub fn run_bb_replica(
    params: &ElectionParams,
    seed: u64,
    index: u32,
    cluster: &TcpCluster,
) -> std::io::Result<()> {
    let setup = derive_setup(params, seed);
    let node = BbNode::new(setup.bb_init);
    let me = NodeId::bb(index);
    match cluster.options.driver {
        TcpDriver::Threaded => {
            let transport = TcpTransport::bind(TcpConfig::new(
                cluster.bb_addrs[index as usize],
                cluster.replica_peers(me),
            ))?;
            serve_bb(&node, &Transport::register_event(&transport, me));
            transport.shutdown();
        }
        TcpDriver::EventLoop => {
            // A BB replica never dials anyone: every client (the
            // coordinator's RemoteBb clients, auditors) connects in.
            let endpoint = EvNodeEndpoint::bind(
                me,
                cluster.bb_addrs[index as usize],
                Vec::new(),
                cluster.ev_config(seed, me),
            )?;
            serve_bb(&node, &endpoint);
        }
    }
    Ok(())
}

/// The BB replica serve loop, on the poll-based event surface: wait for
/// readiness, then drain the inbox without blocking mid-batch. Runs
/// identically over the threaded transport's adapter and over an owned
/// event loop.
fn serve_bb(node: &BbNode, endpoint: &dyn EventEndpoint) {
    'serve: loop {
        match endpoint.wait(Duration::from_secs(3600)) {
            Wait::Closed => break 'serve,
            Wait::Timeout => continue 'serve,
            Wait::Ready => {}
        }
        while let Some(env) = endpoint.try_recv() {
            let control = matches!(env.from.kind, NodeKind::Client | NodeKind::Ea);
            match env.msg {
                Msg::BbWrite { request_id, write } => {
                    let outcome = node.handle_write(write);
                    endpoint.send(
                        env.from,
                        Msg::BbWriteReply {
                            request_id,
                            outcome,
                        },
                    );
                }
                Msg::BbReadRequest { request_id } => {
                    let snapshot = Arc::new(bb_codec::encode_snapshot(&node.read()));
                    endpoint.send(
                        env.from,
                        Msg::BbReadResponse {
                            request_id,
                            snapshot,
                        },
                    );
                }
                Msg::Shutdown if control => break 'serve,
                _ => {}
            }
        }
    }
}

/// A [`BbApi`] client for one remote BB replica: request/response
/// envelopes with correlation ids over a dedicated coordinator endpoint.
/// Timeouts surface as `None` / [`WriteError::Unavailable`] — the
/// majority reader outvotes an unreachable replica like any divergent
/// one.
pub struct RemoteBb {
    endpoint: Mutex<DynEndpoint>,
    target: NodeId,
    timeout: Duration,
    next_request: AtomicU64,
}

impl RemoteBb {
    /// Wraps a dedicated endpoint speaking to `target`.
    pub fn new(endpoint: DynEndpoint, target: NodeId) -> RemoteBb {
        RemoteBb {
            endpoint: Mutex::new(endpoint),
            target,
            timeout: BB_REQUEST_TIMEOUT,
            next_request: AtomicU64::new(1),
        }
    }

    /// Sends one request and waits for the reply carrying the same
    /// correlation id (stale replies from timed-out requests are
    /// discarded).
    fn request(&self, make: impl FnOnce(u64) -> Msg) -> Option<Msg> {
        let request_id = self.next_request.fetch_add(1, Ordering::SeqCst);
        let endpoint = self.endpoint.lock();
        endpoint.send(self.target, make(request_id));
        // lint:allow(wall-clock, client-side request timeout over a real TCP socket)
        let deadline = Instant::now() + self.timeout;
        loop {
            // lint:allow(wall-clock, client-side request timeout over a real TCP socket)
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let env = endpoint.recv_timeout(remaining).ok()?;
            let rid = match &env.msg {
                Msg::BbWriteReply { request_id, .. } => *request_id,
                Msg::BbReadResponse { request_id, .. } => *request_id,
                _ => continue,
            };
            if rid == request_id {
                return Some(env.msg);
            }
        }
    }

    fn write(&self, write: BbWriteMsg) -> Result<(), WriteError> {
        match self.request(|request_id| Msg::BbWrite { request_id, write }) {
            Some(Msg::BbWriteReply { outcome, .. }) => ddemos_bb::core::outcome_to_result(outcome),
            _ => Err(WriteError::Unavailable),
        }
    }
}

impl BbApi for RemoteBb {
    fn read(&self) -> Option<BbSnapshot> {
        match self.request(|request_id| Msg::BbReadRequest { request_id }) {
            Some(Msg::BbReadResponse { snapshot, .. }) => bb_codec::decode_snapshot(&snapshot).ok(),
            _ => None,
        }
    }

    fn submit_vote_set(
        &self,
        from_vc: u32,
        set: &VoteSet,
        sig: &Signature,
    ) -> Result<(), WriteError> {
        self.write(BbWriteMsg::VoteSet {
            from_vc,
            set: set.clone(),
            sig: *sig,
        })
    }

    fn submit_msk_share(&self, share: &SignedShare) -> Result<(), WriteError> {
        self.write(BbWriteMsg::MskShare { share: *share })
    }

    fn submit_trustee_post(
        &self,
        post: Arc<TrusteePost>,
        sig: &Signature,
    ) -> Result<(), WriteError> {
        self.write(BbWriteMsg::TrusteePost { post, sig: *sig })
    }
}

/// The coordinator's transport, per [`TcpDriver`].
pub(crate) enum CoordTransport {
    /// Thread-per-peer raw transport (binds the coordinator listener).
    Threaded(TcpTransport),
    /// Authenticated dial-out channels to evloop-fronted replicas (no
    /// listener; replicas answer over the coordinator's connections).
    Ev(AuthTransport),
}

impl CoordTransport {
    pub(crate) fn register(&self, id: NodeId) -> DynEndpoint {
        match self {
            CoordTransport::Threaded(t) => Transport::register(t, id),
            CoordTransport::Ev(t) => Transport::register(t, id),
        }
    }

    pub(crate) fn stats(&self) -> &NetStats {
        match self {
            CoordTransport::Threaded(t) => t.stats(),
            CoordTransport::Ev(t) => t.stats(),
        }
    }

    /// Connection counters (event-loop driver only: the threaded
    /// transport has no handshake to count).
    pub(crate) fn conn_counters(&self) -> Option<ConnSnapshot> {
        match self {
            CoordTransport::Threaded(_) => None,
            CoordTransport::Ev(t) => Some(t.conn_counters()),
        }
    }

    fn shutdown(&self) {
        match self {
            CoordTransport::Threaded(t) => t.shutdown(),
            CoordTransport::Ev(t) => Transport::shutdown(t),
        }
    }
}

/// The coordinator's connection to a remote cluster (held by
/// [`crate::Election`] in TCP mode).
pub(crate) struct TcpBackend {
    pub(crate) transport: CoordTransport,
    pub(crate) cluster: TcpCluster,
    /// The `C0` control endpoint: receives [`Msg::Finalized`], sends
    /// `ClosePolls`/`Shutdown`.
    pub(crate) control: Mutex<DynEndpoint>,
    /// Guards [`TcpBackend::shutdown`] (an explicit `Election::shutdown`
    /// is followed by the `Drop` path).
    down: std::sync::atomic::AtomicBool,
}

impl TcpBackend {
    /// Binds (threaded) or prepares (event-loop) the coordinator
    /// transport and registers the control endpoint.
    pub(crate) fn connect(cluster: TcpCluster, seed: u64) -> std::io::Result<TcpBackend> {
        let transport = match cluster.options.driver {
            TcpDriver::Threaded => CoordTransport::Threaded(TcpTransport::bind(TcpConfig::new(
                cluster.coordinator,
                cluster.coordinator_peers(),
            ))?),
            TcpDriver::EventLoop => CoordTransport::Ev(AuthTransport::new(
                cluster.coordinator_peers(),
                cluster.auth_config(seed),
                process_nonce_seed(COORDINATOR),
            )),
        };
        let control = Mutex::new(transport.register(COORDINATOR));
        Ok(TcpBackend {
            transport,
            cluster,
            control,
            down: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// One [`RemoteBb`] client per BB replica, each on its own endpoint
    /// (client ids `1..=num_bb`).
    pub(crate) fn bb_clients(&self) -> Vec<Arc<dyn BbApi>> {
        (0..self.cluster.bb_addrs.len() as u32)
            .map(|j| {
                let endpoint = self.transport.register(NodeId::client(1 + j));
                Arc::new(RemoteBb::new(endpoint, NodeId::bb(j))) as Arc<dyn BbApi>
            })
            .collect()
    }

    /// Client ids `0..=num_bb` are reserved (control + BB clients).
    pub(crate) fn reserved_clients(&self) -> u32 {
        1 + self.cluster.bb_addrs.len() as u32
    }

    pub(crate) fn close_polls(&self) {
        let control = self.control.lock();
        for i in 0..self.cluster.vc_addrs.len() as u32 {
            control.send(NodeId::vc(i), Msg::ClosePolls);
        }
    }

    /// Drains one finalized vote set from the control endpoint.
    pub(crate) fn recv_finalized(
        &self,
        deadline: Instant,
    ) -> Result<FinalizedVoteSet, ElectionError> {
        let control = self.control.lock();
        loop {
            let remaining = deadline
                // lint:allow(wall-clock, client-side request timeout over a real TCP socket)
                .checked_duration_since(Instant::now())
                .ok_or(ElectionError::VoteSetTimeout)?;
            let Ok(env) = control.recv_timeout(remaining) else {
                return Err(ElectionError::VoteSetTimeout);
            };
            if let Msg::Finalized(finalized) = env.msg {
                // Under the threaded driver the envelope source is only
                // sender-claimed and this check merely gates obvious
                // noise (the vote set's own signature is what the BB
                // verifies). Under the event-loop driver `from` is
                // channel-derived, so this is a real authentication
                // gate.
                if env.from.kind == NodeKind::Vc {
                    return Ok(finalized);
                }
            }
        }
    }

    /// Tells every replica to exit, then stops the transport.
    pub(crate) fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let control = self.control.lock();
            for i in 0..self.cluster.vc_addrs.len() as u32 {
                control.send(NodeId::vc(i), Msg::Shutdown);
            }
            for j in 0..self.cluster.bb_addrs.len() as u32 {
                control.send(NodeId::bb(j), Msg::Shutdown);
            }
        }
        // Give the outbound writer threads a moment to flush the shutdown
        // frames before the sockets close.
        // lint:allow(wall-clock, shutdown-path flush grace for writer threads; not protocol time)
        std::thread::sleep(Duration::from_millis(100));
        self.transport.shutdown();
    }
}
