//! Closed-loop vote-casting load harness over the event-loop driver.
//!
//! One *shard* is a single-threaded client [`EvLoop`] holding thousands
//! of concurrent authenticated voter connections against the cluster's
//! VC replicas. Every connection authenticates as a distinct
//! [`NodeId::client`] identity, then runs a closed loop: cast a vote,
//! wait for the matching [`Msg::VoteReply`], record the round-trip
//! latency, cast again. Re-casting the same `(serial, vote-code)` is
//! idempotent by protocol (§III-E: the replica returns the cached
//! receipt), so a sustained cast stream needs no ballot churn — each
//! iteration still crosses the authenticated channel, the framing
//! codec, and the VC core's vote path.
//!
//! Six-figure connection counts exceed one process's file-descriptor
//! budget on common configurations, so the 100k demonstration
//! (`examples/load_gen.rs`) runs several shard *processes* side by
//! side and merges their [`ShardReport`]s; latency percentiles come
//! from the merged [`LatencyHistogram`], which is exact-mergeable
//! across processes (per-bucket counts sum).
//!
//! Ballot space is partitioned per VC: a connection dials only its
//! designated replica (`global_conn % num_vc`) and casts on a ballot
//! from that replica's partition, so a vote never waits on an
//! endorsement round involving an unrelated replica's client traffic
//! ordering. All connections sharing a ballot cast the *same* vote
//! code (option 0), keeping every re-cast on the idempotent path.

use crate::tcp::{derive_setup, process_nonce_seed, TcpCluster};
use ddemos_crypto::votecode::VoteCode;
use ddemos_net::evloop::{ConnId, EvConfig, EvEvent, EvLoop, EvStats};
use ddemos_net::sys::raise_nofile_limit;
use ddemos_protocol::messages::{Envelope, Msg, VoteOutcome};
use ddemos_protocol::{ElectionParams, NodeId, PartId, SerialNo};
use std::collections::HashMap;
use std::io;
use std::time::{Duration, Instant};

/// One shard's slice of the load run.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Shard index (labels the report).
    pub shard: usize,
    /// Connections this shard opens.
    pub conns: usize,
    /// First client-identity index this shard uses; shard `s` of a
    /// multi-process run passes `s * conns` so identities are globally
    /// unique (the server routes replies by authenticated identity).
    pub client_base: u32,
    /// Ramp deadline: how long to wait for all connections to come up
    /// before measuring anyway.
    pub ramp: Duration,
    /// Warm-up window excluded from the recorded latencies.
    pub warmup: Duration,
    /// Measurement window.
    pub measure: Duration,
}

impl ShardConfig {
    /// A single-shard config with the given connection count.
    pub fn new(conns: usize) -> ShardConfig {
        ShardConfig {
            shard: 0,
            conns,
            client_base: 0,
            ramp: Duration::from_secs(120),
            warmup: Duration::from_secs(2),
            measure: Duration::from_secs(10),
        }
    }
}

/// Log-linear latency histogram: 16 sub-buckets per power-of-two octave
/// (≤ 6.25 % relative error), exact-mergeable across shards because
/// merging is per-bucket addition. Promoted into `ddemos-obs` (it is
/// the histogram behind every [`ddemos_obs::MetricsSnapshot`]); this
/// alias keeps the load harness's historical name working.
pub use ddemos_obs::Histogram as LatencyHistogram;

/// What one shard measured.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Connections requested.
    pub conns: usize,
    /// Connections that completed their authenticated handshake.
    pub conns_up: usize,
    /// Votes cast *and acknowledged* inside the measurement window.
    pub casts: u64,
    /// Receipt mismatches, rejects, and connection drops.
    pub errors: u64,
    /// Actual measurement-window duration.
    pub elapsed: Duration,
    /// Cast round-trip latencies (measurement window only).
    pub hist: LatencyHistogram,
    /// Client-loop counters.
    pub stats: EvStats,
}

impl ShardReport {
    /// Acknowledged casts per second over the measurement window.
    pub fn votes_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.casts as f64 / secs
        }
    }

    /// One-line JSON for worker → parent aggregation (hand-rolled: the
    /// harness carries no serde).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"shard\":{},\"conns\":{},\"conns_up\":{},\"casts\":{},\"errors\":{},\
             \"elapsed_ns\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"hist\":[",
            self.shard,
            self.conns,
            self.conns_up,
            self.casts,
            self.errors,
            self.elapsed.as_nanos(),
            self.hist.total_ns(),
            self.hist.min_ns(),
            self.hist.max_ns(),
        );
        for (k, (i, n)) in self.hist.sparse().iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{i},{n}]");
        }
        s.push_str("],\"stats\":{");
        for (k, (name, v)) in ev_stats_fields(&self.stats).into_iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{v}");
        }
        s.push_str("}}");
        s
    }

    /// Parses [`ShardReport::to_json`] output. Returns `None` on any
    /// structural mismatch.
    pub fn from_json(line: &str) -> Option<ShardReport> {
        let field = |key: &str| -> Option<u64> {
            let pat = format!("\"{key}\":");
            let at = line.find(&pat)? + pat.len();
            let rest = &line[at..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let hist_at = line.find("\"hist\":[")? + "\"hist\":[".len();
        let hist_end = line[hist_at..].rfind(']')? + hist_at;
        let mut pairs = Vec::new();
        for pair in line[hist_at..hist_end].split("],[") {
            let pair = pair.trim_matches(|c| c == '[' || c == ']');
            if pair.is_empty() {
                continue;
            }
            let (i, n) = pair.split_once(',')?;
            pairs.push((i.parse().ok()?, n.parse().ok()?));
        }
        let hist = LatencyHistogram::from_sparse(
            &pairs,
            field("total_ns")?,
            field("min_ns")?,
            field("max_ns")?,
        );
        // Event-loop counters ride along since the metrics refactor;
        // lines from older shard binaries simply parse as zeros.
        let mut stats = EvStats::default();
        for (name, v) in ev_stats_fields_mut(&mut stats) {
            *v = field(name).unwrap_or(0);
        }
        Some(ShardReport {
            shard: field("shard")? as usize,
            conns: field("conns")? as usize,
            conns_up: field("conns_up")? as usize,
            casts: field("casts")?,
            errors: field("errors")?,
            elapsed: Duration::from_nanos(field("elapsed_ns")?),
            hist,
            stats,
        })
    }
}

/// The [`EvStats`] counters as `(name, value)` pairs, in wire order.
fn ev_stats_fields(s: &EvStats) -> [(&'static str, u64); 15] {
    [
        ("accepted", s.accepted),
        ("rejected_full", s.rejected_full),
        ("authenticated", s.authenticated),
        ("auth_failed", s.auth_failed),
        ("ev_dials", s.dials),
        ("frames_in", s.frames_in),
        ("frames_out", s.frames_out),
        ("bytes_in", s.bytes_in),
        ("bytes_out", s.bytes_out),
        ("oversized", s.oversized),
        ("shed_slow", s.shed_slow),
        ("replays", s.replays),
        ("malformed", s.malformed),
        ("from_overridden", s.from_overridden),
        ("ev_closed", s.closed),
    ]
}

/// Mutable view matching [`ev_stats_fields`] (the parse side).
fn ev_stats_fields_mut(s: &mut EvStats) -> [(&'static str, &mut u64); 15] {
    [
        ("accepted", &mut s.accepted),
        ("rejected_full", &mut s.rejected_full),
        ("authenticated", &mut s.authenticated),
        ("auth_failed", &mut s.auth_failed),
        ("ev_dials", &mut s.dials),
        ("frames_in", &mut s.frames_in),
        ("frames_out", &mut s.frames_out),
        ("bytes_in", &mut s.bytes_in),
        ("bytes_out", &mut s.bytes_out),
        ("oversized", &mut s.oversized),
        ("shed_slow", &mut s.shed_slow),
        ("replays", &mut s.replays),
        ("malformed", &mut s.malformed),
        ("from_overridden", &mut s.from_overridden),
        ("ev_closed", &mut s.closed),
    ]
}

/// Per-connection closed-loop state.
struct ConnState {
    /// The voter identity this connection authenticated as.
    identity: NodeId,
    /// The designated VC replica.
    vc: NodeId,
    serial: SerialNo,
    vote_code: VoteCode,
    expected_receipt: u64,
    /// Outstanding request id (0 = nothing in flight yet).
    request_id: u64,
    sent_at: Instant,
    up: bool,
    casts: u64,
}

/// Runs one load shard to completion: ramp, warm-up, measure.
///
/// The shard derives the ballot material itself — EA setup is a pure
/// function of `(params, seed)`, so voters, replicas, and the load
/// generator all agree on serials, vote codes, and receipts without any
/// side channel.
///
/// # Errors
/// Socket/epoll errors from the client event loop.
pub fn run_load_shard(
    params: &ElectionParams,
    seed: u64,
    cluster: &TcpCluster,
    cfg: &ShardConfig,
) -> io::Result<ShardReport> {
    let _ = raise_nofile_limit();
    let setup = derive_setup(params, seed);
    let num_vc = params.num_vc;
    let per_vc = (params.num_ballots as usize / num_vc).max(1);

    let auth = cluster.auth_config(seed);
    let loop_identity = NodeId::client(cfg.client_base);
    let mut ev = EvLoop::new(EvConfig {
        auth,
        max_conns: cfg.conns + 16,
        write_cap: cluster.options.write_cap,
        nonce_seed: process_nonce_seed(loop_identity),
    })?;

    let mut states: Vec<ConnState> = Vec::with_capacity(cfg.conns);
    let mut by_conn: HashMap<ConnId, usize> = HashMap::with_capacity(cfg.conns);
    let start = Instant::now();
    let ramp_deadline = start + cfg.ramp;
    for c in 0..cfg.conns {
        let global = cfg.client_base as usize + c;
        let vc_index = (global % num_vc) as u32;
        // Stay inside this VC's partition; connections beyond the
        // partition size share ballots (and therefore vote codes).
        let ballot_index = (global / num_vc % per_vc) * num_vc + vc_index as usize;
        let ballot = &setup.ballots[ballot_index % setup.ballots.len()];
        let line = ballot
            .part(PartId::A)
            .line_for_option(0)
            .expect("option 0 exists");
        let identity = NodeId::client(global as u32);
        let conn = connect_retry(
            &mut ev,
            cluster.vc_addrs[vc_index as usize],
            identity,
            NodeId::vc(vc_index),
            ramp_deadline,
        )?;
        by_conn.insert(conn, c);
        states.push(ConnState {
            identity,
            vc: NodeId::vc(vc_index),
            serial: ballot.serial,
            vote_code: line.vote_code,
            expected_receipt: line.receipt,
            request_id: 0,
            sent_at: start,
            up: false,
            casts: 0,
        });
    }

    let mut hist = LatencyHistogram::default();
    let mut errors = 0u64;
    let mut ups = 0usize;
    let mut events = Vec::new();

    // Ramp: wait until every connection authenticated (or the deadline
    // passes — measurement then covers whatever came up).
    while ups < cfg.conns && Instant::now() < ramp_deadline {
        pump(
            &mut ev,
            &mut events,
            &by_conn,
            &mut states,
            &mut ups,
            &mut errors,
            None,
        )?;
    }
    let conns_up = ups;

    // Warm-up: full closed-loop traffic, latencies discarded.
    let warm_end = Instant::now() + cfg.warmup;
    while Instant::now() < warm_end {
        pump(
            &mut ev,
            &mut events,
            &by_conn,
            &mut states,
            &mut ups,
            &mut errors,
            None,
        )?;
    }

    // Measure.
    for s in states.iter_mut() {
        s.casts = 0;
    }
    errors = 0;
    let measure_start = Instant::now();
    let measure_end = measure_start + cfg.measure;
    let mut last_sweep = measure_start;
    while Instant::now() < measure_end {
        pump(
            &mut ev,
            &mut events,
            &by_conn,
            &mut states,
            &mut ups,
            &mut errors,
            Some(&mut hist),
        )?;
        // Stall sweep: an overloaded replica can drop a reply with a
        // shed connection; re-issue rather than letting the closed loop
        // wedge. The resend keeps the request id — under six-figure
        // queueing the original reply is usually still coming, and a
        // fresh id would invalidate it the moment before it lands
        // (re-casting the same id is idempotent: the first matching
        // reply wins, later duplicates miss the advanced id). `sent_at`
        // also stays, so a loss shows up as tail latency, not a reset.
        let now = Instant::now();
        if now.duration_since(last_sweep) >= Duration::from_secs(5) {
            last_sweep = now;
            for (conn, &idx) in by_conn.iter() {
                let s = &mut states[idx];
                if s.up
                    && s.request_id != 0
                    && now.duration_since(s.sent_at) >= Duration::from_secs(30)
                {
                    let env = vote_envelope(s);
                    let _ = ev.send(*conn, &env);
                }
            }
        }
    }
    let elapsed = measure_start.elapsed();

    let casts = states.iter().map(|s| s.casts).sum();
    Ok(ShardReport {
        shard: cfg.shard,
        conns: cfg.conns,
        conns_up,
        casts,
        errors,
        elapsed,
        hist,
        stats: ev.stats(),
    })
}

/// Dials with retry until `deadline`: replica processes bind their
/// listeners concurrently with the shard's ramp, so early connects can
/// be refused.
fn connect_retry(
    ev: &mut EvLoop,
    addr: std::net::SocketAddr,
    identity: NodeId,
    peer: NodeId,
    deadline: Instant,
) -> io::Result<ConnId> {
    loop {
        match ev.connect(addr, identity, peer) {
            Ok(conn) => return Ok(conn),
            Err(e) if Instant::now() < deadline => {
                let retriable = matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionRefused
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::ResourceBusy
                );
                if !retriable {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    }
}

fn next_request_id(s: &ConnState) -> u64 {
    // Unique per (identity, cast): the replica correlates replies by
    // (authenticated sender, request id).
    ((s.identity.index as u64) << 32) | (s.casts.wrapping_add(1) & 0xffff_ffff)
}

fn vote_envelope(s: &ConnState) -> Envelope {
    Envelope {
        from: s.identity,
        to: s.vc,
        msg: Msg::Vote {
            request_id: s.request_id,
            serial: s.serial,
            vote_code: s.vote_code,
        },
    }
}

/// One poll iteration: drain events, advance every touched connection's
/// closed loop. `hist` is `Some` only inside the measurement window.
#[allow(clippy::too_many_arguments)]
fn pump(
    ev: &mut EvLoop,
    events: &mut Vec<EvEvent>,
    by_conn: &HashMap<ConnId, usize>,
    states: &mut [ConnState],
    ups: &mut usize,
    errors: &mut u64,
    mut hist: Option<&mut LatencyHistogram>,
) -> io::Result<()> {
    ev.poll(Some(Duration::from_millis(100)), events)?;
    for event in events.drain(..) {
        match event {
            EvEvent::Up { conn, .. } => {
                let Some(&idx) = by_conn.get(&conn) else {
                    continue;
                };
                let s = &mut states[idx];
                s.up = true;
                *ups += 1;
                s.request_id = next_request_id(s);
                s.sent_at = Instant::now();
                let env = vote_envelope(s);
                let _ = ev.send(conn, &env);
            }
            EvEvent::Frame { conn, env } => {
                let Some(&idx) = by_conn.get(&conn) else {
                    continue;
                };
                let s = &mut states[idx];
                let Msg::VoteReply {
                    request_id,
                    serial,
                    outcome,
                } = env.msg
                else {
                    continue;
                };
                if request_id != s.request_id || serial != s.serial {
                    continue; // stale reply (e.g. superseded by a stall resend)
                }
                match outcome {
                    VoteOutcome::Receipt(r) if r == s.expected_receipt => {
                        s.casts += 1;
                        if let Some(h) = hist.as_deref_mut() {
                            h.record(s.sent_at.elapsed().as_nanos() as u64);
                        }
                    }
                    _ => *errors += 1,
                }
                s.request_id = next_request_id(s);
                s.sent_at = Instant::now();
                let env = vote_envelope(s);
                let _ = ev.send(conn, &env);
            }
            EvEvent::Down { conn, .. } => {
                if let Some(&idx) = by_conn.get(&conn) {
                    if states[idx].up {
                        states[idx].up = false;
                        *ups -= 1;
                    }
                    *errors += 1;
                }
            }
        }
    }
    Ok(())
}

/// Dials every VC replica once and sends the authenticated
/// [`Msg::Shutdown`] control envelope, releasing replica processes or
/// threads after a load run (the load harness never closes the polls —
/// there is no coordinator).
///
/// # Errors
/// Connection errors reaching a replica.
pub fn shutdown_cluster(seed: u64, cluster: &TcpCluster) -> io::Result<()> {
    let auth = cluster.auth_config(seed);
    let identity = NodeId::client(u32::MAX);
    let mut ev = EvLoop::new(EvConfig::new(auth, process_nonce_seed(identity)))?;
    let mut pending = Vec::new();
    for (i, addr) in cluster.vc_addrs.iter().enumerate() {
        let conn = ev.connect(*addr, identity, NodeId::vc(i as u32))?;
        // Channels queue envelopes pre-handshake; this flushes as soon
        // as the handshake completes.
        let env = Envelope {
            from: identity,
            to: NodeId::vc(i as u32),
            msg: Msg::Shutdown,
        };
        let _ = ev.send(conn, &env);
        pending.push(conn);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut events = Vec::new();
    while ev.live_conns() > 0 && Instant::now() < deadline {
        ev.poll(Some(Duration::from_millis(100)), &mut events)?;
        events.clear();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The histogram's own quantile/merge/bucket tests moved with the
    // implementation to `crates/obs`; what stays here is the shard wire
    // format built on top of it.

    #[test]
    fn shard_report_json_round_trips() {
        let mut hist = LatencyHistogram::default();
        hist.record(1_000_000);
        hist.record(2_000_000);
        let stats = EvStats {
            dials: 100,
            authenticated: 99,
            frames_in: 1234,
            frames_out: 1240,
            bytes_in: 98_765,
            bytes_out: 87_654,
            shed_slow: 2,
            ..EvStats::default()
        };
        let report = ShardReport {
            shard: 3,
            conns: 100,
            conns_up: 99,
            casts: 1234,
            errors: 1,
            elapsed: Duration::from_secs(10),
            hist,
            stats,
        };
        let parsed = ShardReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed.shard, 3);
        assert_eq!(parsed.conns, 100);
        assert_eq!(parsed.conns_up, 99);
        assert_eq!(parsed.casts, 1234);
        assert_eq!(parsed.errors, 1);
        assert_eq!(parsed.elapsed, Duration::from_secs(10));
        assert_eq!(parsed.hist.count(), 2);
        assert_eq!(parsed.hist.mean_ns(), report.hist.mean_ns());
        assert_eq!(parsed.hist.quantile_ns(0.5), report.hist.quantile_ns(0.5));
        assert_eq!(parsed.stats.dials, 100);
        assert_eq!(parsed.stats.authenticated, 99);
        assert_eq!(parsed.stats.frames_in, 1234);
        assert_eq!(parsed.stats.bytes_out, 87_654);
        assert_eq!(parsed.stats.shed_slow, 2);
        assert_eq!(parsed.stats.closed, 0);
    }

    #[test]
    fn shard_report_without_stats_parses_as_zeros() {
        // A line from a pre-metrics shard binary: no "stats" object.
        let line = "{\"shard\":0,\"conns\":4,\"conns_up\":4,\"casts\":10,\"errors\":0,\
                    \"elapsed_ns\":1000000000,\"total_ns\":5000,\"min_ns\":100,\
                    \"max_ns\":4000,\"hist\":[[5,10]]}";
        let parsed = ShardReport::from_json(line).expect("parses");
        assert_eq!(parsed.casts, 10);
        assert_eq!(parsed.stats.dials, 0);
        assert_eq!(parsed.stats.frames_in, 0);
    }
}
