//! Adversarial setup corruptions — the attacks of the E2E-verifiability
//! game (§IV-C) — plus helpers for Byzantine node configurations.
//!
//! A malicious EA controls everything at setup; its two meaningful attacks
//! against the tally are:
//!
//! * **Modification** — the published `⟨vote-code → option-commitment⟩`
//!   correspondence differs from the printed ballot. Implemented by
//!   swapping the encrypted vote codes of two BB rows: commitments (and
//!   trustee openings) stay internally valid, but a code now points at the
//!   other option's commitment. If the corrupted part is *used*, the vote
//!   silently counts for the wrong option; if it is *unused* and audited,
//!   check (g) exposes the fraud — hence detection probability ½ per
//!   audited ballot.
//! * **Clash** — two voters receive the same printed ballot (same serial),
//!   freeing the second voter's genuine BB slot for an injected vote.
//!   Detected unless all clashed voters happen to verify identically.

use ddemos_ea::SetupOutput;
use ddemos_protocol::{PartId, SerialNo};
use ddemos_vc::VcBehavior;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Applies the modification attack to `serial`'s `part`: swaps the
/// encrypted vote codes of rows 0 and 1 so each code points at the other
/// row's option commitment.
pub fn modification_attack(setup: &mut SetupOutput, serial: SerialNo, part: PartId) {
    let mut ballots: BTreeMap<_, _> = (*setup.bb_init.ballots).clone();
    let ballot = ballots.get_mut(&serial).expect("serial exists");
    let rows = &mut ballot.parts[part.index()];
    assert!(rows.len() >= 2, "need at least two options to swap");
    let tmp = rows[0].enc_code.clone();
    rows[0].enc_code = rows[1].enc_code.clone();
    rows[1].enc_code = tmp;
    setup.bb_init.ballots = Arc::new(ballots);
}

/// Applies the clash attack: voter `victim_b` receives a copy of
/// `victim_a`'s printed ballot instead of her own.
pub fn clash_attack(setup: &mut SetupOutput, victim_a: usize, victim_b: usize) {
    let cloned = setup.ballots[victim_a].clone();
    setup.ballots[victim_b] = cloned;
}

/// Builds a behaviour vector with the first `fv` nodes Byzantine.
pub fn byzantine_prefix(num_vc: usize, behavior: VcBehavior) -> Vec<VcBehavior> {
    let fv = (num_vc - 1) / 3;
    (0..num_vc)
        .map(|i| if i < fv { behavior } else { VcBehavior::Honest })
        .collect()
}
